"""Versioned monitor bundles: what a fleet server ships to a device.

A bundle captures one compiled monitor set in a self-describing,
integrity-protected form:

* the **spec source** — the single source of truth; the receiving device
  regenerates its machines from it, so a bundle works on any firmware
  that carries the generator;
* the **textual state-machine models** (one per property, in
  :func:`~repro.statemachine.textual.print_machine` form) — used for the
  spec-compatibility diff that decides which machines keep their NVM
  state across an update and which are reset;
* a **generated-code fingerprint** — SHA-256 over the Python sources the
  generator emits, pinning the exact checking semantics the server
  compiled against.

The wire format is a 16-byte binary header followed by a canonical-JSON
payload::

    >4s B  B     H        I           I
    magic fmt flags  reserved  payload_len  crc32(payload)

CRC covers the payload; the header pins magic/format so a truncated or
foreign blob is rejected before the payload is even parsed. Flag bit 0
marks a :class:`BundleDelta` (delta against an installed version)
instead of a full :class:`MonitorBundle`.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.generator import generate_machines
from repro.errors import FleetError
from repro.spec.validator import load_properties
from repro.statemachine.codegen_python import generate_python_source
from repro.statemachine.textual import print_machine
from repro.taskgraph.app import Application

MAGIC = b"AOTA"
FORMAT_VERSION = 1
FLAG_DELTA = 0x01

_HEADER = struct.Struct(">4sBBHII")


def _canonical(obj) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class MonitorBundle:
    """One versioned, installable monitor set.

    Attributes:
        name: monitor NVM namespace on the device (machines of the same
            name reuse their persisted state across compatible updates).
        version: monotonically increasing fleet version number.
        spec: the property-specification source text.
        machines: ``(machine_name, textual_form)`` pairs, sorted by
            name — the compatibility unit of the update system.
        fingerprint: SHA-256 over the generated Python sources.
    """

    name: str
    version: int
    spec: str
    machines: Tuple[Tuple[str, str], ...]
    fingerprint: str

    @property
    def machine_map(self) -> Dict[str, str]:
        return dict(self.machines)

    def payload(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "spec": self.spec,
            "machines": {n: text for n, text in self.machines},
            "fingerprint": self.fingerprint,
        }

    @property
    def content_hash(self) -> str:
        """SHA-256 of the canonical payload; names a bundle's content."""
        return _sha256(_canonical(self.payload()))

    @classmethod
    def from_payload(cls, payload: dict) -> "MonitorBundle":
        try:
            machines = tuple(sorted(
                (str(n), str(t)) for n, t in payload["machines"].items()
            ))
            return cls(
                name=str(payload["name"]),
                version=int(payload["version"]),
                spec=str(payload["spec"]),
                machines=machines,
                fingerprint=str(payload["fingerprint"]),
            )
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise FleetError(f"malformed bundle payload: {exc}") from exc

    def to_wire(self) -> bytes:
        return _pack(self.payload(), flags=0)

    def delta_to(self, target: "MonitorBundle") -> "BundleDelta":
        """Delta-encode ``target`` against this installed bundle.

        Machines whose textual form is unchanged are omitted from the
        wire; the receiver re-attaches them from its installed copy,
        guarded by base and target content hashes.
        """
        base_map = self.machine_map
        changed = {
            n: text for n, text in target.machines
            if base_map.get(n) != text
        }
        removed = tuple(sorted(set(base_map) - set(target.machine_map)))
        return BundleDelta(
            name=target.name,
            version=target.version,
            spec=target.spec,
            fingerprint=target.fingerprint,
            base_hash=self.content_hash,
            target_hash=target.content_hash,
            changed=tuple(sorted(changed.items())),
            removed=removed,
        )


@dataclass(frozen=True)
class BundleDelta:
    """A bundle encoded as changes against an installed base version."""

    name: str
    version: int
    spec: str
    fingerprint: str
    base_hash: str
    target_hash: str
    changed: Tuple[Tuple[str, str], ...]
    removed: Tuple[str, ...]

    def payload(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "base_hash": self.base_hash,
            "target_hash": self.target_hash,
            "changed": {n: text for n, text in self.changed},
            "removed": list(self.removed),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BundleDelta":
        try:
            return cls(
                name=str(payload["name"]),
                version=int(payload["version"]),
                spec=str(payload["spec"]),
                fingerprint=str(payload["fingerprint"]),
                base_hash=str(payload["base_hash"]),
                target_hash=str(payload["target_hash"]),
                changed=tuple(sorted(
                    (str(n), str(t)) for n, t in payload["changed"].items()
                )),
                removed=tuple(str(n) for n in payload["removed"]),
            )
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise FleetError(f"malformed delta payload: {exc}") from exc

    def to_wire(self) -> bytes:
        return _pack(self.payload(), flags=FLAG_DELTA)


def apply_delta(base: MonitorBundle, delta: BundleDelta) -> MonitorBundle:
    """Reconstruct the full target bundle from ``base`` + ``delta``.

    Both ends of the delta are hash-checked: the base must be the exact
    bundle the server encoded against, and the reconstruction must hash
    to the server's target — a mismatch on either side rejects the
    update instead of installing a chimera.
    """
    if base.content_hash != delta.base_hash:
        raise FleetError(
            f"delta base mismatch: installed {base.content_hash[:12]} != "
            f"expected {delta.base_hash[:12]}"
        )
    machines = dict(base.machines)
    for name in delta.removed:
        machines.pop(name, None)
    machines.update(dict(delta.changed))
    target = MonitorBundle(
        name=delta.name,
        version=delta.version,
        spec=delta.spec,
        machines=tuple(sorted(machines.items())),
        fingerprint=delta.fingerprint,
    )
    if target.content_hash != delta.target_hash:
        raise FleetError(
            f"delta reconstruction hash mismatch: {target.content_hash[:12]} "
            f"!= {delta.target_hash[:12]}"
        )
    return target


def build_bundle(
    spec: str,
    app: Application,
    version: int,
    name: str = "monitor",
) -> MonitorBundle:
    """Compile ``spec`` against ``app`` into an installable bundle."""
    props = load_properties(spec, app)
    machines = generate_machines(props)
    textual = tuple(sorted((m.name, print_machine(m)) for m in machines))
    sources = "\n".join(generate_python_source(m)
                        for m in sorted(machines, key=lambda m: m.name))
    return MonitorBundle(
        name=name,
        version=version,
        spec=spec,
        machines=textual,
        fingerprint=_sha256(sources.encode("utf-8")),
    )


def _pack(payload: dict, flags: int) -> bytes:
    body = _canonical(payload)
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, flags, 0,
                          len(body), zlib.crc32(body) & 0xFFFFFFFF)
    return header + body


def decode_wire(data: bytes) -> Union[MonitorBundle, BundleDelta]:
    """Parse and integrity-check a wire blob; raises :class:`FleetError`.

    Every check runs before any payload content is trusted: magic,
    format version, declared length, CRC, JSON well-formedness, and
    finally field shape.
    """
    if len(data) < _HEADER.size:
        raise FleetError(f"bundle truncated: {len(data)} bytes < header")
    magic, fmt, flags, _reserved, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FleetError(f"bad bundle magic {magic!r}")
    if fmt != FORMAT_VERSION:
        raise FleetError(f"unsupported bundle format version {fmt}")
    body = data[_HEADER.size:]
    if len(body) != length:
        raise FleetError(
            f"bundle length mismatch: header says {length}, got {len(body)}"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise FleetError("bundle CRC mismatch: payload corrupted in transit")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FleetError(f"bundle payload is not canonical JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FleetError("bundle payload must be a JSON object")
    if flags & FLAG_DELTA:
        return BundleDelta.from_payload(payload)
    return MonitorBundle.from_payload(payload)


@dataclass(frozen=True)
class CompatDiff:
    """Which machines survive an update with their NVM state intact.

    ``kept`` machines have byte-identical textual models in both
    versions — their persisted state remains meaningful and is carried
    across. ``changed`` machines exist in both but differ — their state
    is reset (a counter calibrated against the old thresholds is not
    comparable under the new ones). ``added``/``removed`` machines are
    initialised fresh / have their cells dropped.
    """

    kept: Tuple[str, ...]
    changed: Tuple[str, ...]
    added: Tuple[str, ...]
    removed: Tuple[str, ...]


def compat_diff(old: Optional[MonitorBundle], new: MonitorBundle) -> CompatDiff:
    """Per-machine compatibility between an installed and a new bundle."""
    old_map = old.machine_map if old is not None else {}
    new_map = new.machine_map
    kept = tuple(sorted(
        n for n in new_map if n in old_map and old_map[n] == new_map[n]
    ))
    changed = tuple(sorted(
        n for n in new_map if n in old_map and old_map[n] != new_map[n]
    ))
    added = tuple(sorted(n for n in new_map if n not in old_map))
    removed = tuple(sorted(n for n in old_map if n not in new_map))
    return CompatDiff(kept=kept, changed=changed, added=added, removed=removed)
