"""Always-on asyncio fleet control plane.

:class:`FleetServer` began as a batch function: simulate a wave, wait
for every device, aggregate, decide. This module turns that into a
long-lived *service* shape — the thing a million-device fleet actually
talks to — while keeping the batch path's decisions byte-identical:

* **Execution** — waves run on the shared
  :class:`~repro.sim.pool.PersistentPool`: each device is one
  :class:`WaveTask` item (picklable: provision, simulate, report), rows
  come back through a shared-memory table, and every finished device
  becomes a telemetry *event* the moment it lands, not when the wave
  ends.
* **Ingestion** — events flow through a bounded
  :class:`TelemetryQueue` with explicit backpressure (``block``: the
  producer — and transitively the worker pool collector — waits;
  ``shed_oldest``: the oldest report is dropped and counted, surfacing
  as ``FleetSummary.telemetry_dropped``), into a
  :class:`ShardedRegistry` of per-shard device records and windowed
  percentile rollups (:mod:`repro.fleet.digest`).
* **Decisions** — a :class:`TelemetryGate` evaluates the paired-control
  delta over the telemetry the consumer actually received and promotes
  or halts the next wave; every decision is appended to a wave
  *ledger* together with the queue/backpressure stats and rollup
  windows that justified it.

Determinism contract: under the default ``block`` policy nothing is
dropped and the gate sees exactly the rows the batch path would have
aggregated — ``FleetServer.rollout`` (now a thin synchronous driver
over this plane) produces reports byte-identical to the pre-plane
implementation, and the soak tests assert streamed == batch through
injected worker crashes and delayed telemetry.

Chaos hooks: :class:`ChaosWaveTask` crashes the executing pool worker
(``os._exit``) exactly once per nominated device — marker files make
the crash one-shot so the re-queued chunk converges — and holds back
nominated devices' telemetry so it arrives late and out of order.
Verdicts must not change; that is the point.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import repro
from repro.errors import FleetError
from repro.fleet.digest import WindowedRollup
from repro.fleet.server import (
    FleetServer,
    RolloutPlan,
    RolloutReport,
    WaveReport,
)
from repro.fleet.telemetry import (
    UPDATE_OUTCOMES,
    DeviceTelemetry,
    FleetSummary,
    aggregate,
)
from repro.sim.experiments import SweepPointError
from repro.sim.pool import (
    _CACHE_FORMAT,
    PoolItemError,
    _fork_available,
    _normalize_cache,
    _source_tree_stamp,
    get_pool,
)

#: Backpressure policies a :class:`TelemetryQueue` supports.
BACKPRESSURE_POLICIES = ("block", "shed_oldest")


class ChaosCrash(FleetError):
    """Injected failure from a :class:`ChaosWaveTask` running in-process
    (where ``os._exit`` would kill the control plane itself)."""


# ---------------------------------------------------------------------------
# Bounded ingestion queue with explicit backpressure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryEvent:
    """One device report arriving at the plane."""

    device_id: int
    arm: str  # "treatment" | "control"
    row: Dict[str, Any]
    cached: bool = False


class TelemetryQueue:
    """Bounded asyncio queue with an explicit overload policy.

    ``block`` (default, lossless): a producer hitting capacity waits
    until the consumer drains — backpressure propagates all the way to
    the worker-pool collector thread, which simply stops acknowledging
    results until there is room. ``shed_oldest`` (lossy, bounded
    latency): the oldest queued *data* event is discarded to admit the
    new one and ``dropped`` is incremented; end-of-stream sentinels
    (``None``) are never shed, so stream termination is reliable under
    any load.

    Counters are exact: ``dropped`` events never reach the consumer,
    ``blocked_puts`` counts puts that had to wait, ``high_watermark``
    is the deepest the queue ever got.
    """

    def __init__(self, capacity: int, policy: str = "block"):
        if capacity < 1:
            raise FleetError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise FleetError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._cond = asyncio.Condition()
        self.dropped = 0
        self.blocked_puts = 0
        self.high_watermark = 0
        self.total_in = 0
        self.total_out = 0

    def __len__(self) -> int:
        return len(self._items)

    def full(self) -> bool:
        return len(self._items) >= self.capacity

    async def put(self, item: Optional[TelemetryEvent]) -> None:
        async with self._cond:
            if len(self._items) >= self.capacity:
                if self.policy == "block":
                    self.blocked_puts += 1
                    while len(self._items) >= self.capacity:
                        await self._cond.wait()
                else:
                    self._shed_one()
            self._items.append(item)
            self.total_in += 1
            self.high_watermark = max(self.high_watermark, len(self._items))
            self._cond.notify_all()

    def _shed_one(self) -> None:
        # Drop the oldest *data* event; sentinels must survive or the
        # consumer would wait forever for a stream that already ended.
        for i, queued in enumerate(self._items):
            if queued is not None:
                del self._items[i]
                self.dropped += 1
                return
        # Queue full of sentinels (capacity producers ended at once):
        # nothing sheddable; grow past capacity by this one item.

    async def get(self) -> Optional[TelemetryEvent]:
        async with self._cond:
            while not self._items:
                await self._cond.wait()
            item = self._items.popleft()
            self.total_out += 1
            self._cond.notify_all()
            return item

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "policy": self.policy,  # type: ignore[dict-item]
            "dropped": self.dropped,
            "blocked_puts": self.blocked_puts,
            "high_watermark": self.high_watermark,
            "total_in": self.total_in,
            "total_out": self.total_out,
        }


# ---------------------------------------------------------------------------
# Sharded device registry + windowed rollups
# ---------------------------------------------------------------------------


@dataclass
class DeviceRecord:
    """Latest known state of one device, as reported by telemetry."""

    device_id: int
    update_outcome: str
    active_version: Optional[int]
    completed: bool
    reported_t: float  # simulated seconds at report time


class ShardedRegistry:
    """Device records and violation-rate rollups, sharded by id.

    Each shard owns its own :class:`WindowedRollup`; fleet-wide views
    fold the shards through the digest's exactly-associative merge —
    the production code path the digest property tests back up.
    """

    def __init__(self, n_shards: int = 8, window_s: float = 600.0,
                 relative_error: float = 0.01):
        if n_shards < 1:
            raise FleetError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.window_s = window_s
        self.relative_error = relative_error
        self._shards: List[Dict[int, DeviceRecord]] = [
            {} for _ in range(n_shards)]
        self._rollups: List[WindowedRollup] = [
            WindowedRollup(window_s, relative_error) for _ in range(n_shards)]
        self.events = 0

    def shard_of(self, device_id: int) -> int:
        return device_id % self.n_shards

    def record(self, telemetry: DeviceTelemetry) -> None:
        """Fold one (treatment-arm) report into the registry."""
        shard = self.shard_of(telemetry.device_id)
        self._shards[shard][telemetry.device_id] = DeviceRecord(
            device_id=telemetry.device_id,
            update_outcome=telemetry.update_outcome,
            active_version=telemetry.active_version,
            completed=telemetry.completed,
            reported_t=telemetry.total_time_s,
        )
        runs = max(1, telemetry.runs_before + telemetry.runs_after)
        rate = (telemetry.violations_before + telemetry.violations_after) \
            / runs
        self._rollups[shard].add(telemetry.total_time_s, rate)
        self.events += 1

    @property
    def devices(self) -> int:
        return sum(len(s) for s in self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(s) for s in self._shards]

    def get(self, device_id: int) -> Optional[DeviceRecord]:
        return self._shards[self.shard_of(device_id)].get(device_id)

    def version_counts(self) -> Dict[Optional[int], int]:
        counts: Dict[Optional[int], int] = {}
        for shard in self._shards:
            for rec in shard.values():
                counts[rec.active_version] = \
                    counts.get(rec.active_version, 0) + 1
        return counts

    def merged_rollup(self) -> WindowedRollup:
        """Fleet-wide rollup: associative fold over the shard rollups."""
        out = WindowedRollup(self.window_s, self.relative_error)
        for rollup in self._rollups:
            out = out.merge(rollup)
        return out


# ---------------------------------------------------------------------------
# Wave tasks: the picklable unit of work the pool executes
# ---------------------------------------------------------------------------

#: How each DeviceTelemetry field travels through the float64 shared-
#: memory row. Every dataclass field MUST appear here — encode_row
#: raises KeyError for an unmapped field, so adding telemetry fields
#: without deciding their codec fails loudly, not silently.
_FIELD_KINDS: Dict[str, str] = {
    "device_id": "int",
    "completed": "bool",
    "runs_completed": "int",
    "reboots": "int",
    "total_time_s": "float",
    "total_energy_mj": "float",
    "radio_energy_mj": "float",
    "violations_before": "int",
    "violations_after": "int",
    "runs_before": "int",
    "runs_after": "int",
    "degradation_shed": "int",
    "degradation_restored": "int",
    "chunks_lost": "int",
    "rollbacks": "int",
    "update_outcome": "outcome",
    "active_version": "opt_int",
    "predictive_sheds": "int",
    "shed_lead_s": "float",
}

_FIELDS: Tuple[str, ...] = tuple(DeviceTelemetry.__dataclass_fields__)


class WaveTask:
    """Provision one device, simulate it, report its telemetry row.

    Picklable (plain data attributes only), so the persistent pool's
    pre-forked workers can execute waves defined after they were
    forked. Provides ``encode_row``/``decode_row`` so rows return
    through the pool's shared-memory table as fixed-layout float64 and
    are reconstructed bit-exactly (ints are exact in float64 far beyond
    any counter here; ``update_outcome`` travels as its index in
    :data:`~repro.fleet.telemetry.UPDATE_OUTCOMES`; a ``None``
    ``active_version`` travels as NaN).
    """

    shm_row_size = len(_FIELDS)

    def __init__(self, base_spec: str, base_version: int,
                 wire: Optional[bytes], version: int, plan: RolloutPlan):
        self.base_spec = base_spec
        self.base_version = base_version
        self.wire = wire
        self.version = version
        self.plan = plan
        self._server: Optional[FleetServer] = None

    # -- execution ---------------------------------------------------------
    def server(self) -> FleetServer:
        if self._server is None:
            self._server = FleetServer(self.base_spec, self.base_version)
        return self._server

    def __call__(self, device_id: int) -> Dict[str, Any]:
        point = {"device_id": device_id}
        self.pre_simulate(device_id)
        try:
            device, runtime = self.server().build_device(
                device_id, self.wire, self.version, self.plan)
        except Exception as exc:
            raise SweepPointError("build", point, repr(exc)) from exc
        try:
            result = device.run(runtime, runs=self.plan.runs,
                                max_time_s=self.plan.max_time_s,
                                max_reboots=self.plan.max_reboots)
        except Exception as exc:
            raise SweepPointError("run", point, repr(exc)) from exc
        try:
            return DeviceTelemetry.from_device(
                device_id, device, result, runtime).to_row()
        except Exception as exc:
            raise SweepPointError("metric", point, repr(exc)) from exc

    def pre_simulate(self, device_id: int) -> None:
        """Chaos hook; the base task does nothing."""

    # -- pickling ----------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_server"] = None  # rebuilt lazily worker-side
        return state

    # -- shared-memory row codec -------------------------------------------
    @staticmethod
    def encode_row(row: Dict[str, Any]) -> List[float]:
        out: List[float] = []
        for name in _FIELDS:
            kind = _FIELD_KINDS[name]
            value = row[name]
            if kind == "outcome":
                out.append(float(UPDATE_OUTCOMES.index(value)))
            elif kind == "opt_int":
                out.append(float("nan") if value is None else float(value))
            elif kind == "bool":
                out.append(1.0 if value else 0.0)
            else:
                out.append(float(value))
        return out

    @staticmethod
    def decode_row(values: Tuple[float, ...]) -> Dict[str, Any]:
        row: Dict[str, Any] = {}
        for name, value in zip(_FIELDS, values):
            kind = _FIELD_KINDS[name]
            if kind == "int":
                row[name] = int(value)
            elif kind == "bool":
                row[name] = bool(int(value))
            elif kind == "outcome":
                row[name] = UPDATE_OUTCOMES[int(value)]
            elif kind == "opt_int":
                row[name] = None if math.isnan(value) else int(value)
            else:
                row[name] = value
        return row

    # -- caching -----------------------------------------------------------
    def fingerprint(self) -> str:
        """Cache fingerprint: everything besides the device id that
        determines the row (code tree, specs, wire blob, plan)."""
        h = hashlib.sha256()
        h.update(f"format={_CACHE_FORMAT};".encode())
        h.update(f"version={getattr(repro, '__version__', '?')};".encode())
        h.update(_source_tree_stamp().encode())
        h.update(type(self).__qualname__.encode())
        h.update(hashlib.sha256(self.base_spec.encode()).digest())
        h.update(b"none" if self.wire is None
                 else hashlib.sha256(self.wire).digest())
        h.update(json.dumps(
            {"base_version": self.base_version, "version": self.version,
             "plan": {k: (list(v) if isinstance(v, tuple) else v)
                      for k, v in self.plan.__dict__.items()}},
            sort_keys=True).encode())
        return h.hexdigest()


class ChaosWaveTask(WaveTask):
    """A :class:`WaveTask` with failure injection for soak tests.

    ``crash_devices``: before simulating one of these, the executing
    *pool worker* dies via ``os._exit`` — exercising chunk re-queue +
    worker re-fork. A marker file under ``chaos_dir`` makes each crash
    one-shot, so the retried chunk completes. Run in-process (no pool),
    the task raises :class:`ChaosCrash` instead, which the plane's
    inline retry loop absorbs. ``delay_devices`` maps device ids to a
    hold: the *plane* (not the worker) withholds their telemetry until
    every punctual report has been ingested, then delivers them late
    and out of order.
    """

    def __init__(self, base_spec: str, base_version: int,
                 wire: Optional[bytes], version: int, plan: RolloutPlan,
                 chaos_dir: str, crash_devices: Tuple[int, ...] = (),
                 delay_devices: Optional[Dict[int, float]] = None):
        super().__init__(base_spec, base_version, wire, version, plan)
        self.chaos_dir = chaos_dir
        self.crash_devices = tuple(crash_devices)
        self.delay_devices = dict(delay_devices or {})
        self.parent_pid = os.getpid()

    def pre_simulate(self, device_id: int) -> None:
        if device_id not in self.crash_devices:
            return
        arm = "t" if self.wire is not None else "c"
        marker = os.path.join(self.chaos_dir, f"crash-{arm}-{device_id}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # already crashed once for this device; proceed
        except OSError:
            return  # chaos_dir gone: degrade to no injection
        os.close(fd)
        if os.getpid() != self.parent_pid:
            os._exit(23)  # kill the pool worker mid-chunk
        raise ChaosCrash(f"injected in-process crash for device {device_id}")


# ---------------------------------------------------------------------------
# Telemetry gate
# ---------------------------------------------------------------------------


class TelemetryGate:
    """Promote/halt decision over a wave's ingested telemetry.

    The signal is the batch path's paired-control delta — computed from
    the reports the consumer actually received (under ``block`` that is
    all of them, so the decision is byte-identical to batch; under
    ``shed_oldest`` it is an honest decision over the surviving
    sample).
    """

    def __init__(self, plan: RolloutPlan):
        self.plan = plan

    def decide(self, telemetry: List[DeviceTelemetry],
               control: List[DeviceTelemetry]) -> Tuple[float, bool]:
        delta = FleetServer._paired_delta(telemetry, control, self.plan)
        return delta, delta > self.plan.halt_threshold


# ---------------------------------------------------------------------------
# Plane configuration + ledger
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ControlConfig:
    """Service knobs of the control plane (the rollout *policy* lives
    in :class:`~repro.fleet.server.RolloutPlan`)."""

    queue_capacity: int = 256
    policy: str = "block"
    n_shards: int = 8
    window_s: float = 600.0
    relative_error: float = 0.01
    #: In-process (no-pool) retries per device on injected/transient
    #: failures, beyond the first attempt.
    retries: int = 2
    #: Pool chunk size override (None = pool default).
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in BACKPRESSURE_POLICIES:
            raise FleetError(
                f"unknown backpressure policy {self.policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}")
        if self.queue_capacity < 1:
            raise FleetError("queue_capacity must be >= 1")
        if self.retries < 0:
            raise FleetError("retries must be >= 0")


@dataclass
class WaveLedgerEntry:
    """One gate decision and the evidence it was made on."""

    index: int
    devices: int
    received: int
    regression_delta: float
    decision: str  # "promote" | "complete" | "halt"
    queue: Dict[str, int] = field(default_factory=dict)
    windows: List[Dict[str, Any]] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Devices already running the new version when a halt fired — the
    #: rollback blast radius the halt protects the rest of fleet from.
    rollback_devices: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index, "devices": self.devices,
            "received": self.received,
            "regression_delta": self.regression_delta,
            "decision": self.decision, "queue": dict(self.queue),
            "windows": list(self.windows), "elapsed_s": self.elapsed_s,
            "rollback_devices": self.rollback_devices,
        }


@dataclass
class ServeReport:
    """Outcome of a :meth:`ControlPlane.serve` session."""

    n_devices: int
    cycles: List[Dict[str, Any]] = field(default_factory=list)
    rollout: Optional[RolloutReport] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_devices": self.n_devices,
            "cycles": list(self.cycles),
            "rollout": None if self.rollout is None
            else self.rollout.to_dict(),
        }

    def describe(self) -> str:
        lines = [f"serve session over {self.n_devices} devices: "
                 f"{len(self.cycles)} cycle(s)"]
        if self.rollout is not None:
            lines.append("  " + self.rollout.describe().replace("\n", "\n  "))
        for cycle in self.cycles:
            summary = cycle.get("summary", {})
            queue = cycle.get("queue", {})
            lines.append(
                f"  cycle {cycle.get('cycle')}: "
                f"{summary.get('devices', 0)} reports, "
                f"mean rate {summary.get('mean_rate_before', 0.0):.2f}, "
                f"queue peak {queue.get('high_watermark', 0)}"
                + (f", dropped {queue.get('dropped')}"
                   if queue.get("dropped") else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The control plane
# ---------------------------------------------------------------------------


def _run_sync(coro):
    """Drive a coroutine to completion from synchronous code.

    Callers inside a running event loop (tests driving the plane from
    async code) get a private loop on a helper thread instead of a
    nested-loop error.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    box: Dict[str, Any] = {}

    def runner() -> None:
        try:
            box["value"] = asyncio.run(coro)
        except BaseException as exc:  # re-raised below, on the caller
            box["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join()
    if "error" in box:
        raise box["error"]
    return box["value"]


class ControlPlane:
    """Asyncio rollout/monitoring service over a simulated fleet.

    Args:
        server: the :class:`FleetServer` that builds devices and wire
            blobs (and whose paired-delta semantics the gate reuses).
        plan: rollout policy (waves, thresholds, OTA link shape).
        jobs: worker processes for wave execution (1 = in-process).
        cache: optional content-addressed row cache (same values
            :func:`repro.sim.pool.run_sweep` accepts).
        config: service knobs (:class:`ControlConfig`).
        on_event: optional callback receiving event dicts
            (``wave_start``, ``telemetry``, ``wave_decision``,
            ``cycle`` ...) — the CLI's ``--stream`` NDJSON hook.
        task_factory: override the per-wave task constructor (the soak
            tests inject :class:`ChaosWaveTask` here).
    """

    def __init__(self, server: FleetServer, plan: RolloutPlan = RolloutPlan(),
                 jobs: Optional[int] = None, cache: Any = None,
                 config: Optional[ControlConfig] = None,
                 on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
                 task_factory: Optional[Callable[..., WaveTask]] = None):
        self.server = server
        self.plan = plan
        self.jobs = max(1, int(jobs)) if jobs else 1
        self.cache = _normalize_cache(cache)
        self.config = config if config is not None else ControlConfig()
        self.on_event = on_event
        self.task_factory = task_factory or WaveTask
        self.gate = TelemetryGate(plan)
        self.registry = ShardedRegistry(
            self.config.n_shards, self.config.window_s,
            self.config.relative_error)
        self.ledger: List[WaveLedgerEntry] = []

    # -- events ------------------------------------------------------------
    def _emit(self, event: str, **payload: Any) -> None:
        if self.on_event is not None:
            self.on_event({"event": event, **payload})

    # -- public sync API ---------------------------------------------------
    def run_rollout(self, new_spec: str, n_devices: int,
                    new_version: Optional[int] = None) -> RolloutReport:
        """Staged rollout driven by live telemetry gates (synchronous
        driver; byte-identical to the historical batch path under the
        default lossless policy)."""
        return _run_sync(self._rollout(new_spec, n_devices, new_version))

    def serve(self, n_devices: int, new_spec: Optional[str] = None,
              cycles: int = 1,
              new_version: Optional[int] = None) -> ServeReport:
        """Always-on mode: optionally roll out ``new_spec`` first, then
        run ``cycles`` monitoring passes over the whole fleet, each a
        streamed telemetry sweep folded into the registry rollups."""
        return _run_sync(self._serve(n_devices, new_spec, cycles,
                                     new_version))

    # -- rollout -----------------------------------------------------------
    async def _rollout(self, new_spec: str, n_devices: int,
                       new_version: Optional[int]) -> RolloutReport:
        if n_devices < 1:
            raise FleetError("rollout needs at least one device")
        plan = self.plan
        version = (self.server.base_version + 1 if new_version is None
                   else int(new_version))
        wire = self.server.encode_update(new_spec, version,
                                         use_delta=plan.use_delta)
        report = RolloutReport(n_devices=n_devices, new_version=version)
        boundaries = [min(n_devices, math.ceil(frac * n_devices))
                      for frac in plan.waves]
        start = 0
        compact_rows: List[Tuple[Dict[str, Any], int]] = []
        any_compact = False
        for index, end in enumerate(boundaries):
            ids = list(range(start, end))
            start = end
            if not ids:
                continue
            began = time.monotonic()
            self._emit("wave_start", wave=index, devices=len(ids),
                       version=version)
            if plan.lockstep:
                telemetry, control, summary, delta, rows = \
                    self.server._run_wave_lockstep(ids, wire, version, plan,
                                                   self.cache)
                compact_rows.extend(rows)
                any_compact = any_compact or not telemetry
                queue_stats: Dict[str, int] = {}
                windows: List[Dict[str, Any]] = []
                halted = delta > plan.halt_threshold
            else:
                telemetry, control, summary, delta, halted, queue_stats, \
                    windows = await self._streamed_wave(index, ids, wire,
                                                        version)
            decision = ("halt" if halted else
                        "complete" if index + 1 == len(boundaries)
                        else "promote")
            rollback = 0
            if halted:
                rollback = sum(
                    1 for w in report.waves for t in w.telemetry
                    if t.installed) + sum(1 for t in telemetry
                                          if t.installed)
            self.ledger.append(WaveLedgerEntry(
                index=index, devices=len(ids),
                received=summary.devices, regression_delta=delta,
                decision=decision, queue=queue_stats, windows=windows,
                elapsed_s=time.monotonic() - began,
                rollback_devices=rollback,
            ))
            self._emit("wave_decision", wave=index, devices=len(ids),
                       regression_delta=delta, decision=decision,
                       rollback_devices=rollback, queue=queue_stats)
            report.waves.append(WaveReport(
                index=index, device_ids=ids, telemetry=telemetry,
                control=control, summary=summary,
                regression_delta=delta, halted=halted,
            ))
            if halted:
                report.halted = True
                report.halted_wave = index
                break
        if any_compact:
            from repro.sim.batch import weighted_summary
            report.summary = weighted_summary(compact_rows)
        else:
            report.summary = aggregate(report.all_telemetry())
        return report

    async def _streamed_wave(self, index: int, ids: List[int],
                             wire: Optional[bytes], version: int):
        """One wave, streamed: treatment + paired control produced
        concurrently through the bounded queue into the registry, gate
        decision at stream end over the received rows."""
        cfg = self.config
        make = self.task_factory
        tasks = {
            "treatment": make(self.server.base_spec,
                              self.server.base_version, wire, version,
                              self.plan),
            "control": make(self.server.base_spec, self.server.base_version,
                            None, version, self.plan),
        }
        queue = TelemetryQueue(cfg.queue_capacity, cfg.policy)
        received: Dict[str, Dict[int, Dict[str, Any]]] = {
            "treatment": {}, "control": {}}

        async def consume() -> None:
            ended = 0
            while ended < len(tasks):
                event = await queue.get()
                if event is None:
                    ended += 1
                    continue
                received[event.arm][event.device_id] = event.row
                if event.arm == "treatment":
                    self.registry.record(DeviceTelemetry.from_row(event.row))
                    self._emit("telemetry", wave=index,
                               device_id=event.device_id,
                               outcome=event.row.get("update_outcome"),
                               cached=event.cached)

        async def produce(arm: str) -> None:
            try:
                await self._produce_arm(arm, tasks[arm], ids, queue)
            finally:
                await queue.put(None)

        consumer = asyncio.ensure_future(consume())
        try:
            await asyncio.gather(produce("treatment"), produce("control"))
            await consumer
        except BaseException:
            consumer.cancel()
            raise
        telemetry = [DeviceTelemetry.from_row(received["treatment"][d])
                     for d in sorted(received["treatment"])]
        control = [DeviceTelemetry.from_row(received["control"][d])
                   for d in sorted(received["control"])]
        delta, halted = self.gate.decide(telemetry, control)
        summary = aggregate(telemetry)
        if queue.dropped:
            summary = replace(summary, telemetry_dropped=queue.dropped)
        windows = self.registry.merged_rollup().to_rows()
        return (telemetry, control, summary, delta, halted, queue.stats(),
                windows)

    async def _produce_arm(self, arm: str, task: WaveTask, ids: List[int],
                           queue: TelemetryQueue) -> None:
        """Execute one arm's devices, feeding the queue as rows land."""
        loop = asyncio.get_running_loop()
        delays: Dict[int, float] = dict(
            getattr(task, "delay_devices", None) or {})
        held: List[Dict[str, Any]] = []

        async def deliver(row: Dict[str, Any], cached: bool = False) -> None:
            device_id = int(row["device_id"])
            if device_id in delays:
                held.append(row)
                return
            await queue.put(TelemetryEvent(device_id, arm, row,
                                           cached=cached))

        fingerprint = task.fingerprint() if self.cache is not None else ""
        keys: Dict[int, str] = {}
        pending: List[int] = []
        for device_id in ids:
            if self.cache is not None:
                key = self.cache.key_for(fingerprint,
                                         {"device_id": device_id})
                keys[device_id] = key
                row = self.cache.get(key)
                if row is not None:
                    await deliver(row, cached=True)
                    continue
            pending.append(device_id)

        computed: Dict[int, Dict[str, Any]] = {}
        failed: List[int] = list(pending)
        if pending and self.jobs > 1 and _fork_available() \
                and self._portable(task):
            failed = await self._pool_arm(task, pending, computed, deliver,
                                          loop)
        for device_id in failed:
            row = await self._run_inline(task, device_id, loop)
            computed[device_id] = row
            await deliver(row)
        # Late arrivals: delayed telemetry lands after every punctual
        # report, in delay order — out of order relative to device ids.
        for row in sorted(held,
                          key=lambda r: (delays.get(int(r["device_id"]), 0.0),
                                         int(r["device_id"]))):
            await queue.put(TelemetryEvent(int(row["device_id"]), arm, row))
        if self.cache is not None:
            for device_id, row in computed.items():
                self.cache.put(keys[device_id], row)

    async def _pool_arm(self, task: WaveTask, pending: List[int],
                        computed: Dict[int, Dict[str, Any]],
                        deliver, loop) -> List[int]:
        """Run one arm on the persistent pool; returns device ids that
        failed in the workers (retried inline by the caller)."""
        pool = get_pool(self.jobs)

        def on_result(slot: int, row: Dict[str, Any]) -> None:
            # Pool collector thread -> event loop; .result() makes the
            # collector wait while the queue is full (block policy), so
            # backpressure reaches the execution backend itself.
            asyncio.run_coroutine_threadsafe(deliver(row), loop).result()

        results = await loop.run_in_executor(
            None, lambda: pool.run(task, pending,
                                   chunk_size=self.config.chunk_size,
                                   on_result=on_result, return_errors=True))
        failed: List[int] = []
        for device_id, result in zip(pending, results):
            if isinstance(result, PoolItemError):
                failed.append(device_id)
            else:
                computed[device_id] = result
        return failed

    async def _run_inline(self, task: WaveTask, device_id: int,
                          loop) -> Dict[str, Any]:
        attempts = self.config.retries + 1
        for attempt in range(attempts):
            try:
                return await loop.run_in_executor(None, task, device_id)
            except ChaosCrash:
                if attempt + 1 >= attempts:
                    raise
        raise FleetError(f"device {device_id} failed after "
                         f"{attempts} attempts")  # pragma: no cover

    @staticmethod
    def _portable(task: Any) -> bool:
        try:
            pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
            return True
        except Exception:
            return False

    # -- always-on serving -------------------------------------------------
    async def _serve(self, n_devices: int, new_spec: Optional[str],
                     cycles: int,
                     new_version: Optional[int]) -> ServeReport:
        if cycles < 1:
            raise FleetError("serve needs at least one cycle")
        report = ServeReport(n_devices=n_devices)
        if new_spec is not None:
            report.rollout = await self._rollout(new_spec, n_devices,
                                                 new_version)
        version = (report.rollout.new_version if report.rollout is not None
                   else self.server.base_version)
        for cycle in range(cycles):
            began = time.monotonic()
            telemetry, queue_stats = await self._monitor_cycle(cycle,
                                                               n_devices,
                                                               version)
            summary = aggregate(telemetry)
            if queue_stats.get("dropped"):
                summary = replace(summary,
                                  telemetry_dropped=queue_stats["dropped"])
            windows = self.registry.merged_rollup().to_rows()
            entry = {
                "cycle": cycle,
                "summary": summary.to_dict(),
                "queue": queue_stats,
                "windows": windows,
                "shards": self.registry.shard_sizes(),
                "versions": {str(k): v for k, v in
                             self.registry.version_counts().items()},
                "elapsed_s": time.monotonic() - began,
            }
            report.cycles.append(entry)
            self._emit("cycle", **entry)
        return report

    async def _monitor_cycle(self, cycle: int, n_devices: int,
                             version: int):
        """One monitoring pass: every device simulated on its installed
        spec (no update offered), streamed into the registry."""
        make = self.task_factory
        task = make(self.server.base_spec, self.server.base_version, None,
                    version, self.plan)
        queue = TelemetryQueue(self.config.queue_capacity,
                               self.config.policy)
        rows: Dict[int, Dict[str, Any]] = {}

        async def consume() -> None:
            while True:
                event = await queue.get()
                if event is None:
                    return
                rows[event.device_id] = event.row
                self.registry.record(DeviceTelemetry.from_row(event.row))
                self._emit("telemetry", cycle=cycle,
                           device_id=event.device_id,
                           outcome=event.row.get("update_outcome"),
                           cached=event.cached)

        async def produce() -> None:
            try:
                await self._produce_arm("treatment", task,
                                        list(range(n_devices)), queue)
            finally:
                await queue.put(None)

        consumer = asyncio.ensure_future(consume())
        try:
            await produce()
            await consumer
        except BaseException:
            consumer.cancel()
            raise
        telemetry = [DeviceTelemetry.from_row(rows[d])
                     for d in sorted(rows)]
        return telemetry, queue.stats()
