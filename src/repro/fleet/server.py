"""Fleet server: staged rollouts with halt-on-regression.

:class:`FleetServer` pushes a new monitor spec to N simulated devices
with heterogeneous energy traces (wall power, fixed charging delays,
RF-mobility harvesting), in percentage *waves*: each wave's devices run
a full simulation — application + OTA download + crash-safe install —
and report :class:`~repro.fleet.telemetry.DeviceTelemetry`. After each
wave the server compares per-run violation rates before and after
activation across the wave's installed devices; a delta above the
plan's threshold halts the rollout before the next (larger) wave ships
the regression.

Execution lives in the control plane (:mod:`repro.fleet.control`):
:meth:`FleetServer.rollout` is a thin synchronous driver over
:class:`~repro.fleet.control.ControlPlane`, which streams each wave's
telemetry through a bounded ingestion queue and decides promote/halt
from the live stream — byte-identical, under the default lossless
backpressure policy, to the historical batch implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.retry import RetryPolicy
from repro.errors import FleetError
from repro.fleet.bundle import build_bundle
from repro.fleet.device import UpdatableRuntime
from repro.fleet.install import BundleInstaller
from repro.fleet.telemetry import DeviceTelemetry, FleetSummary, aggregate
from repro.fleet.transport import ChunkLoss, OtaTransport
from repro.workloads.health import (
    BENCHMARK_SPEC,
    build_artemis,
    build_health_app,
    health_power_model,
    make_continuous_device,
    make_intermittent_device,
    make_rf_device,
)

#: The fleet's installed baseline: the benchmark health spec.
FLEET_SPEC_V1 = BENCHMARK_SPEC

#: A benign update: tighter averaging window (changed machine) plus a
#: generous new watchdog on bodyTemp (added machine that never fires).
FLEET_SPEC_V2 = """
micSense: {
    maxTries: 10 onFail: skipPath Path: 3;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 8 dpTask: bodyTemp onFail: restartPath;
}

accel {
    maxTries: 10 onFail: skipPath Path: 2;
}

bodyTemp: {
    maxTries: 50 onFail: skipTask Path: 1;
}
"""

#: A deliberately regressing update: the added range check on avgTemp is
#: physically unsatisfiable (body temperature is never below 1°C), so
#: every completed averaging window fires a corrective action. The app
#: still terminates — skipTask on a finished task just moves on — which
#: is exactly the kind of noisy-but-not-fatal regression staged rollouts
#: must catch from telemetry.
FLEET_SPEC_REGRESSING = """
micSense: {
    maxTries: 10 onFail: skipPath Path: 3;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 10 dpTask: bodyTemp onFail: restartPath;
    dpData: avgTemp Range: [0, 1] onFail: skipTask;
}

accel {
    maxTries: 10 onFail: skipPath Path: 2;
}
"""


@dataclass(frozen=True)
class RolloutPlan:
    """Knobs of one staged rollout.

    Attributes:
        waves: cumulative fleet fractions per wave, strictly increasing,
            ending at 1.0 (``(0.1, 0.5, 1.0)`` = 10% canary, then half,
            then everyone).
        runs: application iterations each device simulates.
        halt_threshold: halt when the mean per-run violation-rate
            increase across a wave's installed devices exceeds this.
        chunk_size / loss_rate / retry_max_attempts: OTA link shape.
        boot_loop_threshold: boots on probation before auto-rollback.
        use_delta: ship a delta against the installed baseline instead
            of a full bundle.
        seed: perturbs every device's chunk-loss stream.
        lockstep: run waves through the batched struct-of-arrays core
            (:class:`repro.sim.batch.BatchFleetCore`) instead of
            simulating every device individually.
        seed_mode: ``"per_device"`` seeds each device's RF-mobility
            trace and chunk-loss stream from its id (every device
            unique — the scalar default); ``"per_cohort"`` seeds them
            from the device's energy class, collapsing the fleet into
            four byte-identical cohorts — the homogeneous-fleet shape
            the lockstep core amortizes over.
        expand_limit: largest wave the lockstep path expands into
            per-device :class:`~repro.fleet.telemetry.DeviceTelemetry`
            (byte-identical to scalar); larger waves keep the compact
            per-cohort rollup (numerically equivalent, weighted sums).
    """

    waves: Tuple[float, ...] = (0.1, 0.5, 1.0)
    runs: int = 3
    halt_threshold: float = 0.5
    chunk_size: int = 192
    loss_rate: float = 0.05
    retry_max_attempts: int = 8
    boot_loop_threshold: int = 8
    use_delta: bool = True
    seed: int = 0
    max_time_s: float = 8 * 3600.0
    max_reboots: int = 600
    lockstep: bool = False
    seed_mode: str = "per_device"
    expand_limit: int = 100_000

    def __post_init__(self) -> None:
        if self.seed_mode not in ("per_device", "per_cohort"):
            raise FleetError(
                f"seed_mode must be 'per_device' or 'per_cohort', "
                f"got {self.seed_mode!r}")
        if self.expand_limit < 0:
            raise FleetError("expand_limit must be >= 0")
        if not self.waves:
            raise FleetError("rollout plan needs at least one wave")
        previous = 0.0
        for frac in self.waves:
            if not previous < frac <= 1.0:
                raise FleetError(
                    f"wave fractions must be strictly increasing in (0, 1], "
                    f"got {self.waves}"
                )
            previous = frac
        if abs(self.waves[-1] - 1.0) > 1e-9:
            raise FleetError("the final wave must cover the whole fleet (1.0)")
        if self.runs < 1:
            raise FleetError("runs must be >= 1")


@dataclass
class WaveReport:
    """Outcome of one rollout wave.

    ``regression_delta`` is the paired-control signal the halt decision
    uses: the wave's devices are simulated twice from identical initial
    state — once receiving the update, once not — and the delta is the
    mean per-run increase in corrective actions attributable to the
    update (radio cost included). The self-paired before/after rates in
    ``summary`` are observational only; they are biased when the
    download finishes early in the simulation.
    """

    index: int
    device_ids: List[int]
    telemetry: List[DeviceTelemetry]
    control: List[DeviceTelemetry]
    summary: FleetSummary
    regression_delta: float
    halted: bool


@dataclass
class RolloutReport:
    """Outcome of a staged rollout (possibly halted early)."""

    n_devices: int
    new_version: int
    waves: List[WaveReport] = field(default_factory=list)
    halted: bool = False
    halted_wave: Optional[int] = None
    summary: Optional[FleetSummary] = None

    @property
    def ok(self) -> bool:
        return not self.halted

    @property
    def devices_attempted(self) -> int:
        return sum(len(w.device_ids) for w in self.waves)

    def all_telemetry(self) -> List[DeviceTelemetry]:
        return [t for wave in self.waves for t in wave.telemetry]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_devices": self.n_devices,
            "new_version": self.new_version,
            "halted": self.halted,
            "halted_wave": self.halted_wave,
            "devices_attempted": self.devices_attempted,
            "summary": None if self.summary is None else self.summary.to_dict(),
            "waves": [
                {
                    "index": w.index,
                    "devices": len(w.device_ids),
                    "regression_delta": w.regression_delta,
                    "halted": w.halted,
                    "telemetry": [t.to_row() for t in w.telemetry],
                }
                for w in self.waves
            ],
        }

    def describe(self) -> str:
        lines = [
            f"rollout of v{self.new_version} to {self.n_devices} devices: "
            + ("HALTED at wave "
               f"{self.halted_wave}" if self.halted else "completed"),
        ]
        for wave in self.waves:
            lines.append(
                f"  wave {wave.index}: {len(wave.device_ids)} devices, "
                f"delta {wave.regression_delta:+.2f}"
                + (" -> HALT" if wave.halted else "")
            )
        if self.summary is not None:
            lines.append("  " + self.summary.describe())
        return "\n".join(lines)


class FleetServer:
    """Builds, ships and observes monitor updates for a device fleet.

    Args:
        base_spec: the spec every device is provisioned with.
        base_version: its fleet version number.
    """

    def __init__(self, base_spec: str = FLEET_SPEC_V1, base_version: int = 1):
        self.base_spec = base_spec
        self.base_version = base_version

    # ------------------------------------------------------------------
    # Bundle preparation
    # ------------------------------------------------------------------
    def encode_update(self, new_spec: str, new_version: int,
                      use_delta: bool = True) -> bytes:
        """Wire blob for ``new_spec`` (delta against the baseline)."""
        app = build_health_app()
        target = build_bundle(new_spec, app, version=new_version)
        if use_delta:
            base = build_bundle(self.base_spec, app, version=self.base_version)
            return base.delta_to(target).to_wire()
        return target.to_wire()

    # ------------------------------------------------------------------
    # Device construction (heterogeneous energy traces)
    # ------------------------------------------------------------------
    @staticmethod
    def make_device(device_id: int, seed_mode: str = "per_device"):
        """One of four energy classes, assigned round-robin: wall power,
        a short and a long fixed charging delay, and an RF-mobility
        trace. Under ``per_device`` seeding the RF trace is seeded per
        device (no two RF devices brown out alike); under
        ``per_cohort`` it is seeded by energy class, so every RF device
        is byte-identical — the lockstep core's homogeneous-fleet
        assumption."""
        kind = device_id % 4
        if kind == 0:
            return make_continuous_device()
        if kind == 1:
            return make_intermittent_device(60.0)
        if kind == 2:
            return make_intermittent_device(300.0)
        return make_rf_device(
            seed=kind if seed_mode == "per_cohort" else device_id)

    def build_device(self, device_id: int, wire: Optional[bytes],
                     new_version: int, plan: RolloutPlan):
        """Provision one simulated device and offer it the update.

        ``wire=None`` builds the paired control: the identical device
        (same energy trace, same provisioned baseline) with no update
        offered."""
        seed_mode = getattr(plan, "seed_mode", "per_device")
        device = self.make_device(device_id, seed_mode)
        app = build_health_app()
        runtime = build_artemis(device, app=app, spec=self.base_spec,
                                power=health_power_model())
        installer = BundleInstaller(
            device.nvm, journal=runtime.journal,
            boot_loop_threshold=plan.boot_loop_threshold,
        )
        installer.install_initial(
            build_bundle(self.base_spec, app, version=self.base_version)
        )
        loss = None
        if plan.loss_rate > 0.0:
            loss_base = (device_id % 4 if seed_mode == "per_cohort"
                         else device_id)
            loss = ChunkLoss(rate=plan.loss_rate,
                             seed=loss_base * 1_000_003 + plan.seed)
        transport = OtaTransport(
            device.nvm, loss=loss,
            retry_policy=RetryPolicy(max_attempts=plan.retry_max_attempts),
            chunk_size=plan.chunk_size,
        )
        updatable = UpdatableRuntime(runtime, installer, transport)
        if wire is not None:
            updatable.push(wire, new_version)
        # The sweep's metric extractors only see (device, result); hang
        # the runtime off the device so telemetry can read the outcome.
        device._fleet_runtime = updatable
        return device, updatable

    # ------------------------------------------------------------------
    # Staged rollout
    # ------------------------------------------------------------------
    def rollout(
        self,
        new_spec: str,
        n_devices: int,
        new_version: Optional[int] = None,
        plan: RolloutPlan = RolloutPlan(),
        jobs: Optional[int] = None,
        cache: Any = None,
        config: Any = None,
        on_event: Any = None,
    ) -> RolloutReport:
        """Push ``new_spec`` to ``n_devices`` in waves; halt on regression.

        Thin synchronous driver over
        :class:`~repro.fleet.control.ControlPlane`: each wave executes
        on the persistent worker pool (``jobs`` workers) with telemetry
        streamed through the plane's bounded ingestion queue; the gate
        decision at stream end reproduces the batch semantics exactly.
        Devices in waves after a halt never receive the update.
        ``config`` (a :class:`~repro.fleet.control.ControlConfig`) and
        ``on_event`` pass through to the plane.
        """
        from repro.fleet.control import ControlPlane

        plane = ControlPlane(self, plan=plan, jobs=jobs, cache=cache,
                             config=config, on_event=on_event)
        return plane.run_rollout(new_spec, n_devices,
                                 new_version=new_version)

    def _run_wave_lockstep(self, ids: List[int], wire: bytes, version: int,
                           plan: RolloutPlan, cache: Any):
        """One wave (treatment + paired control) through the batched
        struct-of-arrays core.

        Waves up to ``plan.expand_limit`` devices come back as expanded
        per-device telemetry fed through the exact scalar ``aggregate``
        / ``_paired_delta`` — byte-identical to the scalar path; larger
        waves stay compact (one row per cohort, weighted rollup).
        """
        from repro.sim.batch import BatchFleetCore

        treated = BatchFleetCore(self, wire, version, plan).run(
            ids, cache=cache)
        control = BatchFleetCore(self, None, version, plan).run(
            ids, cache=cache)
        rows = [(dict(row), count) for row, count in treated.rows()]
        if len(ids) <= plan.expand_limit:
            telemetry = treated.expand()
            control_t = control.expand()
            return (telemetry, control_t, aggregate(telemetry),
                    self._paired_delta(telemetry, control_t, plan), rows)
        summary = treated.weighted_summary()
        delta = self._paired_delta_batched(treated, control, plan)
        return [], [], summary, delta, rows

    @staticmethod
    def _paired_delta_batched(treated, control, plan: RolloutPlan) -> float:
        """Cohort-weighted paired delta: every device in a cohort is
        byte-identical to its representative, so one representative
        pair stands in for the whole cohort with weight = lane count.
        Degenerates to exactly ``_paired_delta`` for singleton cohorts.
        """
        control_rows = {c.key: c.row for c in control.cohorts}
        num = 0.0
        den = 0
        for c in treated.cohorts:
            crow = control_rows.get(c.key)
            if crow is None:
                continue
            t_v = c.row["violations_before"] + c.row["violations_after"]
            c_v = crow["violations_before"] + crow["violations_after"]
            count = len(c.device_ids)
            num += count * (t_v - c_v) / max(1, plan.runs)
            den += count
        return num / den if den else 0.0

    @staticmethod
    def _paired_delta(telemetry: List[DeviceTelemetry],
                      control: List[DeviceTelemetry],
                      plan: RolloutPlan) -> float:
        """Mean per-run violation increase, paired per device id.

        Treatment and control simulate the *same* device (same id, same
        energy trace, same provisioned state); their difference is the
        update's effect — new checking semantics plus the radio's energy
        cost — not an artifact of when the download happened to finish.
        """
        by_id = {t.device_id: t for t in control}
        deltas = []
        for t in telemetry:
            c = by_id.get(t.device_id)
            if c is None:
                continue
            treated = t.violations_before + t.violations_after
            untreated = c.violations_before + c.violations_after
            deltas.append((treated - untreated) / max(1, plan.runs))
        return sum(deltas) / len(deltas) if deltas else 0.0

