"""Device-side OTA: an updatable wrapper around the ARTEMIS runtime.

:class:`UpdatableRuntime` composes the pieces of the update pipeline
around an unmodified :class:`~repro.core.runtime.ArtemisRuntime`:

* each loop iteration first gives the :class:`~repro.fleet.transport.
  OtaTransport` one chunk attempt, so the download interleaves with the
  application exactly like a real radio stack would;
* a completed transfer is decoded (full bundle or delta against the
  installed version), integrity-checked, staged into the standby slot,
  and queued for activation via
  :meth:`~repro.core.runtime.ArtemisRuntime.request_monitor_swap` — the
  journaled pointer flip and the in-memory monitor rebuild happen only
  at a path boundary (§4.1.3);
* every boot resolves the shared commit journal first, runs the
  boot-loop watchdog (automatic rollback past the threshold), rebuilds
  the in-memory monitor from the active slot when the version changed,
  and rolls the migration intention log forward.

Everything durable lives in the transport staging area, the A/B slots
and the journal; the wrapper's own attributes are rebuilt from NVM on
every boot, so a power failure at any point leaves the device either
running the old monitor set or the new one — never a mixture.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.monitor import ArtemisMonitor
from repro.core.runtime import ArtemisRuntime
from repro.errors import FleetError
from repro.fleet.bundle import BundleDelta, apply_delta, decode_wire
from repro.fleet.install import BundleInstaller
from repro.fleet.transport import OtaTransport
from repro.nvm.journal import (
    RECOVERED_CORRUPT,
    RECOVERED_ROLLED_BACK,
    RECOVERED_ROLLED_FORWARD,
)
from repro.spec.validator import load_properties


class UpdatableRuntime:
    """An ARTEMIS runtime that can receive and install monitor updates.

    Args:
        runtime: the wrapped :class:`~repro.core.runtime.ArtemisRuntime`
            (built from the currently installed bundle's spec).
        installer: A/B slot manager; its active bundle must match the
            monitor the wrapped runtime was built with.
        transport: NVM-staged chunk receiver.
        monitor_backend: backend used when rebuilding monitors from a
            newly activated spec.
    """

    def __init__(
        self,
        runtime: ArtemisRuntime,
        installer: BundleInstaller,
        transport: OtaTransport,
        monitor_backend: str = "generated",
    ):
        self.inner = runtime
        self.installer = installer
        self.transport = transport
        self._backend = monitor_backend
        self._monitor_name = runtime.monitor.name
        #: Version of the bundle the in-memory monitor was built from.
        self._monitor_version = installer.active_version
        #: The update currently offered by the server: (wire, version).
        self._offer: Optional[Tuple[bytes, int]] = None
        self._swap_queued = False
        # Recovery must also checksum-verify the update subsystem's own
        # durable state (slots, staging area) on every boot.
        runtime.recovery.guard(f"{installer.name}.")
        runtime.recovery.guard(f"{transport.name}.")

    # ------------------------------------------------------------------
    # Runtime protocol (delegated to the wrapped ARTEMIS runtime)
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.inner.finished

    @property
    def monitor(self):
        return self.inner.monitor

    @property
    def app(self):
        return self.inner.app

    @property
    def monitor_version(self) -> Optional[int]:
        return self._monitor_version

    def begin_run(self, device) -> None:
        self.inner.begin_run(device)

    def boot(self, device) -> None:
        # Resolve the shared journal before touching any slot state: an
        # activation (or task commit) interrupted mid-protocol must be
        # rolled back or forward before anyone reads the active pointer.
        outcome = self.inner.journal.recover()
        self._publish_journal(device, outcome)
        # A durably finished run proves the active version healthy even
        # when the crash landed after the final commit but before the
        # live mark_healthy — otherwise post-completion crashes would
        # keep counting boots and could roll back a working version.
        if self.inner.finished and self.installer.probation:
            self.installer.mark_healthy()
        if self.installer.rollback_needed():
            restored = self.installer.rollback()
            device.trace.record(
                device.sim_clock.now(), "ota_rollback",
                version=restored, boots=self.installer.boot_loop_threshold,
            )
        else:
            self.installer.record_boot()
        self._sync_monitor(device)
        self.inner.boot(device)
        # The inner boot's status recovery may itself conclude the run
        # (crash landed inside the final end-of-run bookkeeping): that
        # also proves the active version healthy.
        if self.inner.finished and self.installer.probation:
            self.installer.mark_healthy()

    def loop_iteration(self, device) -> None:
        self._ota_step(device)
        self.inner.loop_iteration(device)
        if self.inner.finished and self.installer.probation:
            # The active version survived a full application run.
            self.installer.mark_healthy()

    # ------------------------------------------------------------------
    # Server-facing
    # ------------------------------------------------------------------
    def push(self, wire: bytes, version: int) -> None:
        """Offer an update; delivery interleaves with the main loop."""
        self._offer = (bytes(wire), int(version))

    @property
    def update_outcome(self) -> str:
        """``"installed"``, ``"failed"``, ``"pending"`` or ``"none"``."""
        if self._offer is None:
            return "none"
        _wire, version = self._offer
        if self.installer.active_version == version:
            return "installed"
        if self.transport.failed:
            return "failed"
        return "pending"

    # ------------------------------------------------------------------
    # Update pipeline
    # ------------------------------------------------------------------
    def _ota_step(self, device) -> None:
        if self._offer is None:
            return
        wire, version = self._offer
        active_version = self.installer.active_version
        if active_version is not None and version <= active_version:
            return  # already running this (or a newer) version
        if self.transport.failed:
            return  # livelock guard abandoned the link; keep the old set
        self.transport.offer(wire, version)
        if not self.transport.complete:
            self.transport.step(device)
            if not self.transport.complete:
                return
        if self._swap_queued:
            return
        try:
            decoded = decode_wire(self.transport.assemble())
            if isinstance(decoded, BundleDelta):
                base = self.installer.active_bundle()
                if base is None:
                    raise FleetError("delta update with no installed base")
                bundle = apply_delta(base, decoded)
            else:
                bundle = decoded
            if bundle.version != version:
                raise FleetError(
                    f"bundle claims version {bundle.version}, "
                    f"offer said {version}"
                )
        except FleetError as exc:
            # Corrupted or mismatched payload: drop the transfer whole.
            # The active slot was never touched.
            device.trace.record(
                device.sim_clock.now(), "ota_reject", reason=str(exc),
            )
            self.transport.reset()
            self._offer = None
            return
        self.installer.stage(bundle)
        self.inner.request_monitor_swap(self._do_swap)
        self._swap_queued = True

    def _do_swap(self, runtime: ArtemisRuntime) -> None:
        """Runs at a path boundary: journaled activation + live rebuild.

        Idempotent: if a crash interrupted a previous attempt and the
        journal already rolled the activation forward, the staged slot
        now holds the *older* version and the swap is a no-op — so the
        runtime may safely retry a queued swap until it succeeds.
        """
        device = runtime._device
        staged = self.installer.standby_bundle()
        active = self.installer.active_bundle()
        if staged is None or (active is not None
                              and staged.version <= active.version):
            self._swap_queued = False
            return
        self.installer.activate(spend=runtime._spend_commit_step,
                                on_step=runtime._label_commit_step)
        device.trace.record(
            device.sim_clock.now(), "ota_activate", version=staged.version,
        )
        self._swap_queued = False
        self._sync_monitor(device)

    def _sync_monitor(self, device) -> None:
        """Make the in-memory monitor match the active slot.

        Rebuilding is keyed on the installed version, so replaying this
        on every boot is free when nothing changed; after an activation
        (or a rollback) it regenerates the machines from the active
        spec — unchanged machines reattach to their NVM state, and the
        migration log then resets the ones whose semantics changed.
        """
        active = self.installer.active_bundle()
        if active is not None and active.version != self._monitor_version:
            props = load_properties(active.spec, self.inner.app)
            monitor = ArtemisMonitor(props, device.nvm,
                                     backend=self._backend,
                                     name=self._monitor_name)
            self.inner.attach_monitor(monitor, props)
            self._monitor_version = active.version
            device.trace.record(
                device.sim_clock.now(), "ota_switch", version=active.version,
            )
        self.installer.finish_migration(self.inner.monitor, device)

    def _publish_journal(self, device, outcome: str) -> None:
        """Mirror :class:`~repro.core.recovery.RecoveryManager`'s journal
        counters — the wrapper recovers the journal first, so the inner
        recovery pass sees it clean and must not double-count."""
        t = device.sim_clock.now()
        if outcome == RECOVERED_ROLLED_BACK:
            device.result.torn_commits += 1
            device.trace.record(t, "torn_commit", outcome="rolled_back")
        elif outcome == RECOVERED_ROLLED_FORWARD:
            device.result.journal_replays += 1
            device.trace.record(t, "journal_replay", outcome="rolled_forward")
        elif outcome == RECOVERED_CORRUPT:
            device.result.torn_commits += 1
            device.result.corruptions_detected += 1
            device.trace.record(t, "torn_commit", outcome="corrupt_journal")
