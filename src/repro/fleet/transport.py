"""OTA transport: lossy, energy-charged, crash-resumable chunk delivery.

A bundle crosses the radio in fixed-size chunks, stop-and-wait: one
chunk attempt per runtime loop iteration, each attempt paying airtime to
the shared ``"radio"`` energy category (the same one
:class:`~repro.core.deployments.RemoteMonitorRuntime` charges). Loss is
modelled with the seeded :class:`~repro.peripherals.faults.SensorFault`
machinery, so a chunk-loss schedule is reproducible from its seed.

Received chunks persist in an NVM staging area immediately — a transfer
interrupted by a power failure resumes from its durable high-water mark
(``<name>.next``) instead of restarting. Losses are counted per chunk by
an NVM-backed :class:`~repro.core.retry.RetrySupervisor`: a link that
keeps eating the same chunk (a dead radio, a jammed channel) trips the
livelock guard and durably marks the transfer failed, exactly like the
task-retry watchdog in :mod:`repro.core.retry` — the device keeps its
installed monitor set rather than retrying forever.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from repro.core.deployments import RadioLink
from repro.core.retry import RetryPolicy, RetrySupervisor
from repro.errors import FleetError, PeripheralError
from repro.nvm.memory import NonVolatileMemory
from repro.peripherals.faults import SensorFault


class ChunkLoss(SensorFault):
    """Seeded chunk-loss model for the OTA link.

    ``rate`` is the per-chunk loss probability; ``windows`` model
    deterministic outages (the device walks behind a wall). A lost chunk
    is retransmitted after backoff — it never corrupts the staging area.
    """

    KIND = "chunk_loss"
    SILENT = False

    def perturb(self, sensor: str, t: float, value, last_good):
        raise PeripheralError(sensor, self.KIND, t)


def split_chunks(wire: bytes, chunk_size: int) -> List[bytes]:
    if chunk_size < 1:
        raise FleetError(f"chunk size must be >= 1, got {chunk_size}")
    return [wire[i:i + chunk_size] for i in range(0, len(wire), chunk_size)]


class OtaTransport:
    """Receiver side of a chunked bundle transfer, staged in NVM.

    Durable cells (under ``name``, default ``"ota"``):

    * ``ota.desc`` — descriptor of the transfer in flight (version,
      size, chunk count, CRC of the full wire blob); identifies a
      transfer across reboots so progress is only reused for the same
      bytes.
    * ``ota.chunk.<i>`` — received chunk payloads.
    * ``ota.next`` — in-order high-water mark; chunks below it are
      durably staged.
    * ``ota.failed`` — set when the livelock guard aborts the transfer.
    * ``ota.retry.attempts`` — per-chunk loss counters
      (:class:`~repro.core.retry.RetrySupervisor`).

    Ordering makes every step crash-safe: a chunk cell is written
    *before* ``next`` advances, so a crash between the two re-receives
    the same chunk into the same cell — an idempotent overwrite.
    """

    def __init__(
        self,
        nvm: NonVolatileMemory,
        radio: RadioLink = RadioLink(),
        loss: Optional[SensorFault] = None,
        retry_policy: Optional[RetryPolicy] = None,
        chunk_size: int = 256,
        name: str = "ota",
    ):
        if chunk_size < 1:
            raise FleetError(f"chunk size must be >= 1, got {chunk_size}")
        self.radio = radio
        self.loss = loss
        self.chunk_size = chunk_size
        self.name = name
        self._nvm = nvm
        # Transfer identity latch, in-order cursor, one-way abort
        # switch: all three are crash-progress cells by design (read
        # back after a reboot to resume, not re-derived), hence exempt
        # from the WAR oracle.
        self._desc = nvm.alloc(f"{name}.desc", None, 16, progress=True)
        self._next = nvm.alloc(f"{name}.next", 0, 2, progress=True)
        self._failed = nvm.alloc(f"{name}.failed", False, 1, progress=True)
        self._retry = RetrySupervisor(
            nvm, retry_policy or RetryPolicy(max_attempts=8),
            cell_name=f"{name}.retry.attempts",
        )
        self._chunks: Optional[List[bytes]] = None  # volatile send queue

    # ------------------------------------------------------------------
    # Offering a transfer (server side of the link)
    # ------------------------------------------------------------------
    def offer(self, wire: bytes, version: int) -> None:
        """Make ``wire`` the transfer in flight; resumes if it already is.

        If the durable descriptor matches (same version, size, CRC) the
        staged progress survives — this is the resume-across-reboot
        path. Anything else (first offer, a different bundle) restarts
        the staging area.
        """
        desc = {
            "version": int(version),
            "size": len(wire),
            "chunks": len(split_chunks(wire, self.chunk_size)),
            "chunk_size": self.chunk_size,
            "crc": zlib.crc32(wire) & 0xFFFFFFFF,
        }
        self._chunks = split_chunks(wire, self.chunk_size)
        if self._desc.get() != desc:
            self._desc.set(desc)
            self._next.set(0)
            self._failed.set(False)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def in_progress(self) -> bool:
        return self._desc.get() is not None and not self.complete

    @property
    def complete(self) -> bool:
        desc = self._desc.get()
        return desc is not None and self._next.get() >= desc["chunks"]

    @property
    def failed(self) -> bool:
        return bool(self._failed.get())

    @property
    def version(self) -> Optional[int]:
        desc = self._desc.get()
        return None if desc is None else desc["version"]

    @property
    def received_chunks(self) -> int:
        return int(self._next.get())

    # ------------------------------------------------------------------
    # One chunk attempt per loop iteration
    # ------------------------------------------------------------------
    def step(self, device) -> str:
        """Attempt delivery of the next chunk; returns the outcome tag.

        Outcomes: ``"idle"`` (nothing offered / already done or failed),
        ``"delivered"``, ``"lost"``, ``"complete"`` (this step delivered
        the final chunk), ``"failed"`` (livelock guard tripped).
        """
        desc = self._desc.get()
        if desc is None or self.failed or self.complete or self._chunks is None:
            return "idle"
        idx = self._next.get()
        key = f"chunk{idx}"
        t = device.sim_clock.now()
        # Airtime is paid whether or not the chunk survives the channel.
        device.consume(self.radio.round_trip_s, self.radio.power_w, "radio")
        if self.loss is not None and self.loss.fires(t):
            attempt = self._retry.record_failure(key)
            policy = self._retry.policy
            if attempt >= policy.max_attempts:
                # Livelock guard: durably abandon the transfer.
                self._retry.clear(key)
                self._failed.set(True)
                device.trace.record(
                    device.sim_clock.now(), "ota_abort",
                    chunk=idx, attempts=attempt, version=desc["version"],
                )
                return "failed"
            device.trace.record(
                device.sim_clock.now(), "ota_chunk_lost",
                chunk=idx, attempt=attempt, version=desc["version"],
            )
            backoff = policy.backoff_s(key, attempt)
            if backoff > 0.0:
                # Idle wait with the radio parked: time passes, no draw.
                device.consume(backoff, 0.0, "radio")
            return "lost"
        data = self._chunks[idx]
        cell_name = f"{self.name}.chunk.{idx}"
        if cell_name not in self._nvm:
            self._nvm.alloc(cell_name, initial=b"", size_bytes=len(data))
        self._nvm.cell(cell_name).set(data)
        self._next.set(idx + 1)
        self._retry.clear(key)
        device.trace.record(
            device.sim_clock.now(), "ota_chunk",
            chunk=idx, of=desc["chunks"], version=desc["version"],
        )
        if self.complete:
            device.trace.record(
                device.sim_clock.now(), "ota_complete",
                chunks=desc["chunks"], version=desc["version"],
            )
            return "complete"
        return "delivered"

    # ------------------------------------------------------------------
    # Reassembly
    # ------------------------------------------------------------------
    def assemble(self) -> bytes:
        """Reassemble the staged chunks; CRC-checked against the offer.

        Raises :class:`~repro.errors.FleetError` on any mismatch — a
        corrupted staging area yields a rejected blob, never a
        half-trusted one.
        """
        desc = self._desc.get()
        if desc is None or not self.complete:
            raise FleetError("no completed transfer to assemble")
        parts = []
        for i in range(desc["chunks"]):
            cell_name = f"{self.name}.chunk.{i}"
            if cell_name not in self._nvm:
                raise FleetError(f"staging area missing chunk {i}")
            part = self._nvm.cell(cell_name).get()
            if not isinstance(part, bytes):
                raise FleetError(f"staged chunk {i} is not bytes")
            parts.append(part)
        wire = b"".join(parts)
        if len(wire) != desc["size"]:
            raise FleetError(
                f"reassembled size {len(wire)} != offered {desc['size']}"
            )
        if zlib.crc32(wire) & 0xFFFFFFFF != desc["crc"]:
            raise FleetError("reassembled bundle fails transfer CRC")
        return wire

    def reset(self) -> None:
        """Durably abandon the transfer in flight (staging is reusable)."""
        self._desc.set(None)
        self._next.set(0)
        self._failed.set(False)
