"""Fleet OTA subsystem: monitor distribution at fleet scale.

The paper's headline claim is *adaptability* — monitors are decoupled
from the application so specifications can change without reprogramming
the device. This package exercises that claim end-to-end:

* :mod:`repro.fleet.bundle` — versioned, content-hashed, CRC-protected
  serialization of a compiled monitor set, with delta encoding.
* :mod:`repro.fleet.transport` — lossy, energy-charged chunked radio
  delivery, resumable across power failures from an NVM staging area.
* :mod:`repro.fleet.install` — double-buffered A/B slots with journaled
  atomic activation, boot-loop rollback, and per-property migration.
* :mod:`repro.fleet.device` — an ``UpdatableRuntime`` wrapper that
  receives, installs, and hot-swaps monitor sets at path boundaries.
* :mod:`repro.fleet.telemetry` / :mod:`repro.fleet.server` — per-device
  telemetry aggregated into fleet summaries, and a ``FleetServer``
  pushing staged rollouts (waves, halt-on-regression) to N simulated
  devices.
* :mod:`repro.fleet.control` / :mod:`repro.fleet.digest` — the always-on
  asyncio control plane (sharded registries, bounded-backpressure
  telemetry ingestion, telemetry-gated waves on a persistent worker
  pool) and its streaming percentile sketches / windowed rollups.
"""

from repro.fleet.bundle import (
    BundleDelta,
    CompatDiff,
    MonitorBundle,
    apply_delta,
    build_bundle,
    compat_diff,
    decode_wire,
)
from repro.fleet.control import (
    ChaosWaveTask,
    ControlConfig,
    ControlPlane,
    ServeReport,
    ShardedRegistry,
    TelemetryGate,
    TelemetryQueue,
    WaveTask,
)
from repro.fleet.device import UpdatableRuntime
from repro.fleet.digest import P2Quantile, QuantileDigest, WindowedRollup
from repro.fleet.install import BundleInstaller
from repro.fleet.server import FleetServer, RolloutPlan, RolloutReport
from repro.fleet.telemetry import DeviceTelemetry, FleetSummary, aggregate
from repro.fleet.transport import ChunkLoss, OtaTransport

__all__ = [
    "BundleDelta",
    "BundleInstaller",
    "ChaosWaveTask",
    "ChunkLoss",
    "CompatDiff",
    "ControlConfig",
    "ControlPlane",
    "DeviceTelemetry",
    "FleetServer",
    "FleetSummary",
    "MonitorBundle",
    "OtaTransport",
    "P2Quantile",
    "QuantileDigest",
    "RolloutPlan",
    "RolloutReport",
    "ServeReport",
    "ShardedRegistry",
    "TelemetryGate",
    "TelemetryQueue",
    "UpdatableRuntime",
    "WaveTask",
    "WindowedRollup",
    "aggregate",
    "apply_delta",
    "build_bundle",
    "compat_diff",
    "decode_wire",
]
