"""Crash-safe bundle installation: A/B slots, journaled activation,
boot-loop rollback, and per-property state migration.

The install state machine (see ``docs/fleet.md``) is built from three
primitives, each failure-atomic on its own:

1. **Staging** — the new bundle's payload is written into the standby
   slot with a single durable cell write. The active slot is untouched;
   a crash leaves the device running the old version.
2. **Activation** — one journaled transaction (through the *same*
   commit journal the runtime's task commits use) flips the active
   pointer, zeroes the boot-loop counter, raises the probation flag and
   writes the **migration intention log**: the machines whose NVM state
   must be reset (changed semantics) or dropped (removed properties).
   The journal seal is the linearization point — a crash anywhere in
   the protocol rolls the whole activation back or forward; the active
   pointer and the migration log can never disagree.
3. **Migration roll-forward** — on every boot (and immediately after a
   live swap) :meth:`BundleInstaller.finish_migration` replays the
   intention log: machine resets are idempotent, so a crash mid-
   migration just replays it until the log is cleared — a torn monitor
   set (half old state, half new) is unreachable.

Rollback is the same activation transaction pointed back at the old
slot, triggered automatically when the boot-loop counter passes its
threshold while the new version is on probation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FleetError
from repro.fleet.bundle import CompatDiff, MonitorBundle, compat_diff
from repro.nvm.journal import CommitJournal
from repro.nvm.memory import NonVolatileMemory
from repro.nvm.transaction import Transaction

#: A new version must survive this many boots without completing a run
#: before the boot-loop watchdog rolls it back.
DEFAULT_BOOT_LOOP_THRESHOLD = 8


class BundleInstaller:
    """Double-buffered A/B monitor slots with atomic activation.

    Durable cells (under ``name``, default ``"slots"``):

    * ``slots.a`` / ``slots.b`` — bundle payloads (or ``None``).
    * ``slots.active`` — ``"a"``/``"b"``/``None``; the installed set.
    * ``slots.boot_count`` — boots since activation while on probation.
    * ``slots.probation`` — True until the new version completes a run.
    * ``slots.migrate`` — the migration intention log
      (``{"reset": [...], "drop": [...]}``) or ``None`` when no
      migration is outstanding.
    """

    def __init__(
        self,
        nvm: NonVolatileMemory,
        journal: Optional[CommitJournal] = None,
        boot_loop_threshold: int = DEFAULT_BOOT_LOOP_THRESHOLD,
        name: str = "slots",
    ):
        if boot_loop_threshold < 1:
            raise FleetError("boot_loop_threshold must be >= 1")
        self._nvm = nvm
        self._journal = journal
        self.boot_loop_threshold = boot_loop_threshold
        self.name = name
        self._slot_a = nvm.alloc(f"{name}.a", None, 64)
        self._slot_b = nvm.alloc(f"{name}.b", None, 64)
        self._active = nvm.alloc(f"{name}.active", None, 1)
        self._boot_count = nvm.alloc(f"{name}.boot_count", 0, 2, progress=True)
        self._probation = nvm.alloc(f"{name}.probation", False, 1,
                                    progress=True)
        self._migrate = nvm.alloc(f"{name}.migrate", None, 16, progress=True)

    # ------------------------------------------------------------------
    # Slot access
    # ------------------------------------------------------------------
    def _slot_cell(self, which: str):
        return self._slot_a if which == "a" else self._slot_b

    @property
    def active_slot(self) -> Optional[str]:
        return self._active.get()

    @property
    def standby_slot(self) -> str:
        return "b" if self.active_slot == "a" else "a"

    def _bundle_in(self, which: Optional[str]) -> Optional[MonitorBundle]:
        if which is None:
            return None
        payload = self._slot_cell(which).get()
        if payload is None:
            return None
        return MonitorBundle.from_payload(payload)

    def active_bundle(self) -> Optional[MonitorBundle]:
        return self._bundle_in(self.active_slot)

    def standby_bundle(self) -> Optional[MonitorBundle]:
        return self._bundle_in(self.standby_slot)

    @property
    def active_version(self) -> Optional[int]:
        bundle = self.active_bundle()
        return None if bundle is None else bundle.version

    # ------------------------------------------------------------------
    # Install protocol
    # ------------------------------------------------------------------
    def install_initial(self, bundle: MonitorBundle) -> None:
        """Factory provisioning: install into slot A, no probation.

        Not crash-atomic by design — this models the flashing station,
        not an over-the-air update.
        """
        self._slot_a.set(bundle.payload())
        self._active.set("a")
        self._probation.set(False)
        self._boot_count.set(0)
        self._migrate.set(None)

    def stage(self, bundle: MonitorBundle) -> str:
        """Write the bundle into the standby slot; returns the slot name.

        A single durable cell write: a crash leaves either the old
        standby content or the complete new payload, and the active
        pointer never references the standby slot.
        """
        slot = self.standby_slot
        self._slot_cell(slot).set(bundle.payload())
        return slot

    def activate(self, spend=None, on_step=None) -> CompatDiff:
        """Atomically make the staged bundle active (journaled flip).

        One transaction stages the pointer flip, the probation state and
        the migration intention log, then commits through the shared
        journal — ``spend``/``on_step`` expose every step as a crash
        point exactly like a task commit. Returns the compatibility
        diff the migration log was derived from.
        """
        staged = self.standby_bundle()
        if staged is None:
            raise FleetError("no staged bundle to activate")
        old = self.active_bundle()
        diff = compat_diff(old, staged)
        txn = Transaction(self._nvm, journal=self._journal)
        txn.stage(self._active.name, self.standby_slot)
        txn.stage(self._boot_count.name, 0)
        txn.stage(self._probation.name, True)
        txn.stage(self._migrate.name,
                  {"reset": list(diff.changed), "drop": list(diff.removed)})
        txn.commit(spend=spend, on_step=on_step)
        return diff

    # ------------------------------------------------------------------
    # Migration roll-forward
    # ------------------------------------------------------------------
    @property
    def migration_pending(self) -> bool:
        return bool(self._migrate.get())

    def finish_migration(self, monitor, device=None) -> List[str]:
        """Replay the migration intention log against ``monitor``.

        Idempotent: machine resets write initial state, dropped-cell
        frees skip missing cells, and the log is cleared only after all
        of it has been applied — a crash mid-migration replays the whole
        log on the next boot. Returns a description of what was done.
        """
        marker = self._migrate.get()
        if not marker:
            return []
        actions: List[str] = []
        known = {m.name for m in getattr(monitor, "machines", ())}
        for machine in marker.get("reset", ()):
            if machine in known:
                monitor.reset_machine(machine)
                actions.append(f"reset:{machine}")
        for machine in marker.get("drop", ()):
            prefix = f"{monitor.name}.{machine}."
            dropped = False
            for cell_name in list(self._nvm):
                if cell_name.startswith(prefix):
                    self._nvm.free(cell_name)
                    dropped = True
            if dropped:
                actions.append(f"drop:{machine}")
        self._migrate.set(None)
        if device is not None and actions:
            device.trace.record(
                device.sim_clock.now(), "ota_migrate", actions=actions,
            )
        return actions

    # ------------------------------------------------------------------
    # Boot-loop watchdog
    # ------------------------------------------------------------------
    @property
    def probation(self) -> bool:
        return bool(self._probation.get())

    @property
    def boot_count(self) -> int:
        return int(self._boot_count.get())

    def record_boot(self) -> int:
        """Count one boot while on probation; returns the new count."""
        if not self.probation:
            return 0
        count = self.boot_count + 1
        self._boot_count.set(count)
        return count

    def rollback_needed(self) -> bool:
        return (self.probation
                and self.boot_count >= self.boot_loop_threshold
                and self.standby_bundle() is not None)

    def rollback(self, spend=None, on_step=None) -> Optional[int]:
        """Journaled flip back to the previous slot; returns its version.

        The reverse migration log resets machines whose semantics
        changed between the versions and drops machines the rolled-back
        version introduced, so the restored monitor set is exactly as
        consistent as a fresh install of the old version.
        """
        current = self.active_bundle()
        previous = self.standby_bundle()
        if previous is None:
            # Nothing to return to: stop the watchdog from spinning.
            self._probation.set(False)
            self._boot_count.set(0)
            return None
        diff = compat_diff(current, previous)
        txn = Transaction(self._nvm, journal=self._journal)
        txn.stage(self._active.name, self.standby_slot)
        txn.stage(self._boot_count.name, 0)
        txn.stage(self._probation.name, False)
        txn.stage(self._migrate.name,
                  {"reset": list(diff.changed), "drop": list(diff.removed)})
        txn.commit(spend=spend, on_step=on_step)
        return previous.version

    def mark_healthy(self) -> None:
        """The active version completed a run: end probation."""
        if self.probation:
            self._probation.set(False)
        if self.boot_count:
            self._boot_count.set(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        active = self.active_bundle()
        standby = self.standby_bundle()
        return {
            "active_slot": self.active_slot,
            "active_version": None if active is None else active.version,
            "active_hash": None if active is None else active.content_hash,
            "standby_version": None if standby is None else standby.version,
            "probation": self.probation,
            "boot_count": self.boot_count,
            "migration_pending": self.migration_pending,
        }
