"""Per-device telemetry and fleet-level aggregation.

A fleet server cannot read a device's NVM; it sees what the device
reports. :class:`DeviceTelemetry` is that report, extracted from one
simulated device's trace and :class:`~repro.sim.result.RunResult`:
violation counts (split around the update activation, so a regression
introduced by a new spec is visible as a before/after rate change),
corrective actions, degradation events, radio spend, and the update
outcome. :func:`aggregate` folds any number of reports into a
queryable :class:`FleetSummary` — the object rollout halting decisions
are made on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

#: Update outcomes a device can report.
UPDATE_OUTCOMES = ("installed", "pending", "failed", "none")


@dataclass(frozen=True)
class DeviceTelemetry:
    """One device's report at the end of a rollout simulation.

    ``violations_before``/``violations_after`` count monitor corrective
    actions either side of the first ``ota_activate`` trace event (all
    *before* when no activation happened); ``runs_before``/``runs_after``
    split completed application runs the same way, so per-run violation
    rates are comparable even though the install lands mid-simulation.
    """

    device_id: int
    completed: bool
    runs_completed: int
    reboots: int
    total_time_s: float
    total_energy_mj: float
    radio_energy_mj: float
    violations_before: int
    violations_after: int
    runs_before: int
    runs_after: int
    degradation_shed: int
    degradation_restored: int
    chunks_lost: int
    rollbacks: int
    update_outcome: str
    active_version: Optional[int]
    #: Anticipatory (forecast-driven) sheds, a subset of
    #: ``degradation_shed``; 0 for reactive-only devices.
    predictive_sheds: int = 0
    #: Mean seconds between a predictive shed and the next power
    #: failure — the lead time the forecast bought. 0 when the device
    #: never shed predictively or never browned out afterwards.
    shed_lead_s: float = 0.0

    @property
    def installed(self) -> bool:
        return self.update_outcome == "installed"

    @property
    def rate_before(self) -> float:
        """Violations per completed run before the update activated."""
        return self.violations_before / max(1, self.runs_before)

    @property
    def rate_after(self) -> float:
        """Violations per completed run after the update activated."""
        return self.violations_after / max(1, self.runs_after)

    @classmethod
    def from_device(cls, device_id: int, device, result,
                    runtime) -> "DeviceTelemetry":
        """Extract the report from a finished simulation.

        ``runtime`` is the device's
        :class:`~repro.fleet.device.UpdatableRuntime` (or anything with
        ``update_outcome`` / ``installer``).
        """
        activate = device.trace.last("ota_activate")
        activate_t = activate.t if activate is not None else float("inf")
        before = after = 0
        for event in device.trace.of_kind("monitor_action"):
            if event.t < activate_t:
                before += 1
            else:
                after += 1
        runs_before = runs_after = 0
        for event in device.trace.of_kind("run_complete"):
            if event.t < activate_t:
                runs_before += 1
            else:
                runs_after += 1
        return cls(
            device_id=device_id,
            completed=bool(result.completed),
            runs_completed=int(result.runs_completed),
            reboots=int(result.reboots),
            total_time_s=float(result.total_time_s),
            total_energy_mj=float(result.total_energy_j) * 1e3,
            radio_energy_mj=float(result.energy_j.get("radio", 0.0)) * 1e3,
            violations_before=before,
            violations_after=after,
            runs_before=runs_before,
            runs_after=runs_after,
            degradation_shed=int(result.monitors_shed),
            degradation_restored=int(result.monitors_restored),
            chunks_lost=device.trace.count("ota_chunk_lost"),
            rollbacks=device.trace.count("ota_rollback"),
            update_outcome=str(runtime.update_outcome),
            active_version=runtime.installer.active_version,
            predictive_sheds=int(getattr(result, "predictive_sheds", 0)),
            shed_lead_s=shed_lead_time_s(device.trace),
        )

    def to_row(self) -> Dict[str, object]:
        """Flat, JSON-able mapping (what sweeps and the CLI carry)."""
        return asdict(self)

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "DeviceTelemetry":
        # Tolerate rows emitted before the predictive-degradation
        # fields existed (older sweep caches, archived fleet reports).
        fields = {k: row[k] for k in cls.__dataclass_fields__ if k in row}
        return cls(**fields)  # type: ignore[arg-type]


def shed_lead_time_s(trace) -> float:
    """Mean lead time (seconds) between each predictive shed and the
    next power failure in the trace.

    This is the fleet-visible measure of what anticipation bought: how
    far ahead of the brownout the controller acted. Sheds with no
    subsequent power failure (the forecast prevented the brownout
    entirely, or the run ended first) contribute nothing.
    """
    failures = [e.t for e in trace.of_kind("power_failure")]
    leads = []
    for event in trace.of_kind("monitor_shed"):
        if not event.detail.get("predictive"):
            continue
        upcoming = [t for t in failures if t >= event.t]
        if upcoming:
            leads.append(upcoming[0] - event.t)
    return sum(leads) / len(leads) if leads else 0.0


@dataclass(frozen=True)
class FleetSummary:
    """Aggregated view over a set of device reports."""

    devices: int
    completed: int
    outcomes: Dict[str, int]
    rollbacks: int
    mean_rate_before: float
    mean_rate_after: float
    regression_delta: float
    total_violations: int
    total_reboots: int
    degradation_shed: int
    degradation_restored: int
    predictive_sheds: int
    mean_shed_lead_s: float
    chunks_lost: int
    radio_energy_mj: float
    total_energy_mj: float
    #: Telemetry reports shed by a bounded ingestion queue before they
    #: reached aggregation (``shed_oldest`` backpressure policy); 0 for
    #: batch rollouts and for the lossless ``block`` policy. A nonzero
    #: value warns that rates/deltas were computed from a sample.
    telemetry_dropped: int = 0

    @property
    def installed(self) -> int:
        return self.outcomes.get("installed", 0)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def describe(self) -> str:
        parts = [
            f"{self.devices} devices ({self.completed} completed)",
            "outcomes " + "/".join(
                f"{self.outcomes.get(k, 0)} {k}" for k in UPDATE_OUTCOMES
            ),
            (f"violations/run before={self.mean_rate_before:.2f} "
             f"after={self.mean_rate_after:.2f} "
             f"delta={self.regression_delta:+.2f}"),
            f"rollbacks={self.rollbacks} chunks_lost={self.chunks_lost}",
            f"radio={self.radio_energy_mj:.2f}mJ",
        ]
        if self.telemetry_dropped:
            parts.append(f"telemetry_dropped={self.telemetry_dropped}")
        return "; ".join(parts)


def aggregate(reports: Iterable[DeviceTelemetry]) -> FleetSummary:
    """Fold device reports into one fleet summary.

    The regression signal compares each *installed* device against
    itself: mean over installed devices of (violations-per-run after
    activation − before). Devices that never activated contribute to
    the fleet-wide before-rate but not to the delta, so a stuck radio
    cannot mask a regressing spec.
    """
    rows: List[DeviceTelemetry] = list(reports)
    outcomes: Dict[str, int] = {}
    for t in rows:
        outcomes[t.update_outcome] = outcomes.get(t.update_outcome, 0) + 1
    installed = [t for t in rows if t.installed]
    before_rates = [t.rate_before for t in rows]
    after_rates = [t.rate_after for t in installed]
    deltas = [t.rate_after - t.rate_before for t in installed]

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return FleetSummary(
        devices=len(rows),
        completed=sum(1 for t in rows if t.completed),
        outcomes=outcomes,
        rollbacks=sum(t.rollbacks for t in rows),
        mean_rate_before=mean(before_rates),
        mean_rate_after=mean(after_rates),
        regression_delta=mean(deltas),
        total_violations=sum(t.violations_before + t.violations_after
                             for t in rows),
        total_reboots=sum(t.reboots for t in rows),
        degradation_shed=sum(t.degradation_shed for t in rows),
        degradation_restored=sum(t.degradation_restored for t in rows),
        predictive_sheds=sum(t.predictive_sheds for t in rows),
        mean_shed_lead_s=mean([t.shed_lead_s for t in rows
                               if t.predictive_sheds]),
        chunks_lost=sum(t.chunks_lost for t in rows),
        radio_energy_mj=sum(t.radio_energy_mj for t in rows),
        total_energy_mj=sum(t.total_energy_mj for t in rows),
    )
