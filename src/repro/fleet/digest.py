"""Streaming percentile estimators and windowed telemetry rollups.

The control plane (:mod:`repro.fleet.control`) never holds a fleet's
raw telemetry: at a million devices the per-device reports are a
firehose, and rollout gates need quantiles ("p99 violation rate this
window"), not samples. This module provides the two sketches the plane
ingests into, plus the time-window bucketing that turns an unbounded
stream into a bounded ledger:

* :class:`P2Quantile` — the classic P² (piecewise-parabolic) estimator:
  one quantile, five markers, O(1) per sample, no buffer. Used for
  always-on single-quantile probes where even a digest is too heavy.
* :class:`QuantileDigest` — a mergeable log-binned sketch (the DDSketch
  construction): any quantile with a guaranteed *relative* value error
  ``<= relative_error``, and a merge that is **exactly associative and
  commutative** (bin-wise integer addition), so per-shard digests can
  be folded in any order — the property the sharded registry relies on.
* :class:`WindowedRollup` — fixed-width, boundary-aligned time windows
  (window ``k`` covers ``[k*window_s, (k+1)*window_s)``), each holding
  count/sum/min/max plus a :class:`QuantileDigest`; rollups merge
  window-wise, again associatively.

Everything here is pure Python with integer bin counts: results are
deterministic and platform-independent, which the streamed-equals-batch
soak tests depend on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import FleetError


class DigestError(FleetError):
    """Misuse of a sketch (empty quantile query, mismatched merge)."""


# ---------------------------------------------------------------------------
# P² — single-quantile streaming estimator
# ---------------------------------------------------------------------------


class P2Quantile:
    """P² estimator of one quantile (Jain & Chlamtac 1985).

    Keeps five markers whose heights approximate the quantile curve;
    every sample adjusts marker positions and, when a marker drifts off
    its desired position, moves its height along a piecewise-parabolic
    interpolation. The first five samples are exact (sorted buffer).

    >>> p = P2Quantile(0.5)
    >>> for x in range(101): p.add(float(x))
    >>> abs(p.value() - 50.0) < 1.0
    True
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise DigestError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        """Fold one sample into the estimate."""
        self.count += 1
        if self.count <= 5:
            self._heights.append(float(x))
            self._heights.sort()
            if self.count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q,
                                 3.0 + 2.0 * self.q, 5.0]
            return
        h = self._heights
        # Locate the cell and bump the extreme markers.
        if x < h[0]:
            h[0] = float(x)
            k = 0
        elif x >= h[4]:
            h[4] = float(x)
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers.
        for i in range(1, 4):
            d = self._desired[i] - self._positions[i]
            n_i, n_prev, n_next = (self._positions[i], self._positions[i - 1],
                                   self._positions[i + 1])
            if (d >= 1.0 and n_next - n_i > 1.0) or \
               (d <= -1.0 and n_prev - n_i < -1.0):
                s = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, s)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] += s * (h[i + int(s)] - h[i]) / \
                        (self._positions[i + int(s)] - n_i)
                self._positions[i] += s

    def _parabolic(self, i: int, s: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + s / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def value(self) -> float:
        """Current estimate (exact while ``count <= 5``)."""
        if self.count == 0:
            raise DigestError("P2Quantile.value() on an empty estimator")
        if self.count <= 5:
            # Exact: interpolate the sorted buffer at rank q*(n-1).
            rank = self.q * (self.count - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, self.count - 1)
            frac = rank - lo
            return self._heights[lo] * (1 - frac) + self._heights[hi] * frac
        return self._heights[2]


# ---------------------------------------------------------------------------
# Mergeable log-binned quantile digest
# ---------------------------------------------------------------------------


class QuantileDigest:
    """Mergeable quantile sketch with bounded relative value error.

    Values are hashed to geometric bins ``(gamma^(k-1), gamma^k]`` with
    ``gamma = (1+e)/(1-e)``; a bin's representative is at most a factor
    ``(1+e)`` from any value in it, so ``quantile(q)`` is within
    relative error ``e`` of the true sample at that rank. Negative
    values mirror into their own bin table; magnitudes below
    ``epsilon`` collapse into an exact-zero bucket (their error bound is
    absolute: ``epsilon``).

    ``merge`` adds bin counts (integers) and folds min/max — it is
    exactly associative and commutative, so shard-local digests can be
    combined in any order with a bit-identical result.
    """

    def __init__(self, relative_error: float = 0.01,
                 epsilon: float = 1e-12):
        if not 0.0 < relative_error < 1.0:
            raise DigestError(
                f"relative_error must be in (0, 1), got {relative_error}")
        self.relative_error = relative_error
        self.epsilon = epsilon
        self.gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.zeros = 0
        self.bins: Dict[int, int] = {}
        self.neg_bins: Dict[int, int] = {}
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- ingestion ---------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def _representative(self, key: int) -> float:
        return 2.0 * self.gamma ** key / (self.gamma + 1.0)

    def add(self, x: float, n: int = 1) -> None:
        """Fold ``n`` copies of ``x`` into the sketch."""
        if n < 1:
            raise DigestError(f"n must be >= 1, got {n}")
        x = float(x)
        if math.isnan(x) or math.isinf(x):
            raise DigestError(f"cannot add non-finite sample {x!r}")
        self.count += n
        self._min = x if self._min is None else min(self._min, x)
        self._max = x if self._max is None else max(self._max, x)
        if abs(x) < self.epsilon:
            self.zeros += n
        elif x > 0:
            k = self._key(x)
            self.bins[k] = self.bins.get(k, 0) + n
        else:
            k = self._key(-x)
            self.neg_bins[k] = self.neg_bins.get(k, 0) + n

    # -- queries -----------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Value estimate at quantile ``q`` (rank ``ceil(q*(n-1))``).

        Guarantee: the result is within relative error
        ``relative_error`` of the true sample at that rank (absolute
        error ``epsilon`` for near-zero samples), and exact for
        ``q in {0, 1}``.
        """
        if self.count == 0:
            raise DigestError("quantile() on an empty digest")
        if not 0.0 <= q <= 1.0:
            raise DigestError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self._min  # type: ignore[return-value]
        if q == 1.0:
            return self._max  # type: ignore[return-value]
        rank = max(0, min(self.count - 1, math.ceil(q * (self.count - 1))))
        cum = 0
        # Ascending value order: negatives (large magnitude first), the
        # zero bucket, then positives (small magnitude first).
        for key in sorted(self.neg_bins, reverse=True):
            cum += self.neg_bins[key]
            if cum >= rank + 1:
                return self._clamp(-self._representative(key))
        cum += self.zeros
        if cum >= rank + 1:
            # Clamp keeps the estimate inside the observed range even
            # when every "zero" sample was a sub-epsilon positive (or
            # negative) — error stays bounded by epsilon either way.
            return self._clamp(0.0)
        for key in sorted(self.bins):
            cum += self.bins[key]
            if cum >= rank + 1:
                return self._clamp(self._representative(key))
        return self._max  # type: ignore[return-value]  # float slack

    def _clamp(self, value: float) -> float:
        return max(self._min, min(self._max, value))  # type: ignore[arg-type]

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    # -- merge -------------------------------------------------------------
    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """A new digest equal to folding both inputs' samples.

        Exactly associative and commutative: bin counts add, extremes
        fold through min/max. Raises on mismatched accuracy settings.
        """
        if not isinstance(other, QuantileDigest):
            raise DigestError(f"cannot merge {type(other).__name__}")
        if (other.relative_error != self.relative_error
                or other.epsilon != self.epsilon):
            raise DigestError(
                "cannot merge digests with different accuracy settings")
        out = QuantileDigest(self.relative_error, self.epsilon)
        out.count = self.count + other.count
        out.zeros = self.zeros + other.zeros
        for src in (self.bins, other.bins):
            for k, n in src.items():
                out.bins[k] = out.bins.get(k, 0) + n
        for src in (self.neg_bins, other.neg_bins):
            for k, n in src.items():
                out.neg_bins[k] = out.neg_bins.get(k, 0) + n
        mins = [m for m in (self._min, other._min) if m is not None]
        maxs = [m for m in (self._max, other._max) if m is not None]
        out._min = min(mins) if mins else None
        out._max = max(maxs) if maxs else None
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileDigest):
            return NotImplemented
        return (self.relative_error == other.relative_error
                and self.epsilon == other.epsilon
                and self.count == other.count
                and self.zeros == other.zeros
                and self.bins == other.bins
                and self.neg_bins == other.neg_bins
                and self._min == other._min
                and self._max == other._max)

    __hash__ = None  # type: ignore[assignment]

    # -- wire --------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "relative_error": self.relative_error,
            "epsilon": self.epsilon,
            "count": self.count,
            "zeros": self.zeros,
            "bins": {str(k): v for k, v in self.bins.items()},
            "neg_bins": {str(k): v for k, v in self.neg_bins.items()},
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "QuantileDigest":
        out = cls(float(doc["relative_error"]), float(doc["epsilon"]))
        out.count = int(doc["count"])
        out.zeros = int(doc["zeros"])
        out.bins = {int(k): int(v) for k, v in doc["bins"].items()}
        out.neg_bins = {int(k): int(v) for k, v in doc["neg_bins"].items()}
        out._min = None if doc["min"] is None else float(doc["min"])
        out._max = None if doc["max"] is None else float(doc["max"])
        return out


# ---------------------------------------------------------------------------
# Windowed rollups
# ---------------------------------------------------------------------------


@dataclass
class WindowStat:
    """One closed or in-progress rollup window ``[start, start+width)``."""

    start: float
    width: float
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    digest: QuantileDigest = field(default_factory=QuantileDigest)

    @property
    def end(self) -> float:
        return self.start + self.width

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "start": self.start, "end": self.end, "count": self.count,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "p50": self.digest.quantile(0.5) if self.count else None,
            "p99": self.digest.quantile(0.99) if self.count else None,
        }


class WindowedRollup:
    """Boundary-aligned fixed-width time windows over a value stream.

    Window ``k`` covers exactly ``[k*window_s, (k+1)*window_s)`` — a
    sample at ``t`` lands in window ``floor(t / window_s)``, so a sample
    exactly on a boundary opens the *new* window. Two rollups with the
    same width and accuracy merge window-wise (associatively).
    """

    def __init__(self, window_s: float, relative_error: float = 0.01):
        if window_s <= 0:
            raise DigestError(f"window_s must be > 0, got {window_s}")
        self.window_s = float(window_s)
        self.relative_error = relative_error
        self._windows: Dict[int, WindowStat] = {}

    def window_index(self, t: float) -> int:
        return int(math.floor(t / self.window_s))

    def window_start(self, t: float) -> float:
        return self.window_index(t) * self.window_s

    def add(self, t: float, value: float) -> WindowStat:
        """Fold one sample at time ``t``; returns its window."""
        idx = self.window_index(t)
        stat = self._windows.get(idx)
        if stat is None:
            stat = WindowStat(start=idx * self.window_s, width=self.window_s,
                              digest=QuantileDigest(self.relative_error))
            self._windows[idx] = stat
        stat.count += 1
        stat.total += value
        stat.min = min(stat.min, value)
        stat.max = max(stat.max, value)
        stat.digest.add(value)
        return stat

    @property
    def count(self) -> int:
        return sum(w.count for w in self._windows.values())

    def windows(self) -> List[WindowStat]:
        """All windows in ascending start order."""
        return [self._windows[k] for k in sorted(self._windows)]

    def merge(self, other: "WindowedRollup") -> "WindowedRollup":
        """Window-wise merge (associative; same width/accuracy only)."""
        if (other.window_s != self.window_s
                or other.relative_error != self.relative_error):
            raise DigestError(
                "cannot merge rollups with different window/accuracy")
        out = WindowedRollup(self.window_s, self.relative_error)
        for src in (self._windows, other._windows):
            for idx, stat in src.items():
                have = out._windows.get(idx)
                if have is None:
                    merged = WindowStat(
                        start=stat.start, width=stat.width, count=stat.count,
                        total=stat.total, min=stat.min, max=stat.max,
                        digest=stat.digest.merge(
                            QuantileDigest(self.relative_error)),
                    )
                    out._windows[idx] = merged
                else:
                    have.count += stat.count
                    have.total += stat.total
                    have.min = min(have.min, stat.min)
                    have.max = max(have.max, stat.max)
                    have.digest = have.digest.merge(stat.digest)
        return out

    def to_rows(self) -> List[Dict[str, object]]:
        return [w.to_dict() for w in self.windows()]
