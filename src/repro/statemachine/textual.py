"""Textual form of the intermediate language.

The paper's developers mostly reach the intermediate language through
the generator, but §3.3 allows writing machines directly when the
property language lacks expressiveness. This module gives that textual
form — a parser (:func:`parse_machine`, :func:`parse_machines`) and a
pretty-printer (:func:`print_machine`) that round-trip::

    machine maxTries_accel {
      var i: int = 0;
      initial NotStarted;
      state NotStarted {
        on startTask(accel) -> Started / { i := 1; }
      }
      state Started {
        on startTask(accel) [i < 10] -> Started / { i := i + 1; }
        on startTask(accel) [i >= 10] -> NotStarted / { fail(skipPath); i := 0; }
        on endTask(accel) -> NotStarted / { i := 0; }
      }
    }

Triggers are ``startTask(<task>)``, ``endTask(<task>)`` (``*`` for any
task), or ``anyEvent``. Guards sit in square brackets. Bodies contain
``x := expr;``, ``if cond { ... } else { ... }``, and
``fail(<action>[, path=N]);``. Expressions may reference machine
variables, ``event.timestamp``, ``event.task``, and ``event.data.<key>``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import StateMachineError
from repro.statemachine.model import (
    ANY_EVENT,
    END_TASK,
    START_TASK,
    Assign,
    BinOp,
    Const,
    EventField,
    EventIs,
    EventPattern,
    Expr,
    ExternRef,
    Fail,
    HasData,
    If,
    Not,
    StateMachine,
    Stmt,
    Transition,
    Var,
    Variable,
)

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>\d+\.\d+|\d+)
  | (?P<assign>:=)
  | (?P<arrow>->)
  | (?P<op><=|>=|==|!=|[-+*/<>])
  | (?P<punct>[{}()\[\];:,.=])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*|\*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"machine", "var", "initial", "state", "on", "if", "else", "fail",
             "true", "false", "not", "and", "or", "event", "path"}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise StateMachineError(
                f"intermediate language: unexpected character {source[pos]!r} at offset {pos}"
            )
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind, m.group(), m.start()))
    tokens.append(_Token("eof", "", len(source)))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str):
        self._tokens = _tokenize(source)
        self._i = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._i]

    def _next(self) -> _Token:
        tok = self._tokens[self._i]
        self._i += 1
        return tok

    def _expect(self, text: str) -> _Token:
        tok = self._next()
        if tok.text != text:
            raise StateMachineError(
                f"intermediate language: expected {text!r}, got {tok.text!r} "
                f"at offset {tok.pos}"
            )
        return tok

    def _expect_ident(self) -> str:
        tok = self._next()
        if tok.kind != "ident" or tok.text == "*":
            raise StateMachineError(
                f"intermediate language: expected identifier, got {tok.text!r} "
                f"at offset {tok.pos}"
            )
        return tok.text

    def _accept(self, text: str) -> bool:
        if self._peek().text == text:
            self._next()
            return True
        return False

    # -- grammar ---------------------------------------------------------
    def parse_machines(self) -> List[StateMachine]:
        machines = []
        while self._peek().kind != "eof":
            machines.append(self.parse_machine())
        return machines

    def parse_machine(self) -> StateMachine:
        self._expect("machine")
        name = self._expect_ident()
        self._expect("{")
        variables: List[Variable] = []
        states: List[str] = []
        initial: Optional[str] = None
        transitions: List[Transition] = []
        while not self._accept("}"):
            tok = self._peek()
            if tok.text == "var":
                variables.append(self._parse_var())
            elif tok.text == "initial":
                self._next()
                initial = self._expect_ident()
                self._expect(";")
            elif tok.text == "state":
                state, trans = self._parse_state()
                states.append(state)
                transitions.extend(trans)
            else:
                raise StateMachineError(
                    f"intermediate language: unexpected {tok.text!r} at offset {tok.pos}"
                )
        if initial is None:
            raise StateMachineError(f"machine {name!r}: missing 'initial' declaration")
        return StateMachine(name, states, initial, variables, transitions)

    def _parse_var(self) -> Variable:
        self._expect("var")
        name = self._expect_ident()
        self._expect(":")
        vtype = self._expect_ident()
        initial = None
        if self._accept("="):
            initial = self._parse_literal()
        self._expect(";")
        return Variable(name, vtype, initial)

    def _parse_literal(self):
        tok = self._next()
        if tok.kind == "num":
            return float(tok.text) if "." in tok.text else int(tok.text)
        if tok.text == "true":
            return True
        if tok.text == "false":
            return False
        if tok.text == "-":
            value = self._parse_literal()
            return -value
        raise StateMachineError(
            f"intermediate language: expected literal, got {tok.text!r} at offset {tok.pos}"
        )

    def _parse_state(self) -> Tuple[str, List[Transition]]:
        self._expect("state")
        name = self._expect_ident()
        self._expect("{")
        transitions: List[Transition] = []
        while not self._accept("}"):
            transitions.append(self._parse_transition(name))
        return name, transitions

    def _parse_transition(self, source: str) -> Transition:
        self._expect("on")
        trigger = self._parse_trigger()
        guard: Optional[Expr] = None
        if self._accept("["):
            guard = self._parse_expr()
            self._expect("]")
        self._expect("->")
        target = self._expect_ident()
        body: Tuple[Stmt, ...] = ()
        if self._accept("/"):
            self._expect("{")
            body = tuple(self._parse_stmts())
        return Transition(source, target, trigger, guard, body)

    def _parse_trigger(self) -> EventPattern:
        kind = self._expect_ident()
        if kind == ANY_EVENT:
            return EventPattern(ANY_EVENT)
        if kind not in (START_TASK, END_TASK):
            raise StateMachineError(f"unknown trigger kind {kind!r}")
        self._expect("(")
        tok = self._next()
        task = None if tok.text == "*" else tok.text
        self._expect(")")
        return EventPattern(kind, task)

    def _parse_stmts(self) -> List[Stmt]:
        stmts: List[Stmt] = []
        while not self._accept("}"):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> Stmt:
        tok = self._peek()
        if tok.text == "fail":
            self._next()
            self._expect("(")
            action = self._expect_ident()
            path = None
            if self._accept(","):
                self._expect("path")
                self._expect("=")
                num = self._next()
                if num.kind != "num":
                    raise StateMachineError("fail(): path must be a number")
                path = int(num.text)
            self._expect(")")
            self._expect(";")
            return Fail(action, path)
        if tok.text == "if":
            self._next()
            cond = self._parse_expr()
            self._expect("{")
            then = tuple(self._parse_stmts())
            orelse: Tuple[Stmt, ...] = ()
            if self._accept("else"):
                self._expect("{")
                orelse = tuple(self._parse_stmts())
            return If(cond, then, orelse)
        # assignment
        var = self._expect_ident()
        self._expect(":=")
        expr = self._parse_expr()
        self._expect(";")
        return Assign(var, expr)

    # -- expressions (precedence climbing) --------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._peek().text == "or":
            self._next()
            left = BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._peek().text == "and":
            self._next()
            left = BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept("not"):
            return Not(self._parse_not())
        return self._parse_cmp()

    def _parse_cmp(self) -> Expr:
        left = self._parse_add()
        if self._peek().text in ("<", "<=", ">", ">=", "==", "!="):
            op = self._next().text
            return BinOp(op, left, self._parse_add())
        return left

    def _parse_add(self) -> Expr:
        left = self._parse_mul()
        while self._peek().text in ("+", "-"):
            op = self._next().text
            left = BinOp(op, left, self._parse_mul())
        return left

    def _parse_mul(self) -> Expr:
        left = self._parse_atom()
        while self._peek().text in ("*", "/"):
            op = self._next().text
            left = BinOp(op, left, self._parse_atom())
        return left

    def _parse_atom(self) -> Expr:
        tok = self._next()
        if tok.text == "(":
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if tok.kind == "num":
            return Const(float(tok.text) if "." in tok.text else int(tok.text))
        if tok.text == "true":
            return Const(True)
        if tok.text == "false":
            return Const(False)
        if tok.text == "-":
            inner = self._parse_atom()
            return BinOp("-", Const(0), inner)
        if tok.text == "event":
            self._expect(".")
            field = self._expect_ident()
            if field == "data":
                self._expect(".")
                field = "data." + self._expect_ident()
            return EventField(field)
        if tok.text == "eventIs" and self._peek().text == "(":
            self._expect("(")
            kind = self._expect_ident()
            self._expect(",")
            task_tok = self._next()
            task = None if task_tok.text == "*" else task_tok.text
            self._expect(")")
            return EventIs(kind, task)
        if tok.text == "hasData" and self._peek().text == "(":
            self._expect("(")
            key = self._expect_ident()
            self._expect(")")
            return HasData(key)
        if tok.text == "extern" and self._peek().text == "(":
            self._expect("(")
            machine = self._expect_ident()
            self._expect(".")
            var = self._expect_ident()
            self._expect(")")
            return ExternRef(machine, var)
        if tok.kind == "ident":
            return Var(tok.text)
        raise StateMachineError(
            f"intermediate language: unexpected {tok.text!r} in expression "
            f"at offset {tok.pos}"
        )


def parse_machine(source: str) -> StateMachine:
    """Parse exactly one ``machine { ... }`` block."""
    parser = _Parser(source)
    machine = parser.parse_machine()
    if parser._peek().kind != "eof":
        raise StateMachineError("trailing input after machine definition")
    return machine


def parse_machines(source: str) -> List[StateMachine]:
    """Parse a file containing any number of machine blocks."""
    return _Parser(source).parse_machines()


# ---------------------------------------------------------------------------
# Printer
# ---------------------------------------------------------------------------


def _fmt_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        if expr.value is True:
            return "true"
        if expr.value is False:
            return "false"
        return repr(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, EventField):
        return f"event.{expr.field}"
    if isinstance(expr, EventIs):
        return f"eventIs({expr.kind}, {expr.task or '*'})"
    if isinstance(expr, HasData):
        return f"hasData({expr.key})"
    if isinstance(expr, ExternRef):
        return f"extern({expr.machine}.{expr.var})"
    if isinstance(expr, Not):
        return f"not ({_fmt_expr(expr.operand)})"
    if isinstance(expr, BinOp):
        return f"({_fmt_expr(expr.left)} {expr.op} {_fmt_expr(expr.right)})"
    raise StateMachineError(f"cannot print expression {expr!r}")


def _fmt_stmt(stmt: Stmt, indent: str) -> List[str]:
    if isinstance(stmt, Assign):
        return [f"{indent}{stmt.var} := {_fmt_expr(stmt.expr)};"]
    if isinstance(stmt, Fail):
        path = f", path={stmt.path}" if stmt.path is not None else ""
        return [f"{indent}fail({stmt.action}{path});"]
    if isinstance(stmt, If):
        lines = [f"{indent}if {_fmt_expr(stmt.cond)} {{"]
        for s in stmt.then:
            lines.extend(_fmt_stmt(s, indent + "  "))
        if stmt.orelse:
            lines.append(f"{indent}}} else {{")
            for s in stmt.orelse:
                lines.extend(_fmt_stmt(s, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    raise StateMachineError(f"cannot print statement {stmt!r}")


def print_machine(machine: StateMachine) -> str:
    """Render a machine in the textual intermediate language."""
    lines = [f"machine {machine.name} {{"]
    for v in machine.variables:
        init = v.initial_value
        init_txt = "true" if init is True else "false" if init is False else repr(init)
        lines.append(f"  var {v.name}: {v.type} = {init_txt};")
    lines.append(f"  initial {machine.initial};")
    for state in machine.states:
        lines.append(f"  state {state} {{")
        for t in machine.transitions_from(state):
            trigger = (
                "anyEvent"
                if t.trigger.kind == ANY_EVENT
                else f"{t.trigger.kind}({t.trigger.task or '*'})"
            )
            guard = f" [{_fmt_expr(t.guard)}]" if t.guard is not None else ""
            line = f"    on {trigger}{guard} -> {t.target}"
            if t.body:
                lines.append(line + " / {")
                for stmt in t.body:
                    lines.extend(_fmt_stmt(stmt, "      "))
                lines.append("    }")
            else:
                lines.append(line)
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
