"""Parallel composition of monitor machines.

§2.1 notes that properties "can be extended and combined", and §3.3
that "multiple properties may fail concurrently for a given event". The
parallel product makes both analysable: a :class:`ProductInstance` runs
several machines in lockstep on one event stream, and
:func:`explore_product` model-checks the *joint* behaviour — in
particular finding the shortest event sequence on which a given set of
actions fires simultaneously, the situations the runtime's arbiter must
resolve.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import StateMachineError
from repro.statemachine.explore import Letter
from repro.statemachine.interpreter import MachineInstance, Verdict
from repro.statemachine.model import StateMachine, extern_refs


def dependency_order(machines: Sequence[StateMachine]) -> List[StateMachine]:
    """Sort machines so every ``extern(...)`` read points backwards.

    The shared-subformula compiler wires property machines to their
    sub-monitors through cross-machine variable reads; stepping in list
    order is only correct if each referenced machine updates *before*
    its readers on every event. This returns a stable topological order
    (machines keep their relative position wherever dependencies allow)
    and raises on unknown references or dependency cycles.
    """
    by_name = {m.name: i for i, m in enumerate(machines)}
    if len(by_name) != len(machines):
        raise StateMachineError("dependency_order: duplicate machine names")
    deps: Dict[int, List[int]] = {}
    for i, machine in enumerate(machines):
        wanted = []
        for ref in extern_refs(machine):
            if ref.machine not in by_name:
                raise StateMachineError(
                    f"machine {machine.name!r} reads "
                    f"{ref.machine}.{ref.var} but no machine "
                    f"{ref.machine!r} is in the set")
            j = by_name[ref.machine]
            if j != i and j not in wanted:
                wanted.append(j)
        deps[i] = wanted
    ordered: List[StateMachine] = []
    visiting: Dict[int, bool] = {}  # idx -> fully emitted?

    def visit(i: int, chain: tuple) -> None:
        if visiting.get(i):
            return
        if i in visiting:
            names = " -> ".join(machines[j].name for j in chain + (i,))
            raise StateMachineError(
                f"cyclic extern dependency between machines: {names}")
        visiting[i] = False
        for j in deps[i]:
            visit(j, chain + (i,))
        visiting[i] = True
        ordered.append(machines[i])

    for i in range(len(machines)):
        visit(i, ())
    return ordered


class ProductInstance:
    """Several machine instances stepped together on each event.

    Verdicts of all components are concatenated in component order —
    exactly what :class:`~repro.core.monitor.ArtemisMonitor` hands the
    arbiter for one event. Components may read each other's variables
    through ``extern(...)`` expressions; the resolver spans the product.
    """

    def __init__(self, machines: Sequence[StateMachine],
                 stores: Optional[Sequence[Dict[str, Any]]] = None):
        if not machines:
            raise StateMachineError("product of zero machines")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise StateMachineError("product components must have unique names")
        self.machines = list(machines)
        if stores is None:
            stores = [dict() for _ in machines]
        if len(stores) != len(machines):
            raise StateMachineError("one store per component required")
        by_name: Dict[str, MachineInstance] = {}

        def extern(machine_name: str, var_name: str) -> Any:
            try:
                instance = by_name[machine_name]
            except KeyError:
                raise StateMachineError(
                    f"extern read from unknown machine {machine_name!r}"
                ) from None
            return instance.get(var_name)

        self.instances = [MachineInstance(m, s, extern=extern)
                          for m, s in zip(machines, stores)]
        by_name.update({m.name: inst
                        for m, inst in zip(machines, self.instances)})

    def on_event(self, event: Any) -> List[Verdict]:
        verdicts: List[Verdict] = []
        for instance in self.instances:
            verdicts.extend(instance.on_event(event))
        return verdicts

    def reset(self) -> None:
        for instance in self.instances:
            instance.reset()

    @property
    def state(self) -> Tuple[str, ...]:
        return tuple(instance.state for instance in self.instances)

    def snapshot(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(instance.snapshot() for instance in self.instances)

    def _normalised(self, now: float) -> Tuple:
        parts = []
        for machine, instance in zip(self.machines, self.instances):
            store = instance.snapshot()
            items = [("state", store["state"])]
            for variable in machine.variables:
                value = store[f"var.{variable.name}"]
                if (variable.type == "time"
                        and isinstance(value, (int, float)) and value):
                    value = round(now - value, 9)
                items.append((variable.name, value))
            parts.append(tuple(items))
        return tuple(parts)


def joint_alphabet(machines: Sequence[StateMachine], deltas: Sequence[float],
                   data_values=(), paths: Sequence[int] = (0,)) -> List[Letter]:
    """Alphabet covering every task any component references."""
    tasks: List[str] = []
    for machine in machines:
        for task in machine.referenced_tasks():
            if task not in tasks:
                tasks.append(task)
    if not tasks:
        tasks = ["t"]
    letters = []
    data_values = dict(data_values)
    for task in tasks:
        for kind in ("startTask", "endTask"):
            for delta in deltas:
                for path in paths:
                    if data_values:
                        for key, values in data_values.items():
                            for value in values:
                                letters.append(Letter(kind, task, delta,
                                                      ((key, value),), path))
                    else:
                        letters.append(Letter(kind, task, delta, (), path))
    return letters


def explore_product(
    machines: Sequence[StateMachine],
    alphabet: Sequence[Letter],
    depth: int,
    max_configurations: int = 500_000,
) -> Dict[FrozenSet[str], Tuple[Letter, ...]]:
    """Find, for each *set* of actions that can fire on one event, the
    shortest witness sequence (BFS order guarantees minimality).

    Returns ``{frozenset(action_names): witness}``; singleton sets are
    single failures, larger sets are the concurrent-failure scenarios
    the arbiter exists for.
    """
    if depth < 0:
        raise StateMachineError("depth must be non-negative")
    product = ProductInstance(machines)
    seen = {product._normalised(0.0)}
    witnesses: Dict[FrozenSet[str], Tuple[Letter, ...]] = {}
    queue = deque([(product.snapshot(), 0.0, ())])
    configurations = 1
    while queue:
        stores, now, sequence = queue.popleft()
        if len(sequence) >= depth:
            continue
        for letter in alphabet:
            instance = ProductInstance(
                machines, [dict(s) for s in stores])
            event = letter.event(now)
            try:
                verdicts = instance.on_event(event)
            except StateMachineError:
                continue
            new_sequence = sequence + (letter,)
            if verdicts:
                key = frozenset(v.action for v in verdicts)
                if key not in witnesses:
                    witnesses[key] = new_sequence
            config = instance._normalised(event.timestamp)
            if config not in seen:
                seen.add(config)
                configurations += 1
                if configurations > max_configurations:
                    raise StateMachineError(
                        "product exploration exceeded "
                        f"{max_configurations} configurations")
                queue.append((instance.snapshot(), event.timestamp,
                              new_sequence))
    return witnesses
