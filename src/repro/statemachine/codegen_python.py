"""Model-to-text backend: generate Python monitor classes.

This is the executable leg of the paper's generation pipeline. Rather
than interpreting the machine at runtime, we *emit source code* for a
monitor class and compile it with :func:`compile`/``exec`` — the Python
analogue of the paper's generated C monitors. The generated class has the
same interface as :class:`~repro.statemachine.interpreter.MachineInstance`
(``reset``, ``on_event``, ``state``, ``get``) so the two are
differential-testable.
"""

from __future__ import annotations

from typing import Any, Dict, MutableMapping, Optional, Type

from repro.errors import GenerationError, StateMachineError
from repro.statemachine.interpreter import Verdict
from repro.statemachine.model import (
    ANY_EVENT,
    Assign,
    BinOp,
    Const,
    EventField,
    EventIs,
    EventPattern,
    Expr,
    ExternRef,
    Fail,
    HasData,
    If,
    Not,
    StateMachine,
    Stmt,
    Var,
)


def _gen_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Var):
        return f"self._store['var.{expr.name}']"
    if isinstance(expr, EventField):
        if expr.field == "timestamp":
            return "event.timestamp"
        if expr.field == "task":
            return "event.task"
        if expr.field == "path":
            return "getattr(event, 'path', 0)"
        if expr.field.startswith("data."):
            key = expr.field[len("data."):]
            return f"self._data(event, {key!r})"
        raise GenerationError(f"unknown event field {expr.field!r}")
    if isinstance(expr, EventIs):
        cond = f"event.kind == {expr.kind!r}"
        if expr.task is not None:
            cond += f" and event.task == {expr.task!r}"
        return f"({cond})"
    if isinstance(expr, HasData):
        return f"({expr.key!r} in (getattr(event, 'data', None) or {{}}))"
    if isinstance(expr, ExternRef):
        return f"self._extern({expr.machine!r}, {expr.var!r})"
    if isinstance(expr, Not):
        return f"(not {_gen_expr(expr.operand)})"
    if isinstance(expr, BinOp):
        py_op = {"and": "and", "or": "or"}.get(expr.op, expr.op)
        return f"({_gen_expr(expr.left)} {py_op} {_gen_expr(expr.right)})"
    raise GenerationError(f"cannot generate expression {expr!r}")


def _gen_stmt(stmt: Stmt, indent: str) -> list:
    if isinstance(stmt, Assign):
        return [f"{indent}self._store['var.{stmt.var}'] = {_gen_expr(stmt.expr)}"]
    if isinstance(stmt, Fail):
        return [
            f"{indent}verdicts.append(Verdict(self.MACHINE_NAME, "
            f"{stmt.action!r}, {stmt.path!r}))"
        ]
    if isinstance(stmt, If):
        lines = [f"{indent}if {_gen_expr(stmt.cond)}:"]
        body = [ln for s in stmt.then for ln in _gen_stmt(s, indent + "    ")]
        lines.extend(body or [f"{indent}    pass"])
        if stmt.orelse:
            lines.append(f"{indent}else:")
            lines.extend(ln for s in stmt.orelse for ln in _gen_stmt(s, indent + "    "))
        return lines
    raise GenerationError(f"cannot generate statement {stmt!r}")


def _gen_trigger_cond(trigger: EventPattern) -> str:
    conds = []
    if trigger.kind != ANY_EVENT:
        conds.append(f"event.kind == {trigger.kind!r}")
    if trigger.task is not None:
        conds.append(f"event.task == {trigger.task!r}")
    return " and ".join(conds) if conds else "True"


def generate_python_source(machine: StateMachine) -> str:
    """Emit Python source text for a monitor class for ``machine``."""
    cls = class_name(machine)
    lines = [
        f"class {cls}:",
        f"    '''Generated monitor for state machine {machine.name!r}.'''",
        "",
        f"    MACHINE_NAME = {machine.name!r}",
        f"    STATES = {tuple(machine.states)!r}",
        f"    PRIORITY = {machine.priority!r}",
        "",
        "    def __init__(self, store=None, extern=None):",
        "        self._store = store if store is not None else {}",
        "        self._extern_resolver = extern",
        "        if 'state' not in self._store:",
        "            self.reset()",
        "",
        "    def reset(self):",
        f"        self._store['state'] = {machine.initial!r}",
    ]
    for v in machine.variables:
        lines.append(f"        self._store['var.{v.name}'] = {v.initial_value!r}")
    lines.extend(
        [
            "",
            "    @property",
            "    def state(self):",
            "        return self._store['state']",
            "",
            "    def get(self, name):",
            "        return self._store['var.' + name]",
            "",
            "    def _extern(self, machine, var):",
            "        if self._extern_resolver is None:",
            "            raise StateMachineError(",
            "                'extern read %s.%s without a resolver'",
            "                % (machine, var))",
            "        return self._extern_resolver(machine, var)",
            "",
            "    @staticmethod",
            "    def _data(event, key):",
            "        data = getattr(event, 'data', None) or {}",
            "        if key not in data:",
            "            raise StateMachineError(",
            "                'event carries no dependent data %r' % (key,))",
            "        return data[key]",
            "",
            "    def on_event(self, event):",
            "        verdicts = []",
            "        state = self._store['state']",
        ]
    )
    first = True
    for state in machine.states:
        kw = "if" if first else "elif"
        first = False
        lines.append(f"        {kw} state == {state!r}:")
        transitions = machine.transitions_from(state)
        if not transitions:
            lines.append("            pass")
            continue
        for t in transitions:
            cond = _gen_trigger_cond(t.trigger)
            if t.guard is not None:
                cond = f"({cond}) and ({_gen_expr(t.guard)})"
            lines.append(f"            if {cond}:")
            for stmt in t.body:
                lines.extend(_gen_stmt(stmt, "                "))
            lines.append(f"                self._store['state'] = {t.target!r}")
            lines.append("                return verdicts")
    lines.append("        return verdicts")
    lines.append("")
    return "\n".join(lines) + "\n"


def class_name(machine: StateMachine) -> str:
    """Name of the generated monitor class for a machine."""
    return f"Monitor_{machine.name}"


def compile_machine(machine: StateMachine) -> Type:
    """Generate, compile, and return the monitor class for ``machine``."""
    source = generate_python_source(machine)
    namespace: Dict[str, Any] = {
        "Verdict": Verdict,
        "StateMachineError": StateMachineError,
    }
    code = compile(source, filename=f"<generated monitor {machine.name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated code
    return namespace[class_name(machine)]


def instantiate(machine: StateMachine,
                store: Optional[MutableMapping[str, Any]] = None,
                extern: Optional[Any] = None):
    """Convenience: compile and construct a monitor in one call."""
    return compile_machine(machine)(store, extern)
