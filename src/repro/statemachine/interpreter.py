"""Reference interpreter for intermediate-language machines.

This is the semantic ground truth: the generated Python monitors are
differential-tested against it (same machine, same event stream, same
verdicts). State and variables live in a caller-provided mutable mapping
so an NVM-backed store makes the instance power-failure persistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, MutableMapping, Optional, Sequence

from repro.errors import StateMachineError
from repro.statemachine.model import (
    Assign,
    BinOp,
    Const,
    EventField,
    EventIs,
    Expr,
    ExternRef,
    Fail,
    HasData,
    If,
    Not,
    StateMachine,
    Stmt,
    Transition,
    Var,
)


@dataclass(frozen=True)
class Verdict:
    """A property violation reported by a machine for one event."""

    machine: str
    action: str
    path: Optional[int] = None


class MachineInstance:
    """A running instance of a :class:`StateMachine`.

    Args:
        machine: the definition to execute.
        store: mutable mapping holding ``"state"`` and ``"var.<name>"``
            entries. Pass an NVM-backed mapping for persistence; defaults
            to a plain dict (volatile).
        extern: resolver ``(machine_name, var_name) -> value`` for
            cross-machine ``extern(...)`` reads; required only when the
            machine references sub-monitors.
    """

    def __init__(
        self,
        machine: StateMachine,
        store: Optional[MutableMapping[str, Any]] = None,
        extern: Optional[Any] = None,
    ):
        self.machine = machine
        self._store: MutableMapping[str, Any] = store if store is not None else {}
        self._extern = extern
        if "state" not in self._store:
            self.reset()

    # ------------------------------------------------------------------
    # Persistent state access
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._store["state"]

    def get(self, var: str) -> Any:
        key = f"var.{var}"
        if key not in self._store:
            raise StateMachineError(f"{self.machine.name}: unknown variable {var!r}")
        return self._store[key]

    def _set(self, var: str, value: Any) -> None:
        self._store[f"var.{var}"] = value

    def reset(self) -> None:
        """(Re-)initialise to the initial state and variable defaults.

        Called on first boot (the paper's ``resetMonitor``) and when the
        runtime restarts a path whose monitors must be re-initialised.
        """
        self._store["state"] = self.machine.initial
        for v in self.machine.variables:
            self._store[f"var.{v.name}"] = v.initial_value

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def on_event(self, event: Any) -> List[Verdict]:
        """Feed one runtime event; returns any failure verdicts.

        ``event`` needs ``kind`` (``"startTask"``/``"endTask"``), ``task``
        (name), ``timestamp`` (seconds) and ``data`` (mapping) attributes
        — :class:`repro.core.events.MonitorEvent` provides them.

        Events with no matching transition are accepted silently (the
        paper's implicit self-transition).
        """
        transition = self._match(event)
        if transition is None:
            return []
        verdicts: List[Verdict] = []
        self._exec_body(transition.body, event, verdicts)
        self._store["state"] = transition.target
        return verdicts

    def _match(self, event: Any) -> Optional[Transition]:
        for transition in self.machine.transitions_from(self.state):
            if not transition.trigger.matches(event.kind, event.task):
                continue
            if transition.guard is None or self._eval(transition.guard, event):
                return transition
        return None

    # ------------------------------------------------------------------
    # Expression / statement evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, event: Any) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            return self.get(expr.name)
        if isinstance(expr, EventField):
            return _event_field(event, expr.field)
        if isinstance(expr, EventIs):
            return expr.kind == event.kind and (
                expr.task is None or expr.task == event.task)
        if isinstance(expr, HasData):
            return expr.key in (getattr(event, "data", None) or {})
        if isinstance(expr, ExternRef):
            if self._extern is None:
                raise StateMachineError(
                    f"{self.machine.name}: extern read "
                    f"{expr.machine}.{expr.var} without a resolver")
            return self._extern(expr.machine, expr.var)
        if isinstance(expr, Not):
            return not self._eval(expr.operand, event)
        if isinstance(expr, BinOp):
            op = expr.op
            # Short-circuit booleans first.
            if op == "and":
                return bool(self._eval(expr.left, event)) and bool(
                    self._eval(expr.right, event)
                )
            if op == "or":
                return bool(self._eval(expr.left, event)) or bool(
                    self._eval(expr.right, event)
                )
            left = self._eval(expr.left, event)
            right = self._eval(expr.right, event)
            return _apply(op, left, right)
        raise StateMachineError(f"unknown expression node {expr!r}")

    def _exec_body(self, body: Sequence[Stmt], event: Any, verdicts: List[Verdict]) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                self._set(stmt.var, self._eval(stmt.expr, event))
            elif isinstance(stmt, Fail):
                verdicts.append(Verdict(self.machine.name, stmt.action, stmt.path))
            elif isinstance(stmt, If):
                branch = stmt.then if self._eval(stmt.cond, event) else stmt.orelse
                self._exec_body(branch, event, verdicts)
            else:
                raise StateMachineError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Copy of the persistent store (state + variables)."""
        return dict(self._store)

    def __repr__(self) -> str:
        return f"MachineInstance({self.machine.name!r}, state={self.state!r})"


def _event_field(event: Any, field: str) -> Any:
    if field == "timestamp":
        return event.timestamp
    if field == "task":
        return event.task
    if field == "path":
        return getattr(event, "path", 0)
    if field.startswith("data."):
        key = field[len("data."):]
        data = getattr(event, "data", None) or {}
        if key not in data:
            raise StateMachineError(f"event carries no dependent data {key!r}")
        return data[key]
    raise StateMachineError(f"unknown event field {field!r}")


def _apply(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise StateMachineError("division by zero in guard/body expression")
        return left / right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    raise StateMachineError(f"unknown operator {op!r}")
