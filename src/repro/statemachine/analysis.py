"""Static analyses over intermediate-language machines.

Quality gates for generated and hand-written monitors:

* :func:`unreachable_states` — states no transition path can reach from
  the initial state;
* :func:`dead_transitions` — transitions whose guard is a constant
  false (never firable);
* :func:`nondeterministic_pairs` — pairs of transitions from one state
  whose triggers overlap and whose guards can be simultaneously true
  (dispatch then silently depends on declaration order — the paper
  expects "mutually exclusive conditional guards");
* :func:`variable_usage` — variables written but never read and vice
  versa;
* :func:`lint` — all of the above as one report;
* :func:`worst_case_event_cost` — path-sensitive worst case of how many
  transitions one dispatched event scans and how many expression/
  statement operations it can execute (feeds the static energy/latency
  analyzer in :mod:`repro.analysis.energy`).

Guard overlap is undecidable in general; :func:`nondeterministic_pairs`
uses randomized valuation sampling, which is sound for reporting *found*
overlaps (every reported pair has a concrete witness) and effective in
practice for the arithmetic guards property templates generate.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.statemachine.model import (
    ANY_EVENT,
    Assign,
    BinOp,
    Const,
    EventField,
    EventIs,
    Expr,
    ExternRef,
    Fail,
    HasData,
    If,
    Not,
    StateMachine,
    Stmt,
    Transition,
    Var,
    _flatten,
    _var_refs,
)


# ---------------------------------------------------------------------------
# Reachability
# ---------------------------------------------------------------------------


def unreachable_states(machine: StateMachine) -> List[str]:
    """States with no transition path from the initial state."""
    reached: Set[str] = {machine.initial}
    frontier = [machine.initial]
    while frontier:
        state = frontier.pop()
        for transition in machine.transitions_from(state):
            if transition.target not in reached:
                reached.add(transition.target)
                frontier.append(transition.target)
    return [s for s in machine.states if s not in reached]


# ---------------------------------------------------------------------------
# Dead transitions
# ---------------------------------------------------------------------------


def _const_value(expr: Optional[Expr]) -> Optional[Any]:
    """Fold an expression to a constant if it contains no variables or
    event fields; otherwise None."""
    if expr is None:
        return True
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Not):
        inner = _const_value(expr.operand)
        return None if inner is None else not inner
    if isinstance(expr, BinOp):
        left = _const_value(expr.left)
        right = _const_value(expr.right)
        if left is None or right is None:
            return None
        from repro.statemachine.interpreter import _apply

        if expr.op == "and":
            return bool(left) and bool(right)
        if expr.op == "or":
            return bool(left) or bool(right)
        try:
            return _apply(expr.op, left, right)
        except Exception:
            return None
    return None


def dead_transitions(machine: StateMachine) -> List[Transition]:
    """Transitions whose guard constant-folds to false."""
    dead = []
    for transition in machine.transitions:
        value = _const_value(transition.guard)
        if value is not None and not value:
            dead.append(transition)
    return dead


# ---------------------------------------------------------------------------
# Nondeterminism (overlapping guards)
# ---------------------------------------------------------------------------


def _triggers_overlap(a: Transition, b: Transition) -> bool:
    ta, tb = a.trigger, b.trigger
    kinds_overlap = (ta.kind == ANY_EVENT or tb.kind == ANY_EVENT
                     or ta.kind == tb.kind)
    tasks_overlap = ta.task is None or tb.task is None or ta.task == tb.task
    return kinds_overlap and tasks_overlap


class _SampledEvent:
    """Random event valuation for guard sampling."""

    def __init__(self, rng: random.Random, task: str, data_keys: Sequence[str]):
        self.kind = rng.choice(["startTask", "endTask"])
        self.task = task
        self.timestamp = rng.uniform(0.0, 1000.0)
        self.path = rng.randint(0, 4)
        self.data = {key: rng.uniform(-100.0, 100.0) for key in data_keys}


def _data_keys(machine: StateMachine) -> List[str]:
    keys: List[str] = []

    def visit(expr: Optional[Expr]) -> None:
        if isinstance(expr, EventField) and expr.field.startswith("data."):
            key = expr.field[len("data."):]
            if key not in keys:
                keys.append(key)
        elif isinstance(expr, HasData):
            if expr.key not in keys:
                keys.append(expr.key)
        elif isinstance(expr, BinOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, Not):
            visit(expr.operand)

    for transition in machine.transitions:
        visit(transition.guard)
        for stmt in _flatten(transition.body):
            if isinstance(stmt, Assign):
                visit(stmt.expr)
            elif isinstance(stmt, If):
                visit(stmt.cond)
    return keys


def nondeterministic_pairs(
    machine: StateMachine, samples: int = 400, seed: int = 0
) -> List[Tuple[Transition, Transition]]:
    """Transition pairs from one state that can both be enabled.

    Each reported pair comes with a concrete witness valuation found by
    sampling; an empty result is strong evidence (not proof) of
    determinism.
    """
    from repro.statemachine.interpreter import MachineInstance

    rng = random.Random(seed)
    data_keys = _data_keys(machine)
    overlapping: List[Tuple[Transition, Transition]] = []
    for state in machine.states:
        transitions = machine.transitions_from(state)
        for a, b in itertools.combinations(transitions, 2):
            if not _triggers_overlap(a, b):
                continue
            if _found_joint_witness(machine, state, a, b, rng, data_keys, samples):
                overlapping.append((a, b))
    return overlapping


def _found_joint_witness(machine, state, a, b, rng, data_keys, samples) -> bool:
    from repro.statemachine.interpreter import MachineInstance

    instance = MachineInstance(machine)
    task = a.trigger.task or b.trigger.task or "anytask"
    for _ in range(samples):
        # Randomise the variable values too.
        for variable in machine.variables:
            if variable.type == "bool":
                instance._set(variable.name, rng.random() < 0.5)
            else:
                instance._set(variable.name, rng.uniform(-50.0, 1000.0))
        event = _SampledEvent(rng, task, data_keys)
        if not a.trigger.matches(event.kind, event.task):
            continue
        if not b.trigger.matches(event.kind, event.task):
            continue
        try:
            a_on = a.guard is None or instance._eval(a.guard, event)
            b_on = b.guard is None or instance._eval(b.guard, event)
        except Exception:
            continue
        if a_on and b_on:
            return True
    return False


# ---------------------------------------------------------------------------
# Worst-case per-event cost (transitions scanned / operations executed)
# ---------------------------------------------------------------------------


def expr_ops(expr: Optional[Expr]) -> int:
    """Operation count of one expression (leaves and operators each
    count 1) — the unit of the per-event latency detail."""
    if expr is None:
        return 0
    if isinstance(expr, (Const, Var, EventField, EventIs, HasData, ExternRef)):
        return 1
    if isinstance(expr, Not):
        return 1 + expr_ops(expr.operand)
    if isinstance(expr, BinOp):
        return 1 + expr_ops(expr.left) + expr_ops(expr.right)
    return 1


def stmt_ops(stmts: Sequence[Any]) -> int:
    """Worst-case operation count of a statement body (``If`` takes the
    costlier branch)."""
    total = 0
    for stmt in stmts:
        if isinstance(stmt, Assign):
            total += 1 + expr_ops(stmt.expr)
        elif isinstance(stmt, If):
            total += 1 + expr_ops(stmt.cond) + max(
                stmt_ops(stmt.then), stmt_ops(stmt.orelse)
            )
        else:  # Fail and any future leaf statement
            total += 1
    return total


def _fold_event(expr: Optional[Expr], path: Optional[int],
                kind: Optional[str] = None,
                task: Optional[str] = None) -> Optional[Any]:
    """Three-valued constant fold of a guard given a concrete event:
    ``event.path`` becomes ``path`` (when known), ``eventIs`` patterns
    fold against ``kind``/``task`` (when known), ``and``/``or``
    short-circuit, everything data/variable-dependent stays unknown
    (``None``). Used to exclude transitions a path-scoped or event-atom
    guard makes unreachable for the event being costed."""
    if expr is None:
        return True
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, EventField):
        if expr.field == "path" and path is not None:
            return path
        return None
    if isinstance(expr, EventIs):
        if kind is None:
            return None
        if expr.kind != kind:
            return False
        if expr.task is None:
            return True
        return None if task is None else expr.task == task
    if isinstance(expr, Not):
        inner = _fold_event(expr.operand, path, kind, task)
        return None if inner is None else not inner
    if isinstance(expr, BinOp):
        left = _fold_event(expr.left, path, kind, task)
        right = _fold_event(expr.right, path, kind, task)
        if expr.op == "and":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        if expr.op == "or":
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)
        if left is None or right is None:
            return None
        from repro.statemachine.interpreter import _apply

        try:
            return _apply(expr.op, left, right)
        except Exception:
            return None
    return None


def worst_case_event_cost(
    machine: StateMachine,
    kind: str,
    task: str,
    path: Optional[int] = None,
) -> Tuple[int, int]:
    """``(transitions_scanned, operations)`` worst case for dispatching
    one ``(kind, task)`` event to this machine.

    Path-sensitive: with ``path`` given, transitions whose guard
    constant-folds to false for events on that path (the generator's
    ``event.path == N`` scoping conjuncts) are excluded. The dispatcher
    evaluates candidate guards in declaration order and runs the first
    matching body, so the operation bound is the sum of all candidate
    guard costs plus the costliest candidate body — maximised over
    source states, since the resident state is unknown statically.
    """
    worst = (0, 0)
    for state in machine.states:
        scanned = 0
        guard_ops = 0
        body_worst = 0
        for transition in machine.transitions_from(state):
            if not transition.trigger.matches(kind, task):
                continue
            if _fold_event(transition.guard, path, kind, task) is False:
                continue
            scanned += 1
            guard_ops += expr_ops(transition.guard)
            body_worst = max(body_worst, stmt_ops(transition.body))
        worst = max(worst, (scanned, guard_ops + body_worst))
    return worst


# ---------------------------------------------------------------------------
# Variable usage
# ---------------------------------------------------------------------------


@dataclass
class VariableUsage:
    written_never_read: List[str] = field(default_factory=list)
    read_never_written: List[str] = field(default_factory=list)


def variable_usage(machine: StateMachine) -> VariableUsage:
    """Classify variables as write-only or read-only (both are smells)."""
    written: Set[str] = set()
    read: Set[str] = set()
    for transition in machine.transitions:
        if transition.guard is not None:
            read.update(_var_refs(transition.guard))
        for stmt in _flatten(transition.body):
            if isinstance(stmt, Assign):
                written.add(stmt.var)
                read.update(_var_refs(stmt.expr))
            elif isinstance(stmt, If):
                read.update(_var_refs(stmt.cond))
    names = {v.name for v in machine.variables}
    return VariableUsage(
        written_never_read=sorted((written - read) & names),
        read_never_written=sorted((read - written) & names),
    )


# ---------------------------------------------------------------------------
# Combined lint
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    machine: str
    unreachable: List[str]
    dead: List[Transition]
    nondeterministic: List[Tuple[Transition, Transition]]
    usage: VariableUsage

    @property
    def clean(self) -> bool:
        return not (self.unreachable or self.dead or self.nondeterministic
                    or self.usage.written_never_read
                    or self.usage.read_never_written)

    def __str__(self) -> str:
        if self.clean:
            return f"machine {self.machine}: clean"
        lines = [f"machine {self.machine}:"]
        for state in self.unreachable:
            lines.append(f"  unreachable state {state!r}")
        for transition in self.dead:
            lines.append(f"  dead transition: {transition}")
        for a, b in self.nondeterministic:
            lines.append(f"  overlapping guards:\n    {a}\n    {b}")
        for name in self.usage.written_never_read:
            lines.append(f"  variable {name!r} written but never read")
        for name in self.usage.read_never_written:
            lines.append(f"  variable {name!r} read but never written")
        return "\n".join(lines)


def lint(machine: StateMachine, samples: int = 400, seed: int = 0) -> LintReport:
    """Run every analysis on one machine."""
    return LintReport(
        machine=machine.name,
        unreachable=unreachable_states(machine),
        dead=dead_transitions(machine),
        nondeterministic=nondeterministic_pairs(machine, samples, seed),
        usage=variable_usage(machine),
    )
