"""The ARTEMIS intermediate language: monitors as state machines.

Each property in the specification language compiles to one finite state
machine (paper §3.3, Figure 7). Machines have typed variables, states,
and transitions triggered by runtime events (``startTask`` / ``endTask``
/ ``anyEvent``), guarded by boolean expressions, with bodies made of
assignments, if-then-else, and ``fail`` statements that signal a property
violation plus the corrective action for the runtime.

Three consumers of the model live here:

* :mod:`~repro.statemachine.interpreter` — direct execution (reference
  semantics, used for differential testing).
* :mod:`~repro.statemachine.codegen_python` — model-to-text generation of
  Python monitor classes (the executable artifact used by the runtime).
* :mod:`~repro.statemachine.codegen_c` — model-to-text generation of C
  monitor code in the paper's ImmortalThreads style (used for fidelity
  and the Table 2 memory accounting).
* :mod:`~repro.statemachine.textual` — parser/printer for the textual
  form of the intermediate language, for developers who need to write
  machines directly (paper §3.3: "developers can engage directly with
  the intermediate language").
"""

from repro.statemachine.model import (
    ANY_EVENT,
    END_TASK,
    START_TASK,
    Assign,
    BinOp,
    Const,
    EventField,
    EventIs,
    EventPattern,
    ExternRef,
    Fail,
    HasData,
    If,
    Not,
    StateMachine,
    Transition,
    Var,
    Variable,
)
from repro.statemachine.interpreter import MachineInstance, Verdict
from repro.statemachine.analysis import lint
from repro.statemachine.compose import (
    ProductInstance,
    dependency_order,
    explore_product,
)
from repro.statemachine.explore import Letter, alphabet_for, explore
from repro.statemachine.textual import parse_machine, parse_machines, print_machine

__all__ = [
    "lint",
    "ProductInstance",
    "dependency_order",
    "explore_product",
    "Letter",
    "alphabet_for",
    "explore",
    "parse_machine",
    "parse_machines",
    "print_machine",
    "StateMachine",
    "Transition",
    "Variable",
    "EventPattern",
    "START_TASK",
    "END_TASK",
    "ANY_EVENT",
    "Const",
    "Var",
    "EventField",
    "EventIs",
    "HasData",
    "ExternRef",
    "BinOp",
    "Not",
    "Assign",
    "If",
    "Fail",
    "MachineInstance",
    "Verdict",
]
