"""Abstract syntax of the intermediate (state machine) language.

The model is deliberately small — the paper's Figure 7 machines need
only variables, guarded transitions, assignments, conditionals, and a
failure signal — but every construct is first-class so the two code
generators and the interpreter share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import StateMachineError

# ---------------------------------------------------------------------------
# Event patterns (transition triggers)
# ---------------------------------------------------------------------------

START_TASK = "startTask"
END_TASK = "endTask"
ANY_EVENT = "anyEvent"

_TRIGGER_KINDS = (START_TASK, END_TASK, ANY_EVENT)


@dataclass(frozen=True)
class EventPattern:
    """Trigger of a transition.

    ``kind`` is one of ``startTask``/``endTask``/``anyEvent``; ``task``
    restricts the trigger to events of one task (``None`` = any task).
    """

    kind: str
    task: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _TRIGGER_KINDS:
            raise StateMachineError(f"unknown trigger kind {self.kind!r}")

    def matches(self, event_kind: str, event_task: str) -> bool:
        if self.kind != ANY_EVENT and self.kind != event_kind:
            return False
        return self.task is None or self.task == event_task

    def __str__(self) -> str:
        return f"{self.kind}({self.task or '*'})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    value: Union[int, float, bool]

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var:
    """Reference to a machine variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class EventField:
    """Field of the triggering event: ``timestamp``, ``task``, or a
    dependent-data key accessed as ``data.<key>`` (dpData values)."""

    field: str

    def __str__(self) -> str:
        return f"event.{self.field}"


_BIN_OPS = ("+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=", "and", "or")


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise StateMachineError(f"unknown operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not:
    operand: "Expr"

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class EventIs:
    """Does the triggering event match a (kind, task) pattern?

    The temporal-logic compiler uses this to evaluate event atoms
    (``started(t)`` / ``ended(t)``) inside guards of wildcard-triggered
    machines, where the trigger pattern alone cannot discriminate.
    ``task`` of ``None`` matches any task.
    """

    kind: str
    task: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (START_TASK, END_TASK):
            raise StateMachineError(f"eventIs: unknown event kind {self.kind!r}")

    def __str__(self) -> str:
        return f"eventIs({self.kind}, {self.task or '*'})"


@dataclass(frozen=True)
class HasData:
    """Does the triggering event carry dependent data under ``key``?

    Unlike ``EventField("data.<key>")`` — which raises when the key is
    absent — this is a total predicate, letting data atoms evaluate to
    false on events that carry no such value.
    """

    key: str

    def __str__(self) -> str:
        return f"hasData({self.key})"


@dataclass(frozen=True)
class ExternRef:
    """Read a variable of *another* machine in the same monitor set.

    The shared-subformula compiler wires property machines to their
    sub-monitors through these references; ``compose.dependency_order``
    guarantees the referenced machine is stepped first on each event.
    """

    machine: str
    var: str

    def __str__(self) -> str:
        return f"extern({self.machine}.{self.var})"


Expr = Union[Const, Var, EventField, BinOp, Not, EventIs, HasData, ExternRef]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    var: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.var} := {self.expr}"


@dataclass(frozen=True)
class Fail:
    """Signal a property violation with a corrective action.

    ``action`` is an action name the runtime understands (``skipPath``,
    ``restartPath``, ``skipTask``, ``restartTask``, ``completePath``).
    ``path`` optionally pins the action to an explicit path number, as
    the spec language's ``Path: N`` does for merge-point tasks.
    """

    action: str
    path: Optional[int] = None

    def __str__(self) -> str:
        suffix = f", path={self.path}" if self.path is not None else ""
        return f"fail({self.action}{suffix})"


@dataclass(frozen=True)
class If:
    cond: Expr
    then: Tuple["Stmt", ...]
    orelse: Tuple["Stmt", ...] = ()

    def __str__(self) -> str:
        s = f"if {self.cond} {{ {'; '.join(map(str, self.then))} }}"
        if self.orelse:
            s += f" else {{ {'; '.join(map(str, self.orelse))} }}"
        return s


Stmt = Union[Assign, Fail, If]


# ---------------------------------------------------------------------------
# Machine structure
# ---------------------------------------------------------------------------

_VAR_TYPES = ("int", "float", "bool", "time")

_TYPE_DEFAULTS = {"int": 0, "float": 0.0, "bool": False, "time": 0.0}


@dataclass(frozen=True)
class Variable:
    """Typed machine variable; persisted in NVM by the monitor."""

    name: str
    type: str = "int"
    initial: Union[int, float, bool, None] = None

    def __post_init__(self) -> None:
        if self.type not in _VAR_TYPES:
            raise StateMachineError(f"variable {self.name!r}: unknown type {self.type!r}")
        if not self.name.isidentifier():
            raise StateMachineError(f"invalid variable name {self.name!r}")

    @property
    def initial_value(self) -> Union[int, float, bool]:
        if self.initial is None:
            return _TYPE_DEFAULTS[self.type]
        return self.initial


@dataclass(frozen=True)
class Transition:
    source: str
    target: str
    trigger: EventPattern
    guard: Optional[Expr] = None
    body: Tuple[Stmt, ...] = ()

    def __str__(self) -> str:
        guard = f" [{self.guard}]" if self.guard is not None else ""
        body = f" / {{ {'; '.join(map(str, self.body))} }}" if self.body else ""
        return f"{self.source} -> {self.target} on {self.trigger}{guard}{body}"


class StateMachine:
    """A complete monitor definition in the intermediate language."""

    def __init__(
        self,
        name: str,
        states: Sequence[str],
        initial: str,
        variables: Sequence[Variable] = (),
        transitions: Sequence[Transition] = (),
        priority: int = 0,
    ):
        if not name.isidentifier():
            raise StateMachineError(f"invalid machine name {name!r}")
        if len(set(states)) != len(states):
            raise StateMachineError(f"machine {name!r}: duplicate states")
        if initial not in states:
            raise StateMachineError(f"machine {name!r}: initial state {initial!r} not declared")
        self.name = name
        self.states: List[str] = list(states)
        self.initial = initial
        self.variables: List[Variable] = list(variables)
        self.transitions: List[Transition] = list(transitions)
        #: Degradation priority inherited from the source property
        #: (0 = shed first when energy runs low).
        self.priority = int(priority)
        self._validate()
        # Index transitions by source state, preserving declaration order
        # (dispatch picks the first matching transition).
        self._by_source: Dict[str, List[Transition]] = {s: [] for s in self.states}
        for t in self.transitions:
            self._by_source[t.source].append(t)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        var_names = {v.name for v in self.variables}
        if len(var_names) != len(self.variables):
            raise StateMachineError(f"machine {self.name!r}: duplicate variable names")
        state_set = set(self.states)
        for t in self.transitions:
            if t.source not in state_set:
                raise StateMachineError(
                    f"machine {self.name!r}: transition from unknown state {t.source!r}"
                )
            if t.target not in state_set:
                raise StateMachineError(
                    f"machine {self.name!r}: transition to unknown state {t.target!r}"
                )
            for expr in self._exprs_of(t):
                for ref in _var_refs(expr):
                    if ref not in var_names:
                        raise StateMachineError(
                            f"machine {self.name!r}: undefined variable {ref!r} "
                            f"in transition {t}"
                        )
            for stmt in _flatten(t.body):
                if isinstance(stmt, Assign) and stmt.var not in var_names:
                    raise StateMachineError(
                        f"machine {self.name!r}: assignment to undefined "
                        f"variable {stmt.var!r}"
                    )

    @staticmethod
    def _exprs_of(t: Transition) -> List[Expr]:
        exprs: List[Expr] = []
        if t.guard is not None:
            exprs.append(t.guard)
        for stmt in _flatten(t.body):
            if isinstance(stmt, Assign):
                exprs.append(stmt.expr)
            elif isinstance(stmt, If):
                exprs.append(stmt.cond)
        return exprs

    # ------------------------------------------------------------------
    def transitions_from(self, state: str) -> List[Transition]:
        try:
            return self._by_source[state]
        except KeyError:
            raise StateMachineError(f"unknown state {state!r}") from None

    def variable(self, name: str) -> Variable:
        for v in self.variables:
            if v.name == name:
                return v
        raise StateMachineError(f"machine {self.name!r}: no variable {name!r}")

    def referenced_tasks(self) -> List[str]:
        """Task names this machine's triggers mention (for wiring checks)."""
        tasks = []
        for t in self.transitions:
            if t.trigger.task is not None and t.trigger.task not in tasks:
                tasks.append(t.trigger.task)
        return tasks

    def __repr__(self) -> str:
        return (
            f"StateMachine({self.name!r}, states={self.states}, "
            f"{len(self.transitions)} transitions)"
        )


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def _flatten(stmts: Sequence[Stmt]) -> List[Stmt]:
    """All statements in a body, including those nested under ``If``."""
    out: List[Stmt] = []
    for stmt in stmts:
        out.append(stmt)
        if isinstance(stmt, If):
            out.extend(_flatten(stmt.then))
            out.extend(_flatten(stmt.orelse))
    return out


def _var_refs(expr: Expr) -> List[str]:
    """Names of machine variables referenced by an expression."""
    if isinstance(expr, Var):
        return [expr.name]
    if isinstance(expr, BinOp):
        return _var_refs(expr.left) + _var_refs(expr.right)
    if isinstance(expr, Not):
        return _var_refs(expr.operand)
    return []


def walk_statements(machine: StateMachine) -> List[Stmt]:
    """Every statement in the machine (nested included), for analyses."""
    out: List[Stmt] = []
    for t in machine.transitions:
        out.extend(_flatten(t.body))
    return out


def failure_actions(machine: StateMachine) -> List[Fail]:
    """All ``fail`` statements a machine can emit."""
    return [s for s in walk_statements(machine) if isinstance(s, Fail)]


def _subexprs(expr: Expr) -> List[Expr]:
    """The expression and all of its descendants."""
    out = [expr]
    if isinstance(expr, BinOp):
        out.extend(_subexprs(expr.left))
        out.extend(_subexprs(expr.right))
    elif isinstance(expr, Not):
        out.extend(_subexprs(expr.operand))
    return out


def machine_exprs(machine: StateMachine) -> List[Expr]:
    """Every top-level expression in the machine (guards, assignment
    right-hand sides, ``if`` conditions)."""
    out: List[Expr] = []
    for t in machine.transitions:
        out.extend(StateMachine._exprs_of(t))
    return out


def extern_refs(machine: StateMachine) -> List[ExternRef]:
    """All cross-machine reads a machine performs, in occurrence order."""
    refs: List[ExternRef] = []
    for expr in machine_exprs(machine):
        refs.extend(e for e in _subexprs(expr) if isinstance(e, ExternRef))
    return refs
