"""Bounded exhaustive exploration of monitor machines.

The paper's §7 envisages translating property specifications "to
time-aware models that allow model checking". This module provides a
bounded model-checking primitive over the intermediate language: it
enumerates *every* event sequence over a finite alphabet up to a given
depth, tracking the machine's full configuration (state + variables),
and reports which states are reached, which failure actions can fire,
and the shortest witness sequence for each.

Timestamps are handled by fixing a finite set of inter-event gaps
(``deltas``): an alphabet letter is (kind, task, delta[, data]). That
makes the exploration exact for the machines the generator emits, whose
guards compare only *differences* of timestamps against constants —
choosing deltas below and above each constant covers every branch.

Configurations are deduplicated modulo absolute time (variables holding
timestamps are normalised to their offset from the current time), so
the search space stays small for realistic monitors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.events import MonitorEvent
from repro.errors import StateMachineError
from repro.statemachine.interpreter import MachineInstance
from repro.statemachine.model import StateMachine, failure_actions


@dataclass(frozen=True)
class Letter:
    """One alphabet symbol: an event template plus the time gap since
    the previous event."""

    kind: str  # startTask | endTask
    task: str
    delta: float
    data: Tuple[Tuple[str, float], ...] = ()
    path: int = 0

    def event(self, t: float) -> MonitorEvent:
        return MonitorEvent(self.kind, self.task, t + self.delta,
                            dict(self.data), path=self.path)


def alphabet_for(machine: StateMachine, deltas: Sequence[float],
                 data_values: Mapping[str, Sequence[float]] = (),
                 paths: Sequence[int] = (0,)) -> List[Letter]:
    """Build a covering alphabet from the machine's referenced tasks."""
    tasks = machine.referenced_tasks() or ["t"]
    letters = []
    data_values = dict(data_values)
    for task in tasks:
        for kind in ("startTask", "endTask"):
            for delta in deltas:
                for path in paths:
                    if data_values:
                        for key, values in data_values.items():
                            for value in values:
                                letters.append(Letter(kind, task, delta,
                                                      ((key, value),), path))
                    else:
                        letters.append(Letter(kind, task, delta, (), path))
    return letters


@dataclass
class Exploration:
    """Result of a bounded exploration."""

    machine: str
    depth: int
    configurations: int
    reachable_states: FrozenSet[str]
    #: action name -> shortest event sequence producing it.
    witnesses: Dict[str, Tuple[Letter, ...]] = field(default_factory=dict)
    #: Every action name the machine's ``fail`` statements can emit —
    #: the vocabulary queries are checked against.
    actions: FrozenSet[str] = frozenset()

    def _check_known(self, action: str) -> None:
        if self.actions and action not in self.actions:
            raise StateMachineError(
                f"machine {self.machine!r} has no failure action "
                f"{action!r}; it can emit {sorted(self.actions)}")

    def shortest_witness(self, action: str) -> Optional[Tuple[Letter, ...]]:
        self._check_known(action)
        return self.witnesses.get(action)

    def can_fail_with(self, action: str) -> bool:
        """Whether any explored sequence fires ``action``.

        Raises :class:`~repro.errors.StateMachineError` for an action
        name the machine cannot emit at all — a ``False`` there would
        silently conflate "unreachable within the bound" with "no such
        action" (typically a typo in the query).
        """
        self._check_known(action)
        return action in self.witnesses


def _normalise(machine: StateMachine, store: Dict[str, Any],
               now: float) -> Tuple:
    """Configuration key with time-typed variables made relative."""
    items = [("state", store["state"])]
    for variable in machine.variables:
        value = store[f"var.{variable.name}"]
        if variable.type == "time" and isinstance(value, (int, float)) and value:
            value = round(now - value, 9)
        items.append((variable.name, value))
    return tuple(items)


def explore(machine: StateMachine, alphabet: Sequence[Letter],
            depth: int, max_configurations: int = 200_000) -> Exploration:
    """Breadth-first exploration of all sequences up to ``depth``."""
    if depth < 0:
        raise StateMachineError("depth must be non-negative")
    initial = MachineInstance(machine)
    seen = {_normalise(machine, initial.snapshot(), 0.0)}
    reachable = {machine.initial}
    witnesses: Dict[str, Tuple[Letter, ...]] = {}
    # Queue entries: (store snapshot, now, sequence so far)
    queue = deque([(initial.snapshot(), 0.0, ())])
    configurations = 1
    while queue:
        store, now, sequence = queue.popleft()
        if len(sequence) >= depth:
            continue
        for letter in alphabet:
            instance = MachineInstance(machine, dict(store))
            event = letter.event(now)
            try:
                verdicts = instance.on_event(event)
            except StateMachineError:
                continue  # e.g. missing data key for this letter
            new_sequence = sequence + (letter,)
            for verdict in verdicts:
                if verdict.action not in witnesses:
                    witnesses[verdict.action] = new_sequence
            reachable.add(instance.state)
            key = _normalise(machine, instance.snapshot(), event.timestamp)
            if key not in seen:
                seen.add(key)
                configurations += 1
                if configurations > max_configurations:
                    raise StateMachineError(
                        f"exploration of {machine.name!r} exceeded "
                        f"{max_configurations} configurations")
                queue.append((instance.snapshot(), event.timestamp,
                              new_sequence))
            elif verdicts:
                # Known configuration but it produced a (possibly new)
                # verdict on this edge; witnesses were recorded above.
                pass
    return Exploration(
        machine=machine.name,
        depth=depth,
        configurations=configurations,
        reachable_states=frozenset(reachable),
        witnesses=witnesses,
        actions=frozenset(f.action for f in failure_actions(machine)),
    )
