"""Exception hierarchy shared across the ARTEMIS reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
:class:`PowerFailure` is deliberately *not* a :class:`ReproError`: it is a
control-flow signal raised by the simulated device when the capacitor is
exhausted, and runtimes are expected to let it propagate to the device
loop rather than swallow it accidentally with a broad ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SpecError(ReproError):
    """Base class for property-specification language errors."""


class SpecSyntaxError(SpecError):
    """Raised when the property specification cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token
    (plus the token ``width`` for caret underlining) so tooling can
    point at the exact span; ``hint`` optionally suggests a fix (the
    ``check`` CLI prints both).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 hint: str = "", width: int = 1):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column
        self.hint = hint
        self.width = max(1, width)


class SpecValidationError(SpecError):
    """Raised when a parsed specification is semantically invalid.

    ``line``/``column``/``width`` locate the offending construct when
    known (0 = unknown); ``hint`` optionally suggests a fix.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 hint: str = "", width: int = 1):
        super().__init__(message)
        self.line = line
        self.column = column
        self.hint = hint
        self.width = max(1, width)


class GenerationError(ReproError):
    """Raised when monitor generation from a specification fails."""


class StateMachineError(ReproError):
    """Raised for malformed state machines or interpreter misuse."""


class NVMError(ReproError):
    """Raised on non-volatile memory misuse (duplicate cells, overflow)."""


class EnergyError(ReproError):
    """Raised on invalid energy-model configuration."""


class RuntimeConfigError(ReproError):
    """Raised when a runtime is built from an inconsistent application."""


class PeripheralError(ReproError):
    """Raised when a (simulated) peripheral fails to deliver a reading.

    Transient sensor faults — bus timeouts, dropped conversions — are a
    fact of life on harvested nodes and are *recoverable*: the runtime's
    retry policy re-executes the task, and only a livelock watchdog
    escalates further. Task bodies normally let this propagate to the
    runtime rather than handling it themselves.

    Attributes:
        sensor: name of the failing sensor.
        fault: short fault-kind tag (``"timeout"``, ``"dropout"``, ...).
        at_time: simulation time (seconds) of the failed access.
    """

    def __init__(self, sensor: str, fault: str = "fault", at_time: float = 0.0):
        super().__init__(
            f"peripheral {sensor!r} failed ({fault}) at t={at_time:.6f}s"
        )
        self.sensor = sensor
        self.fault = fault
        self.at_time = at_time


class SimulationError(ReproError):
    """Raised when a simulation cannot make progress (e.g. a task whose
    energy cost exceeds the usable capacitor energy can never complete)."""


class FleetError(ReproError):
    """Raised by the fleet OTA subsystem: malformed or corrupted monitor
    bundles, wire-format violations, delta/base mismatches, and update
    transfers aborted by the link-livelock guard."""


class PowerFailure(BaseException):
    """Signal raised by the device when stored energy hits the cutoff.

    Derives from :class:`BaseException` so that application task bodies
    using ``except Exception`` do not accidentally absorb a brownout: on
    real hardware, no instruction can intercept the power going away.

    Attributes:
        at_time: simulation time (seconds) at which the device died.
    """

    def __init__(self, at_time: float):
        super().__init__(f"power failure at t={at_time:.6f}s")
        self.at_time = at_time
