"""Semantic model of the property specification language.

Each class corresponds to one property construct of Table 1. The spec
parser (:mod:`repro.spec`) produces these from source text; the
generator (:mod:`repro.core.generator`) turns each into one
intermediate-language state machine. They can also be constructed
directly — a programmatic alternative to the DSL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.actions import ActionType
from repro.errors import SpecValidationError


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SpecValidationError(message)


@dataclass(frozen=True)
class PropertyBase:
    """Common shape: every property guards one task and names a fail
    action; path-scoped properties may pin an explicit path."""

    task: str
    on_fail: ActionType
    path: Optional[int] = None
    #: Relative importance for energy-adaptive degradation: when stored
    #: energy crosses the low watermark, the controller sheds monitors
    #: lowest-priority-first (0 = shed first). Parsed from the spec's
    #: ``priority:`` modifier.
    priority: int = 0

    #: Whether the runtime re-initialises this property's monitor when
    #: the path containing its task restarts (§3.3: "monitors linked to
    #: already initiated tasks within that path must be re-initialized").
    #: Progress trackers (collect) and escalation counters (MITD/period
    #: with maxAttempt) must survive restarts, or the escape hatch and
    #: cross-restart accumulation could never trigger.
    REINIT_ON_PATH_RESTART = True

    #: Whether the degradation controller may shed this property's
    #: monitor (and hence whether ``priority:`` is a legal modifier).
    #: Progress trackers that accumulate over a gapless event stream
    #: (collect, MITD) would silently report wrong results if they
    #: missed events while shed, so they are never sheddable.
    SUPPORTS_PRIORITY = True

    @property
    def kind(self) -> str:
        return type(self).KIND  # type: ignore[attr-defined]

    def machine_name(self) -> str:
        """Deterministic, identifier-safe name for the generated machine."""
        suffix = f"_p{self.path}" if self.path is not None else ""
        return f"{self.kind}_{self.task}{suffix}"


@dataclass(frozen=True)
class MaxTries(PropertyBase):
    """Maximum successive start attempts of a task (non-termination guard).

    Figure 5: ``micSense: { maxTries: 10 onFail: skipPath; }``.
    """

    KIND = "maxTries"
    limit: int = 0

    def __post_init__(self) -> None:
        _require(self.limit >= 1, f"maxTries on {self.task!r}: limit must be >= 1")


@dataclass(frozen=True)
class MaxDuration(PropertyBase):
    """Maximum wall-time of one task execution.

    Figure 5: ``maxDuration: 100ms onFail: skipTask;``.
    """

    KIND = "maxDuration"
    limit_s: float = 0.0

    def __post_init__(self) -> None:
        _require(self.limit_s > 0, f"maxDuration on {self.task!r}: limit must be > 0")


@dataclass(frozen=True)
class MITD(PropertyBase):
    """Maximum Inter-Task Delay: the guarded task must start within
    ``limit_s`` of the dependency task's completion.

    ``max_attempt``/``max_attempt_action`` implement the paper's
    non-termination escape hatch: after N consecutive violations the
    stronger action fires (Figure 5 line 6: restartPath x3, then
    skipPath).
    """

    KIND = "MITD"
    REINIT_ON_PATH_RESTART = False
    SUPPORTS_PRIORITY = False
    dep_task: str = ""
    limit_s: float = 0.0
    max_attempt: Optional[int] = None
    max_attempt_action: Optional[ActionType] = None

    def __post_init__(self) -> None:
        _require(bool(self.dep_task), f"MITD on {self.task!r}: dpTask is required")
        _require(self.limit_s > 0, f"MITD on {self.task!r}: delay must be > 0")
        if self.max_attempt is not None:
            _require(self.max_attempt >= 1, f"MITD on {self.task!r}: maxAttempt must be >= 1")
            _require(
                self.max_attempt_action is not None,
                f"MITD on {self.task!r}: maxAttempt needs its own onFail action",
            )


@dataclass(frozen=True)
class Collect(PropertyBase):
    """Required number of data items from a dependency task before the
    guarded task may start (Figure 5 line 13: ``collect: 10
    dpTask: bodyTemp onFail: restartPath``)."""

    KIND = "collect"
    REINIT_ON_PATH_RESTART = False
    SUPPORTS_PRIORITY = False
    dep_task: str = ""
    count: int = 0
    #: Figure 7's literal example zeroes the counter when the check
    #: fails; the benchmark's accumulate-across-path-restarts behaviour
    #: (§5.1 Path #1) needs it to persist, which is the default.
    reset_on_fail: bool = False

    def __post_init__(self) -> None:
        _require(bool(self.dep_task), f"collect on {self.task!r}: dpTask is required")
        _require(self.count >= 1, f"collect on {self.task!r}: count must be >= 1")


@dataclass(frozen=True)
class DpData(PropertyBase):
    """Range constraint on a task's dependent output data.

    Figure 5 line 14: ``dpData: avgTemp Range: [36, 38] onFail:
    completePath`` — an out-of-range average triggers the emergency
    path completion.
    """

    KIND = "dpData"
    var: str = ""
    low: float = 0.0
    high: float = 0.0

    def __post_init__(self) -> None:
        _require(bool(self.var), f"dpData on {self.task!r}: variable name is required")
        _require(
            self.low <= self.high,
            f"dpData on {self.task!r}: empty range [{self.low}, {self.high}]",
        )


@dataclass(frozen=True)
class Period(PropertyBase):
    """Desired execution period of a task, with jitter tolerance.

    Violated when the gap between consecutive starts exceeds
    ``period_s + jitter_s``. Supports the same ``maxAttempt`` escape as
    MITD (Table 1 pairs maxAttempt with the time-related properties).
    """

    KIND = "period"
    REINIT_ON_PATH_RESTART = False
    period_s: float = 0.0
    jitter_s: float = 0.0
    max_attempt: Optional[int] = None
    max_attempt_action: Optional[ActionType] = None

    def __post_init__(self) -> None:
        _require(self.period_s > 0, f"period on {self.task!r}: period must be > 0")
        _require(self.jitter_s >= 0, f"period on {self.task!r}: jitter must be >= 0")
        if self.max_attempt is not None:
            _require(self.max_attempt >= 1, f"period on {self.task!r}: maxAttempt must be >= 1")
            _require(
                self.max_attempt_action is not None,
                f"period on {self.task!r}: maxAttempt needs its own onFail action",
            )


@dataclass(frozen=True)
class EnergyAtLeast(PropertyBase):
    """Extension property from §4.2.2: before the task starts, the
    stored energy must be at least ``min_energy_j`` joules, otherwise
    the fail action (typically ``skipTask``) fires.

    The runtime publishes the capacitor level as dependent data named
    ``energy`` on every StartTask event when an energy probe is
    configured.
    """

    KIND = "energyAtLeast"
    min_energy_j: float = 0.0

    def __post_init__(self) -> None:
        _require(
            self.min_energy_j > 0,
            f"energyAtLeast on {self.task!r}: threshold must be > 0",
        )


@dataclass(frozen=True)
class Temporal(PropertyBase):
    """Past-time MTL property over task events and collected data.

    ``temporal: started(send) -> once[0, 5min] ended(sample)
    onFail: skipTask;`` — the formula (a :mod:`repro.tl.ast` tree) is
    checked whenever the ``at`` trigger fires on the guarded task
    (``start``/``end`` of the task, or ``always`` = every event), and
    the fail action fires when it does not hold.

    Unlike the six fixed kinds, many temporal properties compile
    *together*: structurally equal subformulas share sub-monitor
    machines (see :mod:`repro.tl.rewrite`). Sub-monitor state survives
    path restarts and sub-monitors are never shed; the root check is
    sheddable like any comparison property.
    """

    KIND = "temporal"
    REINIT_ON_PATH_RESTART = False
    #: The formula, a :data:`repro.tl.ast.Formula` tree (typed loosely
    #: to keep this module import-light; the tl package imports the
    #: spec package, which imports this module).
    formula: object = None
    #: When to check: at the guarded task's ``start``/``end``, or on
    #: ``always`` (every event the monitor sees).
    at: str = "start"
    #: Optional stable name for the generated machine (defaults to a
    #: content hash of the formula, so equal properties collide in
    #: :meth:`PropertySet.add` and distinct ones never do).
    label: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.formula is not None,
                 f"temporal on {self.task!r}: formula is required")
        _require(self.at in ("start", "end", "always"),
                 f"temporal on {self.task!r}: at must be start, end or "
                 f"always, got {self.at!r}")
        _require(self.label is None or self.label.isidentifier(),
                 f"temporal on {self.task!r}: label {self.label!r} is not "
                 f"an identifier")

    def machine_name(self) -> str:
        # Imported lazily: repro.tl pulls in the spec package, which
        # imports this module at load time.
        import hashlib

        from repro.tl.ast import formula_key

        suffix = f"_p{self.path}" if self.path is not None else ""
        if self.label is not None:
            tag = self.label
        else:
            action = getattr(self.on_fail, "value", str(self.on_fail))
            canonical = f"{formula_key(self.formula)}|at={self.at}|on={action}"
            tag = hashlib.md5(canonical.encode()).hexdigest()[:8]
        return f"temporal_{self.task}{suffix}_{tag}"


Property = Union[
    MaxTries, MaxDuration, MITD, Collect, DpData, Period, EnergyAtLeast,
    Temporal,
]


@dataclass
class PropertySet:
    """All properties of one application, with lookup helpers."""

    properties: List[Property] = field(default_factory=list)

    def add(self, prop: Property) -> None:
        if prop.machine_name() in {p.machine_name() for p in self.properties}:
            raise SpecValidationError(
                f"duplicate property {prop.kind!r} on task {prop.task!r}"
                + (f" path {prop.path}" if prop.path is not None else "")
            )
        self.properties.append(prop)

    def for_task(self, task: str) -> List[Property]:
        return [p for p in self.properties if p.task == task]

    def of_kind(self, kind: str) -> List[Property]:
        return [p for p in self.properties if p.kind == kind]

    def tasks(self) -> List[str]:
        seen: List[str] = []
        for p in self.properties:
            if p.task not in seen:
                seen.append(p.task)
        return seen

    def __len__(self) -> int:
        return len(self.properties)

    def __iter__(self):
        return iter(self.properties)
