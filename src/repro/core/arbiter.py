"""Action arbitration.

Multiple properties may fail on one event ("such as both maximum
duration and maximum start attempts for a task" — §3.3); every failing
monitor reports its action, and *the runtime determines the appropriate
course of action*. The default policy picks the most severe action
(severity order in :mod:`repro.core.actions`): a path-level response
subsumes a task-level one, and ``completePath`` — the emergency path
completion — beats everything. Ties keep the first-reported action so
arbitration is deterministic in monitor order.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.actions import NO_ACTION, Action

ArbitrationPolicy = Callable[[Sequence[Action]], Action]


def most_severe(actions: Sequence[Action]) -> Action:
    """Default policy: highest severity wins, first report breaks ties."""
    best = NO_ACTION
    for action in actions:
        if action.severity > best.severity:
            best = action
    return best


def first_reported(actions: Sequence[Action]) -> Action:
    """Ablation policy: take whatever the first failing monitor said.

    Used by the arbitration-order ablation benchmark to show why naive
    first-come arbitration misbehaves when a weak action (restartTask)
    shadows a strong one (skipPath).
    """
    for action in actions:
        if action.severity > 0:
            return action
    return NO_ACTION


def arbitrate(actions: Sequence[Action], policy: ArbitrationPolicy = most_severe) -> Action:
    """Resolve a list of reported actions into the one the runtime takes."""
    if not actions:
        return NO_ACTION
    return policy(actions)
