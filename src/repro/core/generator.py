"""Model-to-model transformation: properties → state machines.

Implements the paper's generation templates (Figure 7). Each property
kind maps to one template; the output machines feed the interpreter, the
Python code generator (executable monitors) and the C code generator
(fidelity artifact + Table 2 sizing).

Extension recipe (§4.2.2): a new property needs (1) a builder in
:mod:`repro.spec.validator`, (2) a template function here registered in
``_TEMPLATES``, and (3) — if it observes a new runtime quantity — a
runtime probe publishing it as event data (as ``energyAtLeast`` does
with the capacitor level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.properties import (
    Collect,
    DpData,
    EnergyAtLeast,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
    Property,
    PropertySet,
    Temporal,
)
from repro.errors import GenerationError
from repro.tl.compile import compile_temporal
from repro.statemachine.model import (
    ANY_EVENT,
    END_TASK,
    START_TASK,
    Assign,
    BinOp,
    Const,
    EventField,
    EventPattern,
    Fail,
    StateMachine,
    Transition,
    Var,
    Variable,
)

_TS = EventField("timestamp")


def _fail(prop: Property, action_override=None) -> Fail:
    action = action_override if action_override is not None else prop.on_fail
    return Fail(action.value, prop.path)


# ---------------------------------------------------------------------------
# Templates (one per Figure 7 machine, plus period and the extension)
# ---------------------------------------------------------------------------


def _gen_max_tries(prop: MaxTries) -> StateMachine:
    """First machine of Figure 7: count start attempts of the task; at
    the limit, signal the failure action and reset."""
    name = prop.machine_name()
    a = prop.task
    return StateMachine(
        name,
        states=["NotStarted", "Started"],
        initial="NotStarted",
        variables=[Variable("i", "int", 0)],
        transitions=[
            Transition(
                "NotStarted", "Started", EventPattern(START_TASK, a),
                body=(Assign("i", Const(1)),),
            ),
            Transition(
                "Started", "Started", EventPattern(START_TASK, a),
                guard=BinOp("<", Var("i"), Const(prop.limit)),
                body=(Assign("i", BinOp("+", Var("i"), Const(1))),),
            ),
            Transition(
                "Started", "NotStarted", EventPattern(START_TASK, a),
                guard=BinOp(">=", Var("i"), Const(prop.limit)),
                body=(_fail(prop), Assign("i", Const(0))),
            ),
            Transition(
                "Started", "NotStarted", EventPattern(END_TASK, a),
                body=(Assign("i", Const(0)),),
            ),
        ],
    )


def _gen_max_duration(prop: MaxDuration) -> StateMachine:
    """Second machine of Figure 7: the task must end within D of its
    *first* start. Re-starts after power failures hit the implicit
    self-transition and do not refresh ``start`` — the §4.1.3
    timestamp-consistency rule."""
    name = prop.machine_name()
    a = prop.task
    elapsed = BinOp("-", _TS, Var("start"))
    return StateMachine(
        name,
        states=["NotStarted", "Started"],
        initial="NotStarted",
        variables=[Variable("start", "time", 0.0)],
        transitions=[
            Transition(
                "NotStarted", "Started", EventPattern(START_TASK, a),
                body=(Assign("start", _TS),),
            ),
            Transition(
                "Started", "NotStarted", EventPattern(END_TASK, a),
                guard=BinOp("<=", elapsed, Const(prop.limit_s)),
            ),
            Transition(
                "Started", "NotStarted", EventPattern(ANY_EVENT),
                guard=BinOp(">", elapsed, Const(prop.limit_s)),
                body=(_fail(prop),),
            ),
        ],
    )


def _gen_collect(prop: Collect) -> StateMachine:
    """Third machine of Figure 7: count completions of the dependency
    task; at the guarded task's start, the count must equal the target.

    Figure 7's literal example zeroes the counter on failure; the
    benchmark's Path #1 behaviour (§5.1: "ARTEMIS restarts the first
    path until enough samples are collected") requires the count to
    accumulate across path restarts, so accumulation is the default and
    ``reset_on_fail=True`` reproduces the figure exactly.

    The collected count is *consumed* when the guarded task completes
    (``endTask a``), not when its start check passes. A passing start
    check is re-announced if a power failure interrupts the task before
    its commit — consuming on the pass would make the re-announced
    check fail against the already-zeroed counter and restart the path
    spuriously, an intermittent execution no continuous run exhibits
    (the conformance checker in :mod:`repro.verify` finds exactly this
    divergence when consumption is moved back to the start check).
    """
    name = prop.machine_name()
    a, b = prop.task, prop.dep_task
    fail_body = [_fail(prop)]
    if prop.reset_on_fail:
        fail_body.append(Assign("i", Const(0)))
    return StateMachine(
        name,
        states=["Counting"],
        initial="Counting",
        variables=[Variable("i", "int", 0)],
        transitions=[
            Transition(
                "Counting", "Counting", EventPattern(END_TASK, b),
                body=(Assign("i", BinOp("+", Var("i"), Const(1))),),
            ),
            Transition(
                "Counting", "Counting", EventPattern(START_TASK, a),
                guard=BinOp(">=", Var("i"), Const(prop.count)),
            ),
            Transition(
                "Counting", "Counting", EventPattern(START_TASK, a),
                guard=BinOp("<", Var("i"), Const(prop.count)),
                body=tuple(fail_body),
            ),
            Transition(
                "Counting", "Counting", EventPattern(END_TASK, a),
                body=(Assign("i", Const(0)),),
            ),
        ],
    )


def _gen_mitd(prop: MITD) -> StateMachine:
    """Fourth machine of Figure 7: the guarded task must start within D
    of the dependency task's completion; ``maxAttempt`` consecutive
    violations escalate to the stronger action (the non-termination
    escape evaluated in §5.2)."""
    name = prop.machine_name()
    a, b = prop.task, prop.dep_task
    late = BinOp(">", BinOp("-", _TS, Var("endB")), Const(prop.limit_s))
    on_time = BinOp("<=", BinOp("-", _TS, Var("endB")), Const(prop.limit_s))
    variables = [Variable("endB", "time", 0.0)]
    transitions = [
        Transition(
            "WaitEndB", "WaitStartA", EventPattern(END_TASK, b),
            body=(Assign("endB", _TS),),
        ),
        # The dependency may complete again before A starts (path
        # restarts re-run it); refresh the reference timestamp.
        Transition(
            "WaitStartA", "WaitStartA", EventPattern(END_TASK, b),
            body=(Assign("endB", _TS),),
        ),
    ]
    if prop.max_attempt is None:
        transitions.extend(
            [
                # A's completion satisfies the constraint for this cycle.
                Transition("WaitStartA", "WaitEndB", EventPattern(END_TASK, a)),
                # The machine stays in WaitStartA through on-time *starts*
                # so that a re-execution attempt after a power failure is
                # checked again — that re-check is precisely how the §5.2
                # charging-delay violations are detected.
                Transition(
                    "WaitStartA", "WaitStartA", EventPattern(START_TASK, a),
                    guard=on_time,
                ),
                Transition(
                    "WaitStartA", "WaitEndB", EventPattern(START_TASK, a),
                    guard=late,
                    body=(_fail(prop),),
                ),
            ]
        )
    else:
        variables.append(Variable("att", "int", 0))
        transitions.extend(
            [
                # Only *completing* A inside the window ends the violation
                # streak: an on-time start that later dies to a power
                # failure must keep counting, or the escape hatch would
                # never trigger (each restarted path begins with a fresh,
                # on-time start before the long outage hits).
                Transition(
                    "WaitStartA", "WaitEndB", EventPattern(END_TASK, a),
                    body=(Assign("att", Const(0)),),
                ),
                Transition(
                    "WaitStartA", "WaitStartA", EventPattern(START_TASK, a),
                    guard=on_time,
                ),
                Transition(
                    "WaitStartA", "WaitStartA", EventPattern(START_TASK, a),
                    guard=BinOp(
                        "and", late, BinOp("<", Var("att"), Const(prop.max_attempt - 1))
                    ),
                    body=(
                        Assign("att", BinOp("+", Var("att"), Const(1))),
                        _fail(prop),
                    ),
                ),
                Transition(
                    "WaitStartA", "WaitEndB", EventPattern(START_TASK, a),
                    guard=BinOp(
                        "and", late, BinOp(">=", Var("att"), Const(prop.max_attempt - 1))
                    ),
                    body=(
                        Assign("att", Const(0)),
                        _fail(prop, prop.max_attempt_action),
                    ),
                ),
            ]
        )
    return StateMachine(
        name,
        states=["WaitEndB", "WaitStartA"],
        initial="WaitEndB",
        variables=variables,
        transitions=transitions,
    )


def _gen_dp_data(prop: DpData) -> StateMachine:
    """Range check on dependent output data carried by EndTask events
    (Figure 5 line 14)."""
    name = prop.machine_name()
    value = EventField(f"data.{prop.var}")
    out_of_range = BinOp(
        "or",
        BinOp("<", value, Const(prop.low)),
        BinOp(">", value, Const(prop.high)),
    )
    return StateMachine(
        name,
        states=["Watching"],
        initial="Watching",
        transitions=[
            Transition(
                "Watching", "Watching", EventPattern(END_TASK, prop.task),
                guard=out_of_range,
                body=(_fail(prop),),
            ),
        ],
    )


def _gen_period(prop: Period) -> StateMachine:
    """Consecutive starts of the task must be no more than
    ``period + jitter`` apart."""
    name = prop.machine_name()
    a = prop.task
    bound = prop.period_s + prop.jitter_s
    gap = BinOp("-", _TS, Var("last"))
    late = BinOp(">", gap, Const(bound))
    on_time = BinOp("<=", gap, Const(bound))
    variables = [Variable("last", "time", 0.0)]
    transitions = [
        Transition(
            "First", "Running", EventPattern(START_TASK, a),
            body=(Assign("last", _TS),),
        ),
    ]
    if prop.max_attempt is None:
        transitions.extend(
            [
                Transition(
                    "Running", "Running", EventPattern(START_TASK, a),
                    guard=on_time,
                    body=(Assign("last", _TS),),
                ),
                Transition(
                    "Running", "Running", EventPattern(START_TASK, a),
                    guard=late,
                    body=(_fail(prop), Assign("last", _TS)),
                ),
            ]
        )
    else:
        variables.append(Variable("att", "int", 0))
        transitions.extend(
            [
                Transition(
                    "Running", "Running", EventPattern(START_TASK, a),
                    guard=on_time,
                    body=(Assign("att", Const(0)), Assign("last", _TS)),
                ),
                Transition(
                    "Running", "Running", EventPattern(START_TASK, a),
                    guard=BinOp(
                        "and", late, BinOp("<", Var("att"), Const(prop.max_attempt - 1))
                    ),
                    body=(
                        Assign("att", BinOp("+", Var("att"), Const(1))),
                        _fail(prop),
                        Assign("last", _TS),
                    ),
                ),
                Transition(
                    "Running", "Running", EventPattern(START_TASK, a),
                    guard=BinOp(
                        "and", late, BinOp(">=", Var("att"), Const(prop.max_attempt - 1))
                    ),
                    body=(
                        Assign("att", Const(0)),
                        _fail(prop, prop.max_attempt_action),
                        Assign("last", _TS),
                    ),
                ),
            ]
        )
    return StateMachine(
        name,
        states=["First", "Running"],
        initial="First",
        variables=variables,
        transitions=transitions,
    )


def _gen_energy(prop: EnergyAtLeast) -> StateMachine:
    """§4.2.2 extension: the runtime publishes the capacitor level as
    ``data.energy`` on StartTask events; below the threshold, fail."""
    name = prop.machine_name()
    return StateMachine(
        name,
        states=["Watching"],
        initial="Watching",
        transitions=[
            Transition(
                "Watching", "Watching", EventPattern(START_TASK, prop.task),
                guard=BinOp("<", EventField("data.energy"), Const(prop.min_energy_j)),
                body=(_fail(prop),),
            ),
        ],
    )


_TEMPLATES: Dict[type, Callable[[Property], StateMachine]] = {
    MaxTries: _gen_max_tries,
    MaxDuration: _gen_max_duration,
    Collect: _gen_collect,
    MITD: _gen_mitd,
    DpData: _gen_dp_data,
    Period: _gen_period,
    EnergyAtLeast: _gen_energy,
}


def _scope_to_path(machine: StateMachine, prop: Property) -> StateMachine:
    """Confine a path-scoped property (``Path: N``) to its path.

    Merge-point tasks like ``send`` appear on several paths; a property
    declared with an explicit path must ignore the task's events on any
    other path. Every transition triggered by the guarded task gets an
    ``event.path == N`` conjunct; other-path events then fall to the
    implicit self-transition. Transitions on the *dependency* task are
    left alone — counting is path-agnostic.
    """
    if prop.path is None:
        return machine
    path_check = BinOp("==", EventField("path"), Const(prop.path))
    transitions = []
    for t in machine.transitions:
        if t.trigger.task == prop.task:
            guard = path_check if t.guard is None else BinOp("and", path_check, t.guard)
            t = Transition(t.source, t.target, t.trigger, guard, t.body)
        transitions.append(t)
    return StateMachine(
        machine.name, machine.states, machine.initial, machine.variables, transitions,
        priority=machine.priority,
    )


def generate_machine(prop: Property) -> StateMachine:
    """Transform one property into its state machine."""
    if isinstance(prop, Temporal):
        raise GenerationError(
            "temporal properties compile in batches (sub-monitors are "
            "shared across properties) — use build_monitor_plan or "
            "generate_machines"
        )
    template = _TEMPLATES.get(type(prop))
    if template is None:
        raise GenerationError(f"no template for property type {type(prop).__name__}")
    machine = _scope_to_path(template(prop), prop)
    # The degradation priority is a property attribute, not part of any
    # template's logic, so it is stamped on generically here.
    machine.priority = int(prop.priority)
    return machine


@dataclass
class MonitorPlan:
    """Machines for a whole property set, plus the wiring metadata the
    monitor, the energy analysis, and the ``compile`` CLI need.

    ``machines`` is in execution order: shared temporal sub-monitors
    first (dependency order — a machine precedes everything that reads
    it through ``extern``), then one machine per property in
    declaration order. ``prop_for_machine`` covers exactly the property
    machines; sub-monitors appear only in ``sub_owners``, which maps
    each to the property machines it serves.
    """

    machines: List[StateMachine] = field(default_factory=list)
    prop_for_machine: Dict[str, Property] = field(default_factory=dict)
    sub_owners: Dict[str, List[str]] = field(default_factory=dict)
    #: Machines a per-property (no sharing) compilation would emit.
    naive_monitors: int = 0

    @property
    def shared_monitors(self) -> int:
        return len(self.machines)

    def prop_for(self, machine_name: str) -> Optional[Property]:
        return self.prop_for_machine.get(machine_name)


def build_monitor_plan(
    props: Iterable[Property], share_subformulas: bool = True
) -> MonitorPlan:
    """Generate all machines for a property set.

    Temporal properties are compiled together so structurally equal
    subformulas share one sub-monitor (disable with
    ``share_subformulas=False`` to measure the sharing win); the six
    fixed kinds keep their one-property-one-machine templates.
    """
    prop_list = list(props)
    temporals = [p for p in prop_list if isinstance(p, Temporal)]
    plan = MonitorPlan()
    roots: Dict[str, StateMachine] = {}
    if temporals:
        comp = compile_temporal(temporals, share=share_subformulas)
        plan.machines.extend(comp.sub_machines)
        plan.sub_owners = comp.sub_owners
        plan.naive_monitors += comp.dag.naive_stateful
        roots = {m.name: m for m in comp.root_machines}
    for prop in prop_list:
        machine = roots[prop.machine_name()] if isinstance(prop, Temporal) \
            else generate_machine(prop)
        plan.machines.append(machine)
        plan.prop_for_machine[machine.name] = prop
        plan.naive_monitors += 1
    return plan


def generate_machines(props: Iterable[Property]) -> List[StateMachine]:
    """Transform a property set (one machine per property, §3.3 — plus
    shared sub-monitors when temporal properties are present)."""
    return build_monitor_plan(props).machines
