"""Application-specific monitors (the paper's generated component).

An :class:`ArtemisMonitor` bundles one machine instance per property —
compiled from generated Python source by default, or interpreted for
differential testing — behind the ``callMonitor`` interface of
Figure 10. All machine state lives in NVM; event processing runs under
an :class:`~repro.immortal.ImmortalRoutine` so a power failure mid-call
is finished by ``monitorFinalize`` after reboot (§4.2.3).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.actions import Action, ActionType
from repro.core.events import MonitorEvent
from repro.core.generator import build_monitor_plan
from repro.core.properties import Property, PropertySet
from repro.errors import ReproError
from repro.immortal.continuations import ImmortalRoutine, PersistentList
from repro.nvm.memory import NonVolatileMemory
from repro.nvm.store import NVMStore
from repro.statemachine.codegen_python import compile_machine
from repro.statemachine.interpreter import MachineInstance

#: A spend callback charges the device `seconds` of monitor CPU time and
#: may raise PowerFailure. Passing `lambda s: None` runs cost-free.
SpendFn = Callable[[float], None]


def _no_spend(seconds: float) -> None:
    return None


#: Active machine-op recorders (see :func:`tap_machine_ops`). Normally
#: empty, so the per-call overhead is one falsy check.
_MACHINE_TAPS: List[list] = []


@contextmanager
def tap_machine_ops():
    """Record every machine-level operation monitors perform.

    Yields a list that accumulates ``("event", machine_name, event)``
    entries for each completed ``on_event`` delivery and
    ``("reset", machine_name, None)`` entries for each machine reset.
    The batched fleet core (:mod:`repro.sim.batch`) replays this stream
    through its vectorized FSM kernel across a cohort's device axis;
    because only *completed* deliveries are recorded, a power failure
    mid-``on_event`` can make the replay diverge from the partially
    advanced scalar store — the kernel's self-check catches exactly
    that and falls back to the authoritative scalar state.
    """
    record: list = []
    _MACHINE_TAPS.append(record)
    try:
        yield record
    finally:
        _MACHINE_TAPS.remove(record)


def _tap_op(op: str, machine_name: str, event=None) -> None:
    for record in _MACHINE_TAPS:
        record.append((op, machine_name, event))


def subscription_tables(machines) -> tuple:
    """``(wildcard_set, dispatch)`` for a machine list — the per-task
    subscription tables of the dispatch fast path.

    ``wildcard_set`` holds indices of machines with any task-less
    trigger (they inspect every event); ``dispatch`` maps each task name
    to the frozen set of machine indices inspecting its events. This is
    the exact construction :class:`ArtemisMonitor` dispatches (and
    charges per-machine cost) from, factored out so the static analyzer
    in :mod:`repro.analysis.energy` bounds the same cost model the
    simulator executes.
    """
    relevant: Dict[str, List[int]] = {}
    for idx, machine in enumerate(machines):
        if any(t.trigger.task is None for t in machine.transitions):
            relevant.setdefault("*", []).append(idx)
            continue
        for task in machine.referenced_tasks():
            relevant.setdefault(task, []).append(idx)
    wildcard_set = frozenset(relevant.get("*", ()))
    dispatch = {
        task: wildcard_set.union(indices)
        for task, indices in relevant.items()
        if task != "*"
    }
    return wildcard_set, dispatch


class ArtemisMonitor:
    """Monitors for one application's property set.

    Args:
        props: validated property set.
        nvm: non-volatile memory shared with the runtime.
        backend: ``"generated"`` (compile generated Python source — the
            default, mirroring the paper's pipeline) or ``"interpreted"``
            (reference interpreter).
        name: NVM namespace for this monitor's state.
    """

    def __init__(
        self,
        props: PropertySet,
        nvm: NonVolatileMemory,
        backend: str = "generated",
        name: str = "monitor",
    ):
        if backend not in ("generated", "interpreted"):
            raise ReproError(f"unknown monitor backend {backend!r}")
        self.props = props
        self.name = name
        self._nvm = nvm
        self.plan = build_monitor_plan(props)
        self.machines = self.plan.machines
        self._props_by_machine: Dict[str, Property] = self.plan.prop_for_machine
        self.instances = []
        # Temporal property machines read their shared sub-monitors'
        # variables through extern(...) expressions; resolve them against
        # this monitor's own instance registry. Machines are stepped in
        # plan order (sub-monitors before readers), so a read always sees
        # the peer's state as of the current event.
        instances_by_name: Dict[str, object] = {}

        def extern(machine_name: str, var_name: str):
            return instances_by_name[machine_name].get(var_name)

        for machine in self.machines:
            # Machine state is advanced in place; crash-safety comes
            # from the monitor's own exactly-once protocol (last_seq
            # dedup + ImmortalRoutine), not from write privatization —
            # declare the store's cells WAR-exempt progress cells.
            store = NVMStore(nvm, f"{name}.{machine.name}", progress=True)
            if backend == "generated":
                instance = compile_machine(machine)(store, extern)
            else:
                instance = MachineInstance(machine, store, extern)
            instances_by_name[machine.name] = instance
            self.instances.append(instance)
        self._routine = ImmortalRoutine(nvm, f"{name}.call")
        # Machines currently shed by the degradation controller. Persisted
        # so a reboot in a low-energy spell does not silently re-enable
        # monitors the controller decided the budget cannot afford.
        self._shed_cell = nvm.alloc(f"{name}.shed", initial=(), size_bytes=32,
                                    progress=True)
        self._pending_event = nvm.alloc(f"{name}.pending_event", initial=None,
                                        size_bytes=32, progress=True)
        self._verdicts = PersistentList(nvm, f"{name}.verdicts")
        # Last completed call: its sequence stamp and the actions it
        # produced, kept so a MonitorGroup can aggregate across members
        # after an interruption without losing earlier members' verdicts.
        self._last_seq = nvm.alloc(f"{name}.last_seq", initial=-1, size_bytes=4,
                                   progress=True)
        self._last_actions = nvm.alloc(f"{name}.last_actions", initial=(),
                                       size_bytes=32, progress=True)
        # Frozen per-task subscription tables (shared with the static
        # analyzer — see :func:`subscription_tables`): a machine with
        # any wildcard trigger inspects every event; one outside the
        # dispatch set for a task can never match any of its transitions
        # on that task's events, so its step may skip ``on_event``
        # entirely — same verdicts, same charged energy.
        self._wildcard_set, self._dispatch = subscription_tables(self.machines)
        self._machine_names = frozenset(m.name for m in self.machines)

    # ------------------------------------------------------------------
    # Interface used by the runtime (Figure 8/10)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """``resetMonitor``: hard-reset every machine (first boot only)."""
        for machine, instance in zip(self.machines, self.instances):
            instance.reset()
            if _MACHINE_TAPS:
                _tap_op("reset", machine.name)
        self._shed_cell.set(())
        self._pending_event.set(None)
        self._verdicts.clear()
        self._last_seq.set(-1)
        self._last_actions.set(())

    def call(
        self,
        event: MonitorEvent,
        spend: SpendFn = _no_spend,
        per_machine_cost_s: float = 0.0,
        base_cost_s: float = 0.0,
        seq: int = -1,
    ) -> List[Action]:
        """``callMonitor``: feed one event to every machine.

        ``spend`` is charged ``base_cost_s`` once plus
        ``per_machine_cost_s`` per machine that actually inspects this
        event; a :class:`~repro.errors.PowerFailure` raised inside it
        leaves a resumable continuation behind (:meth:`finalize`).
        ``seq`` is an optional caller-supplied stamp recorded with the
        completed call (used by :class:`MonitorGroup`).
        """
        self._pending_event.set(event.to_dict())
        self._verdicts.clear()
        steps = self._steps(event, spend, per_machine_cost_s, base_cost_s)
        self._routine.run(steps)
        return self._collect_actions(seq)

    def finalize(
        self,
        spend: SpendFn = _no_spend,
        per_machine_cost_s: float = 0.0,
        base_cost_s: float = 0.0,
        seq: int = -1,
    ) -> Optional[List[Action]]:
        """``monitorFinalize``: complete an interrupted ``call``.

        Returns the actions of the completed call, or ``None`` if no
        call was in progress.
        """
        if not self._routine.in_progress:
            return None
        payload = self._pending_event.get()
        if payload is None:
            raise ReproError("interrupted monitor call has no pending event")
        event = MonitorEvent.from_dict(payload)
        self._routine.resume(self._steps(event, spend, per_machine_cost_s, base_cost_s))
        return self._collect_actions(seq)

    @property
    def last_seq(self) -> int:
        """Sequence stamp of the last completed call (-1 if none)."""
        return self._last_seq.get()

    def last_actions(self) -> List[Action]:
        """Actions produced by the last completed call (replayable)."""
        return [
            Action(ActionType.from_name(action), path, source=machine)
            for machine, action, path in self._last_actions.get()
        ]

    # ------------------------------------------------------------------
    def _steps(
        self,
        event: MonitorEvent,
        spend: SpendFn,
        per_machine_cost_s: float,
        base_cost_s: float,
    ):
        relevant = self._dispatch.get(event.task, self._wildcard_set)
        shed = self._shed_names()
        verdicts = self._verdicts

        # One shared step for every machine that will not inspect this
        # event. Shed machines keep their slot in the list (the
        # resumable continuation requires a constant step count) but
        # neither inspect the event nor cost per-machine time — that
        # zero is exactly the energy the degradation controller saves.
        # Machines not subscribed to the event's task are charged the
        # same zero and, since none of their transitions can match,
        # skipping their ``on_event`` is observation-equivalent.
        def idle_step() -> None:
            spend(0.0)

        def make_step(instance, machine_name):
            def step() -> None:
                spend(per_machine_cost_s)
                for verdict in instance.on_event(event):
                    verdicts.append((verdict.machine, verdict.action, verdict.path))
                if _MACHINE_TAPS:
                    _tap_op("event", machine_name, event)

            return step

        def base_step() -> None:
            spend(base_cost_s)

        steps = [base_step]
        if shed:
            for idx, machine in enumerate(self.machines):
                if machine.name in shed or idx not in relevant:
                    steps.append(idle_step)
                else:
                    steps.append(make_step(self.instances[idx], machine.name))
        else:
            for idx in range(len(self.instances)):
                if idx in relevant:
                    steps.append(make_step(self.instances[idx],
                                           self.machines[idx].name))
                else:
                    steps.append(idle_step)
        return steps

    def _collect_actions(self, seq: int = -1) -> List[Action]:
        raw = tuple(self._verdicts.items())
        actions = [
            Action(ActionType.from_name(action), path, source=machine)
            for machine, action, path in raw
        ]
        self._last_actions.set(raw)
        self._last_seq.set(seq)
        self._verdicts.clear()
        self._pending_event.set(None)
        return actions

    # ------------------------------------------------------------------
    # Runtime integration helpers
    # ------------------------------------------------------------------
    @property
    def in_progress(self) -> bool:
        """True if a power failure interrupted the last ``call``."""
        return self._routine.in_progress

    def properties_for_task(self, task: str) -> int:
        """How many properties inspect this task's events (cost model)."""
        return len(self._dispatch.get(task, self._wildcard_set))

    def reinit_for_path_restart(self, path_task_names: Sequence[str]) -> int:
        """Re-initialise monitors tied to tasks of a restarting path
        (§3.3), excluding progress/escalation trackers — see
        ``Property.REINIT_ON_PATH_RESTART``. Returns how many were reset.
        """
        task_set = set(path_task_names)
        count = 0
        for machine, instance in zip(self.machines, self.instances):
            # Shared temporal sub-monitors have no property of their own
            # and are never re-initialised: their history (e.g. "once
            # ended(sample)") spans path restarts by design.
            prop = self._props_by_machine.get(machine.name)
            if prop is None:
                continue
            if prop.task in task_set and prop.REINIT_ON_PATH_RESTART:
                instance.reset()
                if _MACHINE_TAPS:
                    _tap_op("reset", machine.name)
                count += 1
        return count

    # ------------------------------------------------------------------
    # Energy-adaptive degradation (shed / restore)
    # ------------------------------------------------------------------
    def _shed_names(self) -> set:
        """Currently shed machine names, defensively filtered to known
        machines (a corrupted shed cell degrades to 'nothing shed')."""
        value = self._shed_cell.get()
        if not value or not isinstance(value, (tuple, list)):
            return set()
        return {n for n in value if n in self._machine_names}

    def sheddable(self, machine_name: str) -> bool:
        """Whether the degradation controller may shed this machine.

        Progress trackers over gapless event streams (collect, MITD)
        would silently report wrong results after missing events, so
        their properties opt out via ``SUPPORTS_PRIORITY``.
        """
        prop = self._props_by_machine.get(machine_name)
        return prop is not None and type(prop).SUPPORTS_PRIORITY

    def machine_priority(self, machine_name: str) -> int:
        """Degradation priority of a machine (0 = shed first)."""
        for machine in self.machines:
            if machine.name == machine_name:
                return machine.priority
        raise ReproError(f"no machine named {machine_name!r}")

    def shedding_order(self) -> List[str]:
        """Sheddable machines, lowest priority first (ties: machine
        name) — the order the controller sheds them in. Name tie-breaks
        keep decisions deterministic across runs, declaration orders,
        and hash seeds."""
        order = sorted(
            (machine.priority, machine.name)
            for machine in self.machines
            if self.sheddable(machine.name)
        )
        return [name for _, name in order]

    def is_shed(self, machine_name: str) -> bool:
        """True while the named machine is shed."""
        return machine_name in self._shed_names()

    def shed_machines(self) -> List[str]:
        """Currently shed machines, in declaration order."""
        shed = self._shed_names()
        return [m.name for m in self.machines if m.name in shed]

    def shed(self, machine_name: str) -> bool:
        """Disable one machine; True if it was running and sheddable.

        Refused while a call continuation is in progress — the step list
        must not change shape under a resumable call.
        """
        if self._routine.in_progress:
            return False
        if not self.sheddable(machine_name) or self.is_shed(machine_name):
            return False
        shed = self._shed_names() | {machine_name}
        self._shed_cell.set(tuple(m.name for m in self.machines if m.name in shed))
        return True

    def restore(self, machine_name: str) -> bool:
        """Re-enable a shed machine; True if it was shed.

        The machine restarts from its initial state: it missed events
        while shed, so resuming its stale timestamps/counters could
        fire immediate false violations.
        """
        if self._routine.in_progress:
            return False
        shed = self._shed_names()
        if machine_name not in shed:
            return False
        shed.discard(machine_name)
        self._shed_cell.set(tuple(m.name for m in self.machines if m.name in shed))
        self.reset_machine(machine_name)
        return True

    # ------------------------------------------------------------------
    # Boot-time recovery hooks
    # ------------------------------------------------------------------
    def nvm_prefixes(self) -> List[str]:
        """NVM namespaces holding this monitor's persistent state.

        Covers machine stores and bookkeeping cells (``{name}.``), the
        resumable call continuation (``imm.{name}.call.``), and the
        verdict list (``plist.{name}.``); used by the
        :class:`~repro.core.recovery.RecoveryManager` to scope its
        checksum scan.
        """
        return [f"{self.name}.", f"imm.{self.name}.call.",
                f"plist.{self.name}."]

    def validate(self) -> List[str]:
        """Names of machines whose persisted state is not a legal state.

        A bit flip can turn a state name into garbage that still reads
        as a string; checksum verification catches *silent* corruption,
        while this catches values that were (re)written legitimately but
        are semantically impossible.
        """
        bad: List[str] = []
        for machine, instance in zip(self.machines, self.instances):
            try:
                ok = instance.state in machine.states
            except Exception:
                ok = False
            if not ok:
                bad.append(machine.name)
        return bad

    def reset_machine(self, machine_name: str) -> bool:
        """Reset one machine to its initial state; True if it exists."""
        for machine, instance in zip(self.machines, self.instances):
            if machine.name == machine_name:
                instance.reset()
                if _MACHINE_TAPS:
                    _tap_op("reset", machine.name)
                return True
        return False

    def repair_cell(self, cell_name: str) -> Optional[str]:
        """Component-level repair after a cell was reset to its initial.

        If the cell belonged to one machine's store, that machine alone
        is reset so its remaining cells are mutually consistent; other
        monitor cells (continuation, verdicts, pending event) need no
        further action once restored. Returns a description or ``None``.
        """
        for machine in self.machines:
            if cell_name.startswith(f"{self.name}.{machine.name}."):
                self.reset_machine(machine.name)
                return f"machine {machine.name} reset"
        return None


class MonitorGroup:
    """Several independent monitors fed as one (§3.1: the runtime feeds
    "one or more application-specific monitors").

    Each member keeps its own NVM namespace and its own resumable
    continuation, so monitors authored and deployed separately (e.g.
    per concern, or one generated from each frontend language) evolve
    independently — the modularity the paper's architecture promises.
    The group presents the same interface as a single
    :class:`ArtemisMonitor`, so the runtime does not care which it got.

    Power-failure protocol: each group call stamps a persisted sequence
    number and delivers the event to members in order. A brown-out can
    strike before, inside, or between member calls; on the next boot
    :meth:`finalize` uses each member's ``last_seq`` to decide whether
    to resume it (interrupted), re-deliver the pending event (not yet
    reached), or merely replay its stored verdicts (already done) — so
    every member processes every event exactly once and no verdict is
    lost.
    """

    def __init__(self, monitors: Sequence[ArtemisMonitor],
                 nvm: NonVolatileMemory, name: str = "monitor_group"):
        if not monitors:
            raise ReproError("MonitorGroup needs at least one monitor")
        names = [m.name for m in monitors]
        if len(set(names)) != len(names):
            raise ReproError("monitors in a group need unique names")
        self.monitors = list(monitors)
        self.name = name
        self._seq = nvm.alloc(f"{name}.seq", initial=0, size_bytes=4,
                              progress=True)
        self._pending = nvm.alloc(f"{name}.pending", initial=None,
                                  size_bytes=32, progress=True)

    def reset(self) -> None:
        """Hard-reset every member (``resetMonitor``)."""
        for monitor in self.monitors:
            monitor.reset()
        self._pending.set(None)

    def call(self, event: MonitorEvent, spend: SpendFn = _no_spend,
             per_machine_cost_s: float = 0.0,
             base_cost_s: float = 0.0) -> List[Action]:
        """Deliver one event to every member; aggregate their actions."""
        seq = self._seq.get() + 1
        self._seq.set(seq)
        self._pending.set(event.to_dict())
        for monitor in self.monitors:
            monitor.call(event, spend, per_machine_cost_s, base_cost_s,
                         seq=seq)
        return self._aggregate(seq)

    def finalize(self, spend: SpendFn = _no_spend,
                 per_machine_cost_s: float = 0.0,
                 base_cost_s: float = 0.0) -> Optional[List[Action]]:
        """Complete an interrupted group call, exactly once per member."""
        if not self.in_progress:
            return None
        seq = self._seq.get()
        payload = self._pending.get()
        if payload is None:
            raise ReproError("interrupted group call has no pending event")
        event = MonitorEvent.from_dict(payload)
        for monitor in self.monitors:
            if monitor.in_progress:
                monitor.finalize(spend, per_machine_cost_s, base_cost_s,
                                 seq=seq)
            elif monitor.last_seq != seq:
                monitor.call(event, spend, per_machine_cost_s, base_cost_s,
                             seq=seq)
            # else: this member already completed the call; replay below.
        return self._aggregate(seq)

    def _aggregate(self, seq: int) -> List[Action]:
        actions: List[Action] = []
        for monitor in self.monitors:
            if monitor.last_seq == seq:
                actions.extend(monitor.last_actions())
        self._pending.set(None)
        return actions

    @property
    def in_progress(self) -> bool:
        """True if a group call was interrupted before completing."""
        return self._pending.get() is not None

    def properties_for_task(self, task: str) -> int:
        """Total properties inspecting this task across members."""
        return sum(monitor.properties_for_task(task)
                   for monitor in self.monitors)

    def reinit_for_path_restart(self, path_task_names: Sequence[str]) -> int:
        """Propagate §3.3 re-initialisation to every member."""
        return sum(monitor.reinit_for_path_restart(path_task_names)
                   for monitor in self.monitors)

    # ------------------------------------------------------------------
    # Energy-adaptive degradation (delegated to members)
    # ------------------------------------------------------------------
    def sheddable(self, machine_name: str) -> bool:
        """True if any member may shed the named machine."""
        return any(monitor.sheddable(machine_name)
                   for monitor in self.monitors)

    def machine_priority(self, machine_name: str) -> int:
        """Priority of the named machine in the first member owning it."""
        for monitor in self.monitors:
            if machine_name in monitor._props_by_machine:
                return monitor.machine_priority(machine_name)
        raise ReproError(f"no machine named {machine_name!r}")

    def shedding_order(self) -> List[str]:
        """Sheddable machines across members, lowest priority first
        (ties: machine name, deterministic across member order)."""
        entries = []
        seen = set()
        for monitor in self.monitors:
            for name in monitor.shedding_order():
                if name in seen:
                    continue
                seen.add(name)
                entries.append((monitor.machine_priority(name), name))
        return [name for _, name in sorted(entries)]

    def is_shed(self, machine_name: str) -> bool:
        """True if the named machine is shed in any member."""
        return any(monitor.is_shed(machine_name)
                   for monitor in self.monitors)

    def shed_machines(self) -> List[str]:
        """Shed machines across members (deduplicated)."""
        names: List[str] = []
        for monitor in self.monitors:
            for name in monitor.shed_machines():
                if name not in names:
                    names.append(name)
        return names

    def shed(self, machine_name: str) -> bool:
        """Shed the named machine in every member owning it."""
        return any([monitor.shed(machine_name)
                    for monitor in self.monitors])

    def restore(self, machine_name: str) -> bool:
        """Restore the named machine in every member that shed it."""
        return any([monitor.restore(machine_name)
                    for monitor in self.monitors])

    # ------------------------------------------------------------------
    # Boot-time recovery hooks (delegated to members)
    # ------------------------------------------------------------------
    def nvm_prefixes(self) -> List[str]:
        """Group bookkeeping namespace plus every member's namespaces."""
        prefixes = [f"{self.name}."]
        for monitor in self.monitors:
            prefixes.extend(monitor.nvm_prefixes())
        return prefixes

    def validate(self) -> List[str]:
        """Illegal-state machines across all members."""
        bad: List[str] = []
        for monitor in self.monitors:
            bad.extend(monitor.validate())
        return bad

    def reset_machine(self, machine_name: str) -> bool:
        """Reset the named machine in every member that owns one.

        Members may monitor the same property (same machine name);
        resetting all of them keeps the group's members consistent.
        """
        return any([monitor.reset_machine(machine_name)
                    for monitor in self.monitors])

    def repair_cell(self, cell_name: str) -> Optional[str]:
        """Delegate cell repair to the member owning the cell."""
        for monitor in self.monitors:
            description = monitor.repair_cell(cell_name)
            if description is not None:
                return description
        return None
