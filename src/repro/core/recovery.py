"""Boot-time recovery: journal resolution, corruption repair, invariants.

Deployed intermittent systems reboot hundreds of times a day, and §4.1.3
and §7 of the paper claim the runtime+monitor combination survives every
one of them. That claim needs machinery, not faith: a crash can leave a
commit journal in flight, a cosmic ray can flip a bit in FRAM, and a
wild write can leave control state pointing at a path that does not
exist. :class:`RecoveryManager` runs first on every boot and resolves
all three hazards:

1. **Journal recovery** — an in-flight
   :class:`~repro.nvm.journal.CommitJournal` is rolled back (pending) or
   rolled forward (committed); a journal failing its checksum is
   detected as corruption and discarded rather than replayed.
2. **Checksum verification** — guarded NVM regions (runtime control
   state, monitor state, channels) are verified against their per-cell
   checksums. A mismatching cell is reset to its allocation-time initial
   value, then its owning component gets a chance to re-initialise
   itself (e.g. reset the monitor machine that owned the cell).
3. **Invariant validation** — registered semantic invariants (path and
   task indices in range, runtime status a legal value, the §4.1.3
   timestamp-consistency rules, monitor machines in legal states) are
   checked and repaired.

Every intervention is observable: trace records
(``torn_commit``/``journal_replay``/``corruption_detected``/
``invariant_repair``/``monitor_reset``/``recovery``), counters on
:class:`~repro.sim.result.RunResult`, and — when an audit log is
attached — persistent ``recovery`` audit entries for post-mortem
read-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.nvm.journal import (
    CommitJournal,
    RECOVERED_CLEAN,
    RECOVERED_CORRUPT,
    RECOVERED_ROLLED_BACK,
    RECOVERED_ROLLED_FORWARD,
)
from repro.nvm.memory import NonVolatileMemory

#: A cell repairer receives the corrupted cell's name (already reset to
#: its initial value) and may re-initialise the owning component;
#: it returns a short description of what it did, or ``None``.
CellRepairFn = Callable[[str], Optional[str]]


@dataclass(frozen=True)
class Invariant:
    """A named semantic invariant with its repair action."""

    name: str
    check: Callable[[], bool]
    repair: Callable[[], None]


@dataclass
class RecoveryReport:
    """What one boot-time recovery pass found and fixed."""

    journal: str = RECOVERED_CLEAN
    corrupted_cells: List[str] = field(default_factory=list)
    repairs: List[str] = field(default_factory=list)
    invariant_repairs: List[str] = field(default_factory=list)
    monitor_resets: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True if this boot needed no intervention at all."""
        return (self.journal == RECOVERED_CLEAN
                and not self.corrupted_cells
                and not self.invariant_repairs
                and not self.monitor_resets)


class RecoveryManager:
    """Runs the three-stage recovery pass on every boot.

    Args:
        nvm: the non-volatile memory to scan.
        journal: the commit journal to resolve (optional — checkpoint
            runtimes have no redo journal).
        monitor: an object with ``validate() -> List[str]`` and
            ``reset_machine(name)`` (an
            :class:`~repro.core.monitor.ArtemisMonitor` or group);
            optional.
        audit: an :class:`~repro.core.audit.AuditLog` to receive
            persistent recovery entries; optional.
        source: the source string stamped on audit entries.
    """

    def __init__(
        self,
        nvm: NonVolatileMemory,
        journal: Optional[CommitJournal] = None,
        monitor=None,
        audit=None,
        source: str = "recovery",
    ):
        self._nvm = nvm
        self._journal = journal
        self._monitor = monitor
        self._audit = audit
        self._source = source
        self._guards: List[Tuple[str, Optional[CellRepairFn]]] = []
        self._invariants: List[Invariant] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def guard(self, prefix: str, repair: Optional[CellRepairFn] = None) -> None:
        """Verify all cells whose name starts with ``prefix`` at boot.

        A corrupted cell is always reset to its allocation-time initial
        value first; ``repair``, if given, then re-initialises the
        owning component (and describes what it did).

        Re-registering an already-guarded prefix replaces its repairer
        (an OTA monitor swap points the old prefixes at the new monitor).
        """
        for i, (existing, _) in enumerate(self._guards):
            if existing == prefix:
                self._guards[i] = (prefix, repair)
                return
        self._guards.append((prefix, repair))

    def unguard(self, prefix: str) -> None:
        """Drop a guarded prefix (its cells become unmanaged again)."""
        self._guards = [(p, r) for p, r in self._guards if p != prefix]

    def set_monitor(self, monitor) -> None:
        """Point boot-time monitor validation at a replacement monitor."""
        self._monitor = monitor

    def add_invariant(
        self,
        name: str,
        check: Callable[[], bool],
        repair: Callable[[], None],
    ) -> None:
        """Register an invariant; ``check`` raising counts as violated.

        Invariants run in registration order, so later checks may rely
        on earlier repairs (e.g. validate the task index only after the
        path index has been clamped into range).
        """
        self._invariants.append(Invariant(name, check, repair))

    # ------------------------------------------------------------------
    # The boot pass
    # ------------------------------------------------------------------
    def on_boot(self, device) -> RecoveryReport:
        """Run journal recovery, checksum scan, and invariant validation.

        Recovery itself is charged no energy: it models the boot-time
        FRAM scan firmware performs before re-entering the main loop,
        which is orders of magnitude cheaper than any task.
        """
        report = RecoveryReport()
        if self._journal is not None:
            report.journal = self._journal.recover()
        self._verify_guarded(report)
        if self._monitor is not None:
            for machine in self._monitor.validate():
                self._monitor.reset_machine(machine)
                report.monitor_resets.append(machine)
        for invariant in self._invariants:
            try:
                ok = invariant.check()
            except Exception:
                ok = False
            if not ok:
                invariant.repair()
                report.invariant_repairs.append(invariant.name)
        self._publish(device, report)
        return report

    def _verify_guarded(self, report: RecoveryReport) -> None:
        for name in list(self._nvm):
            repairer = self._repairer_for(name)
            if repairer is _UNGUARDED:
                continue
            if self._nvm.verify(name):
                continue
            report.corrupted_cells.append(name)
            self._nvm.restore_initial(name)
            description = f"{name} reset to initial"
            if repairer is not None:
                extra = repairer(name)
                if extra:
                    description += f"; {extra}"
            report.repairs.append(description)

    def _repairer_for(self, cell_name: str):
        for prefix, repairer in self._guards:
            if cell_name.startswith(prefix):
                return repairer
        return _UNGUARDED

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _publish(self, device, report: RecoveryReport) -> None:
        t = device.sim_clock.now()
        trace, result = device.trace, device.result
        if report.journal == RECOVERED_ROLLED_BACK:
            result.torn_commits += 1
            trace.record(t, "torn_commit", outcome="rolled_back")
            self._audit_entry(device, "journal:rolledBack", self._source)
        elif report.journal == RECOVERED_ROLLED_FORWARD:
            result.journal_replays += 1
            trace.record(t, "journal_replay", outcome="rolled_forward")
            self._audit_entry(device, "journal:replayed", self._source)
        elif report.journal == RECOVERED_CORRUPT:
            result.torn_commits += 1
            result.corruptions_detected += 1
            trace.record(t, "torn_commit", outcome="corrupt_journal")
            self._audit_entry(device, "journal:corrupt", self._source)
        for cell, description in zip(report.corrupted_cells, report.repairs):
            result.corruptions_detected += 1
            result.corruptions_repaired += 1
            trace.record(t, "corruption_detected", cell=cell,
                         repair=description)
            self._audit_entry(device, "corruption", cell)
        for machine in report.monitor_resets:
            result.monitor_resets += 1
            trace.record(t, "monitor_reset", machine=machine)
            self._audit_entry(device, "monitorReset", machine)
        for name in report.invariant_repairs:
            result.invariant_repairs += 1
            trace.record(t, "invariant_repair", invariant=name)
            self._audit_entry(device, "invariantRepair", name)
        if not report.clean:
            trace.record(
                t, "recovery",
                journal=report.journal,
                corrupted=len(report.corrupted_cells),
                invariants=len(report.invariant_repairs),
                monitor_resets=len(report.monitor_resets),
            )

    def _audit_entry(self, device, action: str, source: str) -> None:
        if self._audit is None:
            return
        self._audit.record_event(
            device.now(), f"recovery:{action}", source, task="<boot>"
        )


#: Sentinel distinguishing "no repairer registered" from "not guarded".
_UNGUARDED = object()
