"""Alternative monitor deployments (§7 "Implementation Alternatives").

The paper discusses two designs it chose not to ship, trading resource
use against modularity; both are implemented here so the trade-off can
be measured (see ``benchmarks/test_ablation_deployments.py``):

* :class:`InlinedArtemisRuntime` — compiler-style inlining of the
  monitoring code into the runtime (the AOP weaving of §6). Eliminates
  the cross-module call overhead (no ``callMonitor`` marshalling), at
  the cost of a larger code footprint: the checking code is duplicated
  at every call site instead of living in one module.
  Checking time is charged to the *runtime* category — exactly the
  coupling the paper's problem P2 describes.

* :class:`RemoteMonitorRuntime` — monitors deployed on an external,
  wirelessly attached device. Maximum modularity (monitors can be
  updated without reflashing the application), but every event and
  every verdict crosses a radio, and "wireless communication is way
  more energy-hungry compared to computation".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import MonitorEvent
from repro.core.actions import Action
from repro.core.arbiter import arbitrate
from repro.core.runtime import ArtemisRuntime


class InlinedArtemisRuntime(ArtemisRuntime):
    """ARTEMIS with the monitor woven into the runtime (AOP-style).

    Same observable behaviour as the modular runtime (the same machines
    run); only the cost attribution and magnitudes change: no per-call
    marshalling cost, a slightly cheaper per-property check (direct
    branches instead of an indirect dispatch), and everything charged as
    runtime time.
    """

    #: Inlining removes the call/marshalling overhead entirely and
    #: shaves the per-property dispatch down to a direct branch.
    INLINE_PER_PROPERTY_FACTOR = 0.7

    def _call_monitor(self, event: MonitorEvent) -> Action:
        device = self._device
        device.consume(self.power.runtime_transition_s,
                       self.power.overhead_power_w, "runtime")
        actions = self.monitor.call(
            event,
            spend=self._spend_inlined,
            per_machine_cost_s=(self.power.monitor_per_property_s
                                * self.INLINE_PER_PROPERTY_FACTOR),
            base_cost_s=0.0,
        )
        action = arbitrate(actions, self.policy)
        self._trace_action(action)
        return action

    def _spend_inlined(self, seconds: float) -> None:
        # Checking is indistinguishable from runtime work once inlined.
        self._device.consume(seconds, self.power.overhead_power_w, "runtime")

    def _spend_monitor(self, seconds: float) -> None:
        # monitorFinalize after a reboot also runs inlined.
        self._spend_inlined(seconds)


@dataclass(frozen=True)
class RadioLink:
    """Cost model of the wireless hop to an external monitor node.

    Defaults approximate a BLE connection event: ~2 ms airtime each way
    at ~12 mW TX/RX draw.
    """

    tx_time_s: float = 2e-3
    rx_time_s: float = 2e-3
    power_w: float = 12e-3

    @property
    def round_trip_s(self) -> float:
        return self.tx_time_s + self.rx_time_s


class RemoteMonitorRuntime(ArtemisRuntime):
    """ARTEMIS with monitors on an external wireless device.

    Each ``callMonitor`` becomes: transmit the event, the remote node
    evaluates the machines (free for *this* device), receive the
    verdict. The local device pays radio time and energy instead of
    compute — usually far more, which is the paper's reservation about
    this design.
    """

    def __init__(self, *args, radio: RadioLink = RadioLink(), **kwargs):
        super().__init__(*args, **kwargs)
        self.radio = radio

    def _call_monitor(self, event: MonitorEvent) -> Action:
        device = self._device
        device.consume(self.power.runtime_transition_s,
                       self.power.overhead_power_w, "runtime")
        # The radio round trip replaces the local checking cost; pay it
        # up front so a brown-out mid-exchange is re-finalised on reboot
        # like any interrupted monitor call.
        actions = self.monitor.call(
            event,
            spend=self._spend_radio,
            per_machine_cost_s=0.0,
            base_cost_s=self.radio.round_trip_s,
        )
        action = arbitrate(actions, self.policy)
        self._trace_action(action)
        return action

    def _spend_radio(self, seconds: float) -> None:
        # Charged to the shared "radio" category — the same one the fleet
        # OTA transport uses — so the §7 ablation and the update subsystem
        # agree on what wireless airtime costs.
        self._device.consume(seconds, self.radio.power_w, "radio")

    def _spend_monitor(self, seconds: float) -> None:
        self._spend_radio(seconds)
