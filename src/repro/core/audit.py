"""Persistent audit log of monitor decisions.

Deployed intermittent systems cannot be debugged interactively: the
device is in a field somewhere, dying hundreds of times a day. The
audit log keeps the last N corrective actions (with timestamps, task,
path, and the reporting machine) in a fixed-size NVM ring buffer so a
maintenance read-out can reconstruct *why* the application took the
path it did — the runtime-adaptation story of the paper made
observable.

The ring is bounded and its writes are O(1) per action, so the cost is
a small constant addition to the action path (charged as runtime time
by the caller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.actions import Action
from repro.errors import ReproError
from repro.nvm.memory import NonVolatileMemory


@dataclass(frozen=True)
class AuditEntry:
    """One recorded corrective action."""

    seq: int
    timestamp: float
    task: str
    path: int
    action: str
    source: str


class AuditLog:
    """Fixed-capacity ring buffer of :class:`AuditEntry` in NVM."""

    def __init__(self, nvm: NonVolatileMemory, capacity: int = 32,
                 name: str = "audit"):
        if capacity < 1:
            raise ReproError("audit capacity must be >= 1")
        self.capacity = capacity
        self._entries = nvm.alloc(f"{name}.ring", initial=(),
                                  size_bytes=capacity * 16)
        self._seq = nvm.alloc(f"{name}.seq", initial=0, size_bytes=4)
        self._cleared = nvm.alloc(f"{name}.cleared", initial=0, size_bytes=4)

    def record(self, timestamp: float, task: str, path: int,
               action: Action) -> AuditEntry:
        """Append one action; the oldest entry falls off when full."""
        return self.record_event(timestamp, action.type.value,
                                 action.source, task=task, path=path)

    def record_event(self, timestamp: float, action: str, source: str,
                     task: str = "-", path: int = -1) -> AuditEntry:
        """Append a free-form event (e.g. a boot-time recovery record).

        Corrective actions go through :meth:`record`; this lower-level
        entry point lets subsystems without an :class:`Action` object —
        recovery, diagnostics — share the same persistent ring.
        """
        entry = AuditEntry(
            seq=self._seq.get(),
            timestamp=timestamp,
            task=task,
            path=path,
            action=action,
            source=source,
        )
        ring = self._entries.get() + (entry,)
        if len(ring) > self.capacity:
            ring = ring[-self.capacity:]
        self._entries.set(ring)
        self._seq.set(entry.seq + 1)
        return entry

    # ------------------------------------------------------------------
    def entries(self) -> List[AuditEntry]:
        """Oldest-to-newest surviving entries."""
        return list(self._entries.get())

    def last(self, n: int = 1) -> List[AuditEntry]:
        return list(self._entries.get()[-n:])

    @property
    def total_recorded(self) -> int:
        """Actions ever recorded, including those rotated out."""
        return self._seq.get()

    @property
    def cleared(self) -> int:
        """Entries deliberately discarded via :meth:`clear`."""
        return self._cleared.get()

    @property
    def dropped(self) -> int:
        """Entries lost to ring rotation — *not* counting cleared ones.

        Without the cleared counter every ``clear()`` would inflate this
        number, making capacity look insufficient when it was not.
        """
        return max(0, self.total_recorded - self.cleared
                   - len(self._entries.get()))

    def clear(self) -> None:
        """Discard live entries, keeping ``dropped`` truthful."""
        self._cleared.set(self._cleared.get() + len(self._entries.get()))
        self._entries.set(())

    def dump(self) -> str:
        lines = []
        for e in self.entries():
            lines.append(
                f"#{e.seq:<5} t={e.timestamp:10.2f}s  {e.action:<12} "
                f"task={e.task} path={e.path} source={e.source}"
            )
        return "\n".join(lines) if lines else "(audit log empty)"
