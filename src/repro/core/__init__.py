"""The ARTEMIS core: the paper's primary contribution.

This package ties the substrates together into the framework of
Figure 3:

* :mod:`~repro.core.events` / :mod:`~repro.core.actions` — the
  runtime ↔ monitor interface (StartTask/EndTask events in, corrective
  actions out).
* :mod:`~repro.core.properties` — the semantic property model produced
  by the specification language.
* :mod:`~repro.core.generator` — model-to-model transformation from
  properties to intermediate-language state machines (Figure 7
  templates).
* :mod:`~repro.core.monitor` — application-specific monitors: generated
  machine code + NVM persistence + ImmortalThreads-style atomicity.
* :mod:`~repro.core.arbiter` — action arbitration when several
  properties fail on one event.
* :mod:`~repro.core.runtime` — the ARTEMIS intermittent runtime
  (Figures 8/9): task execution, property checking, action handling.
* :mod:`~repro.core.recovery` — boot-time recovery: commit-journal
  resolution, NVM checksum verification, and state-invariant repair.
"""

from repro.core.actions import Action, ActionType
from repro.core.events import EventKind, MonitorEvent
from repro.core.generator import generate_machine, generate_machines
from repro.core.monitor import ArtemisMonitor, MonitorGroup
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.runtime import ArtemisRuntime

__all__ = [
    "Action",
    "ActionType",
    "EventKind",
    "MonitorEvent",
    "generate_machine",
    "generate_machines",
    "ArtemisMonitor",
    "MonitorGroup",
    "ArtemisRuntime",
    "RecoveryManager",
    "RecoveryReport",
]
