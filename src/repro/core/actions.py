"""Corrective actions monitors can request from the runtime.

Table 1 of the paper defines five ``onFail`` actions. The runtime may
receive several at once (multiple properties can fail on one event);
:mod:`repro.core.arbiter` resolves them using the severity order defined
here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError


class ActionType(enum.Enum):
    """The action vocabulary of the property language (Table 1)."""

    NONE = "none"
    RESTART_TASK = "restartTask"
    SKIP_TASK = "skipTask"
    RESTART_PATH = "restartPath"
    SKIP_PATH = "skipPath"
    COMPLETE_PATH = "completePath"

    @classmethod
    def from_name(cls, name: str) -> "ActionType":
        try:
            # Enum's by-value lookup table; one dict hit instead of a
            # member scan on every persisted-verdict replay.
            return cls(name)
        except ValueError:
            raise ReproError(f"unknown action {name!r}") from None


#: Arbitration severity: a higher value wins when several monitors fail
#: at once. Path-level actions dominate task-level ones; completePath is
#: strongest because it commits the system to finishing the current path
#: (the emergency-reporting case of Figure 5, line 14).
SEVERITY = {
    ActionType.NONE: 0,
    ActionType.RESTART_TASK: 1,
    ActionType.SKIP_TASK: 2,
    ActionType.RESTART_PATH: 3,
    ActionType.SKIP_PATH: 4,
    ActionType.COMPLETE_PATH: 5,
}


@dataclass(frozen=True)
class Action:
    """A concrete corrective action bound to an (optional) path.

    ``path`` is the explicit ``Path: N`` target from the specification;
    ``None`` means "the path currently executing". ``source`` names the
    machine that raised it, for tracing.
    """

    type: ActionType
    path: Optional[int] = None
    source: str = ""

    @property
    def severity(self) -> int:
        return SEVERITY[self.type]

    def __str__(self) -> str:
        path = f"(path {self.path})" if self.path is not None else ""
        return f"{self.type.value}{path}"


NO_ACTION = Action(ActionType.NONE)
