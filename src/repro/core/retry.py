"""Per-task retry policy with persistent attempt counters.

Transient peripheral faults are recovered by re-executing the task —
the same recovery primitive task-based systems already use for power
failures (Alpaca-style re-execution), so a retried task can never
half-commit: the volatile transaction is simply discarded and the body
runs again. :class:`RetryPolicy` bounds how hard the runtime tries
(attempt budget, exponential backoff with deterministic jitter, an
optional per-attempt energy surcharge); :class:`RetrySupervisor` keeps
the attempt counters in NVM so a retry storm that spans reboots is
still recognised by the livelock watchdog, which escalates to the
property's ``onFail`` action or a configurable fallback.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict

from repro.errors import RuntimeConfigError
from repro.nvm.memory import NonVolatileMemory


@dataclass(frozen=True)
class RetryPolicy:
    """How a runtime re-executes tasks that raised ``PeripheralError``.

    Attributes:
        max_attempts: total body executions before the watchdog trips
            (1 = no retries, fail straight to escalation).
        backoff_base_s: sleep before the second attempt; doubles (by
            ``backoff_factor``) for each further attempt. Charged to
            the ``runtime`` energy category at the power model's
            overhead draw.
        backoff_factor: exponential growth factor of the backoff.
        jitter_frac: +/- fractional jitter applied to each backoff,
            derived deterministically from (seed, task, attempt) so
            simulations stay reproducible.
        retry_energy_j: fixed extra energy per retry (e.g. a sensor
            power-cycle), charged to the ``runtime`` category.
        seed: jitter seed.
    """

    max_attempts: int = 3
    backoff_base_s: float = 5e-3
    backoff_factor: float = 2.0
    jitter_frac: float = 0.1
    retry_energy_j: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RuntimeConfigError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.retry_energy_j < 0:
            raise RuntimeConfigError("backoff and retry energy must be non-negative")
        if self.backoff_factor < 1.0:
            raise RuntimeConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise RuntimeConfigError("jitter_frac must be in [0, 1)")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Backoff before re-attempt number ``attempt + 1``.

        ``attempt`` counts failures so far (1-based). Deterministic: the
        jitter is a hash of (seed, key, attempt), not a live RNG draw.
        """
        if attempt < 1:
            raise RuntimeConfigError("attempt must be >= 1")
        if self.backoff_base_s == 0.0:
            return 0.0
        raw = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter_frac:
            bucket = zlib.crc32(f"{self.seed}:{key}:{attempt}".encode("utf-8"))
            unit = (bucket % 10_000) / 10_000.0 * 2.0 - 1.0  # [-1, 1)
            raw *= 1.0 + self.jitter_frac * unit
        return max(raw, 0.0)


class RetrySupervisor:
    """NVM-backed attempt counters driving the livelock watchdog.

    Counters are written *immediately* (single-cell durable write, not
    staged) when a failure is recorded: an attempt that brown-outs
    during its backoff must still count after reboot, or a dying sensor
    plus a dying capacitor could retry forever. On success the runtime
    stages the cleared counter into the task's own commit, so the clear
    is atomic with the task's effects.
    """

    def __init__(self, nvm: NonVolatileMemory, policy: RetryPolicy,
                 cell_name: str = "rt.retry.attempts"):
        self.policy = policy
        # Attempt counters exist to survive the crash and be read back
        # larger — the textbook progress cell (WAR-exempt).
        self._cell = nvm.alloc(cell_name, initial={}, size_bytes=32,
                               progress=True)

    @property
    def cell_name(self) -> str:
        """Name of the NVM cell holding the attempt counters."""
        return self._cell.name

    def attempts(self, task: str) -> int:
        """Failed attempts recorded for ``task`` (0 if none)."""
        return int(self._counts().get(task, 0))

    def record_failure(self, task: str) -> int:
        """Durably count one failed attempt; returns the new count."""
        counts = self._counts()
        counts[task] = int(counts.get(task, 0)) + 1
        self._cell.set(counts)
        return counts[task]

    def exhausted(self, task: str) -> bool:
        """True once ``task`` has used its whole attempt budget."""
        return self.attempts(task) >= self.policy.max_attempts

    def clear(self, task: str) -> None:
        """Durably drop the counter (watchdog escalation handled it)."""
        counts = self._counts()
        if task in counts:
            del counts[task]
            self._cell.set(counts)

    def cleared(self, task: str) -> Dict[str, int]:
        """Counter mapping without ``task`` — for staging into a commit
        so a successful retry clears its counter atomically."""
        counts = self._counts()
        counts.pop(task, None)
        return counts

    def _counts(self) -> Dict[str, int]:
        value = self._cell.get()
        if not isinstance(value, dict):
            # Corrupted counter cell: recovery resets it at boot, but a
            # mid-run read must still behave; treat as empty.
            return {}
        return dict(value)
