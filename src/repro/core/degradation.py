"""Energy-adaptive monitor degradation.

When many properties are monitored at once, every ``callMonitor`` pays
per-property cost — cost a nearly-empty capacitor cannot afford. The
:class:`DegradationController` watches the device's stored energy each
runtime loop iteration and sheds monitors lowest-priority-first when it
crosses a low watermark, restoring them highest-priority-first once
energy recovers past a high watermark. The watermark gap is the
hysteresis band: between the two levels nothing changes, so the
controller cannot oscillate at a boundary.

Shed state persists in the monitor's NVM, every shed/restore is a trace
record plus a :class:`~repro.sim.result.RunResult` counter plus an
audit entry, and non-sheddable monitors (progress trackers — see
``Property.SUPPORTS_PRIORITY``) are never touched.

:class:`PredictiveDegradationController` goes one step further: instead
of waiting for state-of-charge to collapse, it consults a static
:class:`~repro.analysis.energy.EnergyReport` and a
:class:`~repro.analysis.forecast.HarvestForecaster` at each **path
boundary** and sheds the predicted-unaffordable monitor set *before*
the brownout — restoring once the forecast budget recovers. When no
forecast is available (cold start, unbound runtime) it falls back to
the reactive hysteresis above.
"""

from __future__ import annotations

import math
from typing import Any, FrozenSet, Optional

from repro.errors import RuntimeConfigError


class DegradationController:
    """Sheds and restores monitors as stored energy moves.

    Args:
        monitor: an :class:`~repro.core.monitor.ArtemisMonitor` or
            :class:`~repro.core.monitor.MonitorGroup`.
        low_j: shed watermark (joules of usable stored energy); below
            it, one monitor is shed per :meth:`update`.
        high_j: restore watermark; at or above it, one shed monitor is
            restored per :meth:`update`. Must exceed ``low_j``.
        audit: optional :class:`~repro.core.audit.AuditLog` for
            persistent shed/restore entries.
    """

    def __init__(self, monitor: Any, low_j: float, high_j: float,
                 audit: Optional[Any] = None):
        if low_j < 0:
            raise RuntimeConfigError("low watermark must be non-negative")
        if high_j <= low_j:
            raise RuntimeConfigError(
                f"high watermark must exceed low (got low={low_j}, high={high_j})"
            )
        self.monitor = monitor
        self.low_j = float(low_j)
        self.high_j = float(high_j)
        self._audit = audit

    def update(self, device: Any) -> Optional[str]:
        """One control step; returns the machine shed/restored, if any.

        Called by the runtime at the top of each loop iteration. On a
        continuously powered device (infinite stored energy) this is a
        no-op. At most one machine changes per step, so load changes
        ramp rather than jump.
        """
        soc = device.stored_energy()
        if math.isinf(soc):
            return None
        if soc < self.low_j:
            return self._shed_one(device, soc)
        if soc >= self.high_j:
            return self._restore_one(device, soc)
        return None

    # ------------------------------------------------------------------
    def _shed_one(self, device: Any, soc: float) -> Optional[str]:
        for name in self.monitor.shedding_order():
            if self.monitor.is_shed(name):
                continue
            if not self.monitor.shed(name):
                continue
            self._publish(device, "monitor_shed", name, soc)
            device.result.monitors_shed += 1
            return name
        return None

    def _restore_one(self, device: Any, soc: float) -> Optional[str]:
        name = self._next_restore()
        if name is None:
            return None
        if not self.monitor.restore(name):
            return None
        self._publish(device, "monitor_restored", name, soc)
        device.result.monitors_restored += 1
        return name

    def _next_restore(self) -> Optional[str]:
        """The shed machine that comes back first: highest priority (the
        most valuable monitoring resumes as soon as the budget allows),
        name-ordered on ties so decisions are deterministic across runs
        and hash seeds."""
        shed = self.monitor.shed_machines()
        if not shed:
            return None
        return min(shed,
                   key=lambda n: (-self.monitor.machine_priority(n), n))

    def _publish(self, device: Any, kind: str, machine: str, soc: float,
                 **extra: Any) -> None:
        device.trace.record(
            device.now(), kind,
            machine=machine,
            priority=self.monitor.machine_priority(machine),
            soc_j=round(soc, 9),
            **extra,
        )
        if self._audit is not None:
            action = "degrade:shed" if kind == "monitor_shed" else "degrade:restore"
            # The SoC at decision time rides in the spare task column —
            # record_event's schema is fixed by the NVM audit ring.
            self._audit.record_event(device.now(), action, machine,
                                     task=f"soc:{round(soc, 9)}")

    @property
    def shed_count(self) -> int:
        """How many machines are currently shed."""
        return len(self.monitor.shed_machines())


class PredictiveDegradationController(DegradationController):
    """Forecast-driven anticipatory shedding at path boundaries.

    At each path boundary (the only points where the monitor set may
    change without torn monitor state — the same rule OTA swaps follow)
    the controller asks: *can the energy on hand plus the forecast
    harvest over the next traversal cover the static worst-case budget
    of the upcoming path?* If not, it sheds lowest-priority monitors
    until the reduced budget fits (or nothing sheddable remains) —
    *before* the brownout, not after. Once the available budget covers
    the full monitor set again with margin, monitors are restored
    highest-priority-first.

    Mid-path, or whenever the forecaster is not :attr:`~repro.analysis.
    forecast.HarvestForecaster.ready`, the reactive hysteresis of the
    base class runs unchanged — predictive never removes the safety
    net, it only acts earlier.

    Args:
        monitor: the monitor (as for :class:`DegradationController`).
        low_j / high_j: reactive-fallback watermarks.
        report: :class:`~repro.analysis.energy.EnergyReport` for the
            deployed app + property set (the worst-case path budgets).
        forecaster: optional :class:`~repro.analysis.forecast.
            HarvestForecaster`; fed automatically from the device's
            harvester each step. ``None`` = pure reactive behaviour.
        audit: optional audit log.
        shed_margin: shed while available < margin x path budget.
        restore_margin: restore once available >= margin x budget with
            the monitor back. Must exceed ``shed_margin`` — the gap is
            the predictive hysteresis band.
    """

    def __init__(self, monitor: Any, low_j: float, high_j: float,
                 report: Any, forecaster: Optional[Any] = None,
                 audit: Optional[Any] = None,
                 shed_margin: float = 1.2, restore_margin: float = 2.0):
        super().__init__(monitor, low_j, high_j, audit=audit)
        if restore_margin <= shed_margin:
            raise RuntimeConfigError(
                f"restore margin must exceed shed margin "
                f"(got shed={shed_margin}, restore={restore_margin})"
            )
        if shed_margin < 1.0:
            raise RuntimeConfigError("shed margin must be >= 1.0")
        self.report = report
        self.forecaster = forecaster
        self.shed_margin = float(shed_margin)
        self.restore_margin = float(restore_margin)
        self._runtime: Optional[Any] = None

    def bind(self, runtime: Any) -> None:
        """Called by the runtime after construction (duck-typed hook):
        gives the controller the path-boundary and current-path view it
        predicts over."""
        self._runtime = runtime

    # ------------------------------------------------------------------
    def update(self, device: Any) -> Optional[str]:
        soc = device.stored_energy()
        if math.isinf(soc):
            return None
        self._observe(device)
        runtime = self._runtime
        if (runtime is None or self.forecaster is None
                or not self.forecaster.ready):
            return super().update(device)
        if not runtime.at_path_boundary():
            # Mid-path the monitor set must not change; the reactive
            # fallback also only acts at SoC collapse, which cannot
            # happen mid-path without a reboot landing us at a boundary.
            return None
        path = runtime.current_path_number
        budget = self.report.path(path)
        horizon = budget.on_time_s
        forecast_j = self.forecaster.forecast_energy_j(device.now(), horizon)
        avail = soc + forecast_j
        changed = self._shed_unaffordable(device, soc, avail, path)
        if changed is None:
            changed = self._restore_affordable(device, soc, avail, path)
        return changed

    # ------------------------------------------------------------------
    def _observe(self, device: Any) -> None:
        if self.forecaster is None:
            return
        harvester = getattr(getattr(device, "env", None), "harvester", None)
        if harvester is not None:
            self.forecaster.observe(device.now(),
                                    harvester.power_at(device.now()))

    def _live_shed_set(self) -> FrozenSet[str]:
        return frozenset(self.monitor.shed_machines())

    def _shed_unaffordable(self, device: Any, soc: float, avail: float,
                           path: int) -> Optional[str]:
        """Shed until the reduced path budget fits the forecast energy.

        Unlike the reactive controller this may shed several machines in
        one step: the whole unaffordable set must go before the path
        starts, or the brownout lands mid-path anyway.
        """
        first: Optional[str] = None
        shed = set(self._live_shed_set())
        while avail < self.shed_margin * self.report.path_energy_j(
                path, frozenset(shed)):
            target = next(
                (n for n in self.monitor.shedding_order()
                 if n not in shed), None)
            if target is None or not self.monitor.shed(target):
                break
            shed.add(target)
            self._publish(device, "monitor_shed", target, soc,
                          predictive=True, path=path)
            device.result.monitors_shed += 1
            if hasattr(device.result, "predictive_sheds"):
                device.result.predictive_sheds += 1
            if first is None:
                first = target
        return first

    def _restore_affordable(self, device: Any, soc: float, avail: float,
                            path: int) -> Optional[str]:
        name = self._next_restore()
        if name is None:
            return None
        with_back = self._live_shed_set() - {name}
        need = self.restore_margin * self.report.path_energy_j(
            path, with_back)
        if avail < need or not self.monitor.restore(name):
            return None
        self._publish(device, "monitor_restored", name, soc,
                      predictive=True, path=path)
        device.result.monitors_restored += 1
        return name
