"""Energy-adaptive monitor degradation.

When many properties are monitored at once, every ``callMonitor`` pays
per-property cost — cost a nearly-empty capacitor cannot afford. The
:class:`DegradationController` watches the device's stored energy each
runtime loop iteration and sheds monitors lowest-priority-first when it
crosses a low watermark, restoring them highest-priority-first once
energy recovers past a high watermark. The watermark gap is the
hysteresis band: between the two levels nothing changes, so the
controller cannot oscillate at a boundary.

Shed state persists in the monitor's NVM, every shed/restore is a trace
record plus a :class:`~repro.sim.result.RunResult` counter plus an
audit entry, and non-sheddable monitors (progress trackers — see
``Property.SUPPORTS_PRIORITY``) are never touched.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.errors import RuntimeConfigError


class DegradationController:
    """Sheds and restores monitors as stored energy moves.

    Args:
        monitor: an :class:`~repro.core.monitor.ArtemisMonitor` or
            :class:`~repro.core.monitor.MonitorGroup`.
        low_j: shed watermark (joules of usable stored energy); below
            it, one monitor is shed per :meth:`update`.
        high_j: restore watermark; at or above it, one shed monitor is
            restored per :meth:`update`. Must exceed ``low_j``.
        audit: optional :class:`~repro.core.audit.AuditLog` for
            persistent shed/restore entries.
    """

    def __init__(self, monitor: Any, low_j: float, high_j: float,
                 audit: Optional[Any] = None):
        if low_j < 0:
            raise RuntimeConfigError("low watermark must be non-negative")
        if high_j <= low_j:
            raise RuntimeConfigError(
                f"high watermark must exceed low (got low={low_j}, high={high_j})"
            )
        self.monitor = monitor
        self.low_j = float(low_j)
        self.high_j = float(high_j)
        self._audit = audit

    def update(self, device: Any) -> Optional[str]:
        """One control step; returns the machine shed/restored, if any.

        Called by the runtime at the top of each loop iteration. On a
        continuously powered device (infinite stored energy) this is a
        no-op. At most one machine changes per step, so load changes
        ramp rather than jump.
        """
        soc = device.stored_energy()
        if math.isinf(soc):
            return None
        if soc < self.low_j:
            return self._shed_one(device, soc)
        if soc >= self.high_j:
            return self._restore_one(device, soc)
        return None

    # ------------------------------------------------------------------
    def _shed_one(self, device: Any, soc: float) -> Optional[str]:
        for name in self.monitor.shedding_order():
            if self.monitor.is_shed(name):
                continue
            if not self.monitor.shed(name):
                continue
            self._publish(device, "monitor_shed", name, soc)
            device.result.monitors_shed += 1
            return name
        return None

    def _restore_one(self, device: Any, soc: float) -> Optional[str]:
        shed = self.monitor.shed_machines()
        if not shed:
            return None
        # Highest priority comes back first: the most valuable
        # monitoring resumes as soon as the budget allows.
        name = max(shed, key=lambda n: (self.monitor.machine_priority(n), n))
        if not self.monitor.restore(name):
            return None
        self._publish(device, "monitor_restored", name, soc)
        device.result.monitors_restored += 1
        return name

    def _publish(self, device: Any, kind: str, machine: str, soc: float) -> None:
        device.trace.record(
            device.now(), kind,
            machine=machine,
            priority=self.monitor.machine_priority(machine),
            soc_j=round(soc, 9),
        )
        if self._audit is not None:
            action = "degrade:shed" if kind == "monitor_shed" else "degrade:restore"
            self._audit.record_event(device.now(), action, machine)

    @property
    def shed_count(self) -> int:
        """How many machines are currently shed."""
        return len(self.monitor.shed_machines())
