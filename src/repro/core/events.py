"""Observable events the runtime feeds to monitors.

The paper's ``MonitorEvent_t`` (Figure 8) carries the event kind
(StartTask/EndTask), a timestamp, and the task pointer; EndTask events
additionally carry the task's dependent data (``depData``) so ``dpData``
properties can check output ranges. The event is a *persistent* variable
in the real system; the runtime stores the current instance in NVM so an
interrupted monitor call can be finalised after reboot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


class EventKind(enum.Enum):
    """The two observable event kinds of §3.4: task start and task end."""
    START_TASK = "startTask"
    END_TASK = "endTask"


@dataclass(frozen=True)
class MonitorEvent:
    """One observation delivered to monitors.

    Attributes:
        kind: ``"startTask"`` or ``"endTask"`` (string form so the
            state-machine layer matches triggers directly; use
            :attr:`event_kind` for the enum).
        task: name of the task the event concerns.
        timestamp: persistent-clock time (seconds) of the event.
        data: dependent data emitted by the task (EndTask only) — the
            values of its ``monitored_vars``.
        path: number of the path executing when the event fired; lets
            path-scoped properties (``Path: N``) confine their checks to
            the right path at merge-point tasks.
    """

    kind: str
    task: str
    timestamp: float
    data: Mapping[str, Any] = field(default_factory=dict)
    path: int = 0

    def __post_init__(self) -> None:
        EventKind(self.kind)  # raises ValueError on an unknown kind

    @property
    def event_kind(self) -> EventKind:
        return EventKind(self.kind)

    def to_dict(self) -> Dict[str, Any]:
        """Serializable form, for persisting the pending event in NVM."""
        return {
            "kind": self.kind,
            "task": self.task,
            "timestamp": self.timestamp,
            "data": dict(self.data),
            "path": self.path,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MonitorEvent":
        return cls(
            kind=payload["kind"],
            task=payload["task"],
            timestamp=payload["timestamp"],
            data=dict(payload.get("data", {})),
            path=payload.get("path", 0),
        )


def start_event(task: str, timestamp: float, path: int = 0) -> MonitorEvent:
    """Build a StartTask event."""
    return MonitorEvent(EventKind.START_TASK.value, task, timestamp, path=path)


def end_event(
    task: str,
    timestamp: float,
    data: Optional[Mapping[str, Any]] = None,
    path: int = 0,
) -> MonitorEvent:
    """Build an EndTask event carrying dependent data."""
    return MonitorEvent(
        EventKind.END_TASK.value, task, timestamp, dict(data or {}), path=path
    )
