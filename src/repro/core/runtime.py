"""The ARTEMIS intermittent runtime (paper §4.1, Figures 8 and 9).

Executes a task-based application path by path, feeding StartTask /
EndTask events to the application-specific monitor and applying the
corrective actions it returns. All control state lives in NVM; the
runtime is restartable from any power failure.

Timestamp consistency (§4.1.3) is honoured exactly:

* the StartTask event is re-stamped on every re-execution attempt, and
  the duration machines keep the *first* timestamp via their implicit
  self-transitions;
* the EndTask timestamp is persisted once in ``taskFinish`` and never
  re-stamped, so a monitor call interrupted after the task committed
  still sees the true finish time.

completePath interpretation (Table 1): the remaining tasks of the
current path execute unmonitored; when the path completes, the run ends
immediately without executing further paths, and the next application
run resumes from the first task of the path that would have followed.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import Action, ActionType
from repro.core.arbiter import ArbitrationPolicy, arbitrate, most_severe
from repro.core.degradation import DegradationController
from repro.core.events import end_event, MonitorEvent
from repro.core.monitor import ArtemisMonitor
from repro.core.properties import EnergyAtLeast, PropertySet
from repro.core.recovery import RecoveryManager
from repro.core.retry import RetryPolicy, RetrySupervisor
from repro.energy.power import PowerModel
from repro.errors import PeripheralError, RuntimeConfigError
from repro.nvm.journal import CommitJournal
from repro.nvm.transaction import Transaction
from repro.taskgraph.app import Application
from repro.taskgraph.context import TaskContext, channel_cell_name

_READY = "TASK_READY"
_FINISHED = "TASK_FINISHED"

#: Shared payload for StartTask events that carry no probe data. Event
#: data is never mutated after construction (task emissions ride on
#: EndTask via a fresh dict), so one empty mapping can serve every event.
_EMPTY_DATA: dict = {}


class ArtemisRuntime:
    """Power-failure-resilient executor with decoupled monitoring.

    Args:
        app: the task-based application.
        props: its validated property set.
        device: simulated device supplying NVM, clock, and energy.
        power_model: per-task and overhead costs.
        monitor_backend: ``"generated"`` or ``"interpreted"``.
        policy: arbitration policy for concurrent property failures.
        audit_capacity: if positive, keep the last N corrective actions
            in a persistent ring buffer (``self.audit``) for post-mortem
            read-out.
        peripherals: optional
            :class:`~repro.peripherals.PeripheralSet`; task bodies'
            sensor reads then route through its fault models and may
            raise :class:`~repro.errors.PeripheralError`.
        retry_policy: how to re-execute tasks on peripheral faults
            (defaults to :class:`~repro.core.retry.RetryPolicy`()).
        watchdog_fallback: action applied when the livelock watchdog
            trips on a task no property guards (the task is also marked
            degraded on channel ``degraded.<task>``).
        degradation: energy-adaptive monitor shedding — an
            ``(low_j, high_j)`` watermark pair, a prebuilt
            :class:`~repro.core.degradation.DegradationController`, or
            a factory ``f(monitor, audit) -> controller`` (the form the
            CLI uses to wire predictive controllers to the runtime's
            own monitor). Controllers exposing a ``bind(runtime)`` hook
            are bound after construction.
    """

    def __init__(
        self,
        app: Application,
        props: PropertySet,
        device,
        power_model: PowerModel,
        monitor_backend: str = "generated",
        policy: ArbitrationPolicy = most_severe,
        audit_capacity: int = 0,
        monitor=None,
        peripherals=None,
        retry_policy: Optional[RetryPolicy] = None,
        watchdog_fallback: ActionType = ActionType.SKIP_TASK,
        degradation=None,
    ):
        for prop in props:
            if not app.has_task(prop.task):
                raise RuntimeConfigError(
                    f"property on unknown task {prop.task!r}"
                )
        self.app = app
        self.props = props
        self.power = power_model
        # The application is immutable after construction, so the hot
        # loop's task lookups can index a flat table instead of going
        # through the checked ``app.path()`` accessor every time.
        self._path_tasks = tuple(tuple(p.task_names) for p in app.paths)
        self.policy = policy
        self._device = device
        nvm = device.nvm
        # A prebuilt monitor (e.g. a MonitorGroup of independently
        # deployed monitors) may be supplied; by default one is
        # generated from the property set.
        self.monitor = (monitor if monitor is not None
                        else ArtemisMonitor(props, nvm, backend=monitor_backend))
        self._energy_probe = any(isinstance(p, EnergyAtLeast) for p in props)
        if audit_capacity > 0:
            from repro.core.audit import AuditLog

            self.audit: Optional["AuditLog"] = AuditLog(nvm, audit_capacity)
        else:
            self.audit = None

        self.peripherals = peripherals
        self.watchdog_fallback = watchdog_fallback
        self._retry = RetrySupervisor(nvm, retry_policy or RetryPolicy(),
                                      cell_name="rt.retry.attempts")
        self._retry_cell = nvm.cell(self._retry.cell_name)
        if degradation is None:
            self._degradation: Optional[DegradationController] = None
        elif isinstance(degradation, DegradationController):
            self._degradation = degradation
        elif callable(degradation):
            # Factory form: f(monitor, audit) -> controller. Lets
            # callers build controllers that need the runtime's own
            # monitor/audit objects (e.g. PredictiveDegradation-
            # Controller wired by the CLI).
            self._degradation = degradation(self.monitor, self.audit)
        else:
            low_j, high_j = degradation
            self._degradation = DegradationController(
                self.monitor, low_j, high_j, audit=self.audit
            )
        # Predictive controllers need the path-boundary view; any
        # controller exposing a bind() hook gets this runtime.
        if self._degradation is not None and hasattr(self._degradation, "bind"):
            self._degradation.bind(self)

        alloc = nvm.alloc
        # Scheduler bookkeeping cells are *progress cells*: their whole
        # job is to be read, advanced in place, and observed differently
        # after a reboot, so they are declared exempt from the WAR
        # oracle (see repro.verify.memmodel). rt.end_ts and rt.emitted
        # carry data, not progress — they stay under full scrutiny.
        self._initialized = alloc("rt.initialized", False, 1, progress=True)
        self._cur_path = alloc("rt.cur_path", 1, 2, progress=True)
        self._cur_idx = alloc("rt.cur_idx", 0, 2, progress=True)
        self._status = alloc("rt.status", _READY, 1, progress=True)
        self._start_checked = alloc("rt.start_checked", False, 1,
                                    progress=True)
        self._end_ts = alloc("rt.end_ts", 0.0, 8)
        self._emitted = alloc("rt.emitted", {}, 16)
        self._suspended = alloc("rt.suspended", False, 1, progress=True)
        self._resume_path = alloc("rt.resume_path", 1, 2, progress=True)
        self._finished = alloc("rt.finished", False, 1, progress=True)

        # Crash-consistent commit journal shared by every task commit,
        # and the boot-time recovery pass that resolves it, verifies
        # cell checksums, and repairs state invariants.
        self._journal = CommitJournal(nvm)
        # Volatile: a queued monitor hot-swap (fleet OTA). Deliberately
        # not in NVM — losing it to a crash only delays the swap until
        # the transfer layer re-requests it after reboot.
        self._pending_swap = None
        self.recovery = RecoveryManager(nvm, journal=self._journal,
                                        monitor=self.monitor,
                                        audit=self.audit)
        self.recovery.guard("rt.")
        self.recovery.guard("chan.")
        if self.audit is not None:
            self.recovery.guard("audit.")
        for prefix in self.monitor.nvm_prefixes():
            self.recovery.guard(prefix, repair=self.monitor.repair_cell)
        self._register_invariants()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished.get()

    @property
    def current_task_name(self) -> str:
        number = self._cur_path.get()
        if 1 <= number <= len(self._path_tasks):
            tasks = self._path_tasks[number - 1]
            idx = self._cur_idx.get()
            if 0 <= idx < len(tasks):
                return tasks[idx]
        # Out-of-range control state (corruption caught before recovery
        # repairs it): fall back to the checked accessor for its typed
        # error instead of a bare IndexError.
        path = self.app.path(number)
        return path.task_names[self._cur_idx.get()]

    @property
    def current_path_number(self) -> int:
        return self._cur_path.get()

    @property
    def journal(self) -> CommitJournal:
        """The shared commit journal (task commits and OTA activation)."""
        return self._journal

    # ------------------------------------------------------------------
    # Monitor hot-swap (fleet OTA)
    # ------------------------------------------------------------------
    def request_monitor_swap(self, swap) -> None:
        """Queue ``swap(runtime)`` to run at the next path boundary.

        §4.1.3's timestamp-consistency rules forbid replacing the
        monitor mid-path: a machine could hold the first-attempt
        timestamp of a StartTask whose EndTask the new monitor would
        never see. At a path boundary no event is in flight, no call is
        half-finalised, and the next event is a fresh StartTask — the
        only point where the active monitor set may change.
        """
        self._pending_swap = swap

    def at_path_boundary(self) -> bool:
        """True when no task or monitor call is in flight."""
        return (self._status.get() == _READY
                and self._cur_idx.get() == 0
                and not self._start_checked.get()
                and not self._suspended.get()
                and not self.monitor.in_progress)

    def attach_monitor(self, monitor, props: Optional[PropertySet] = None) -> None:
        """Replace the active monitor set (OTA hot swap).

        Re-points boot-time recovery (guards + validation) and the
        degradation controller at the replacement. Callers are
        responsible for invoking this only at a path boundary.
        """
        old_prefixes = set(self.monitor.nvm_prefixes())
        self.monitor = monitor
        if props is not None:
            self.props = props
            self._energy_probe = any(
                isinstance(p, EnergyAtLeast) for p in props
            )
        new_prefixes = set(monitor.nvm_prefixes())
        for prefix in old_prefixes - new_prefixes:
            self.recovery.unguard(prefix)
        for prefix in new_prefixes:
            self.recovery.guard(prefix, repair=monitor.repair_cell)
        self.recovery.set_monitor(monitor)
        if self._degradation is not None:
            self._degradation.monitor = monitor

    def _maybe_apply_swap(self) -> None:
        if self._pending_swap is None or not self.at_path_boundary():
            return
        # Cleared only after the swap returns: a power failure inside
        # the swap's journaled activation keeps it queued, so it rolls
        # forward at the next boundary (swaps must be idempotent).
        self._pending_swap(self)
        self._pending_swap = None

    # ------------------------------------------------------------------
    # Boot protocol (Figure 8: resetMonitor / monitorFinalize)
    # ------------------------------------------------------------------
    def _register_invariants(self) -> None:
        """Semantic invariants on runtime control state (§4.1.3).

        Checksum verification catches silent corruption; these catch
        control state that is intact but impossible — an index outside
        the application, an unknown status token, a finish timestamp
        from the future. Ordering matters: the path index is repaired
        before the task index is judged against the repaired path.
        """
        rec = self.recovery
        rec.add_invariant(
            "rt.cur_path in range",
            lambda: 1 <= self._cur_path.get() <= len(self.app.paths),
            lambda: self._enter_path(1),
        )
        rec.add_invariant(
            "rt.cur_idx in range",
            lambda: (0 <= self._cur_idx.get()
                     < len(self.app.path(self._cur_path.get()))),
            lambda: self._enter_path(self._cur_path.get()),
        )

        def _repair_status() -> None:
            self._status.set(_READY)
            self._start_checked.set(False)

        rec.add_invariant(
            "rt.status legal",
            lambda: self._status.get() in (_READY, _FINISHED),
            _repair_status,
        )
        rec.add_invariant(
            "rt.end_ts consistent",
            lambda: 0.0 <= self._end_ts.get() <= self._device.now(),
            lambda: self._end_ts.set(
                min(max(self._end_ts.get(), 0.0), self._device.now())
            ),
        )
        rec.add_invariant(
            "rt.resume_path in range",
            lambda: 1 <= self._resume_path.get() <= len(self.app.paths) + 1,
            lambda: self._resume_path.set(1),
        )
        rec.add_invariant(
            "rt.emitted is a mapping",
            lambda: isinstance(self._emitted.get(), dict),
            lambda: self._emitted.set({}),
        )
        rec.add_invariant(
            "rt.retry.attempts is a mapping",
            lambda: isinstance(self._retry_cell.get(), dict),
            lambda: self._retry_cell.set({}),
        )

    def boot(self, device) -> None:
        """Called by the device on every power-up."""
        self._device = device
        self.recovery.on_boot(device)
        if not self._initialized.get():
            self.monitor.reset()
            self._initialized.set(True)
            return
        if self.monitor.in_progress:
            # A power failure interrupted callMonitor: progress it to
            # completion and apply the actions of the finished call.
            actions = self.monitor.finalize(
                spend=self._spend_monitor,
                per_machine_cost_s=self.power.monitor_per_property_s,
                base_cost_s=self.power.monitor_call_base_s,
            )
            action = arbitrate(actions, self.policy)
            self._trace_action(action)
            if self._status.get() == _READY:
                if action.type is ActionType.NONE:
                    # The start check passed; do not re-send StartTask.
                    self._start_checked.set(True)
                else:
                    self._apply_start_action(action)
            else:
                self._advance_after_end(action)
        elif self._status.get() == _READY:
            # Died while (re-)executing the task: the next iteration is
            # a fresh attempt and must announce itself with StartTask.
            self._start_checked.set(False)

    def begin_run(self, device) -> None:
        """Start the next application iteration (loop deployments)."""
        self._device = device
        start = self._resume_path.get()
        if start > len(self.app.paths):
            start = 1
        self._cur_path.set(start)
        self._resume_path.set(1)
        self._cur_idx.set(0)
        self._status.set(_READY)
        self._start_checked.set(False)
        self._suspended.set(False)
        self._finished.set(False)

    # ------------------------------------------------------------------
    # Main loop (Figure 8, Lines 18-25)
    # ------------------------------------------------------------------
    def loop_iteration(self, device) -> None:
        """One pass: check properties, run the task, or finalise it."""
        self._device = device
        if self.finished:
            return
        if self.peripherals is not None:
            self.peripherals.bind(device, sense_s=self.power.sense_s,
                                  sense_power_w=self.power.overhead_power_w)
        if self._degradation is not None:
            self._degradation.update(device)
        self._maybe_apply_swap()
        if self._status.get() == _READY:
            if not self._start_checked.get() and not self._suspended.get():
                if not self._check_start():
                    return  # a property violation redirected control flow
                self._start_checked.set(True)
            self._run_current_task()
        else:
            self._finish_current_task()

    # ------------------------------------------------------------------
    # checkTask for StartTask (Figure 9, Lines 4-8)
    # ------------------------------------------------------------------
    def _check_start(self) -> bool:
        """Send StartTask to the monitor; True if the task may run."""
        task = self.current_task_name
        if self._energy_probe:
            data = {"energy": self._device.stored_energy()}
        else:
            data = _EMPTY_DATA
        event = MonitorEvent(
            "startTask", task, self._device.now(), data, path=self._cur_path.get()
        )
        action = self._call_monitor(event)
        if action.type is ActionType.NONE:
            return True
        self._apply_start_action(action)
        return False

    def _run_current_task(self) -> None:
        task = self.app.task(self.current_task_name)
        cost = self.power.cost_of(task.name)
        device = self._device
        device.trace.record(device.sim_clock.now(), "task_start", task=task.name,
                            path=self._cur_path.get())
        if cost.fixed_energy_j:
            device.consume_energy(cost.fixed_energy_j, "app")
        device.consume(cost.duration_s, cost.power_w, "app")
        # The attempt survived; execute the body and commit atomically.
        txn = Transaction(device.nvm, journal=self._journal)
        ctx = TaskContext(task.name, device.nvm, txn, self.app.sensors,
                          device.now, peripherals=self.peripherals)
        if task.body is not None:
            try:
                task.body(ctx)
            except PeripheralError as exc:
                # Nothing committed: the staged writes are discarded, so
                # a retried task can never half-commit.
                txn.rollback()
                self._handle_peripheral_failure(task.name, exc)
                return
        # taskFinish (Figure 9, Lines 20-27): the finish stamp and status
        # flip ride in the same journaled commit as the channel writes,
        # so the journal seal is the single linearization point — a crash
        # anywhere inside the commit either rolls the whole task back
        # (it re-executes) or forward (it is done, never run twice).
        if self._retry.attempts(task.name):
            # Clear the retry counter atomically with the task's effects.
            txn.stage(self._retry.cell_name, self._retry.cleared(task.name))
        txn.stage(self._emitted.name, dict(ctx.emitted))
        txn.stage(self._end_ts.name, device.now())
        txn.stage(self._status.name, _FINISHED)
        txn.stage(self._start_checked.name, False)
        txn.commit(spend=self._spend_commit_step,
                   on_step=self._label_commit_step)
        device.trace.record(device.sim_clock.now(), "task_end", task=task.name,
                            path=self._cur_path.get())

    def _handle_peripheral_failure(self, task_name: str, exc: PeripheralError) -> None:
        """Retry/backoff for a transient fault, watchdog past the budget.

        Attempt counters live in NVM (written durably before any backoff
        is paid), so a retry storm interleaved with brown-outs still
        reaches the watchdog instead of livelocking across reboots.
        """
        device = self._device
        attempt = self._retry.record_failure(task_name)
        policy = self._retry.policy
        if attempt >= policy.max_attempts:
            self._retry.clear(task_name)
            device.result.watchdog_trips += 1
            device.trace.record(
                device.sim_clock.now(), "watchdog_trip", task=task_name,
                attempts=attempt, sensor=exc.sensor, fault=exc.fault,
            )
            if self.audit is not None:
                self.audit.record_event(device.now(), "watchdog:livelock",
                                        exc.sensor, task=task_name,
                                        path=self._cur_path.get())
            action = self._watchdog_action(task_name)
            self._trace_action(action)
            self._apply_start_action(action)
            return
        device.result.task_retries += 1
        device.trace.record(
            device.sim_clock.now(), "task_retry", task=task_name,
            attempt=attempt, sensor=exc.sensor, fault=exc.fault,
        )
        # A fresh attempt must re-announce StartTask, so maxTries-style
        # properties see every retry.
        self._start_checked.set(False)
        backoff = policy.backoff_s(task_name, attempt)
        if backoff > 0.0:
            device.consume(backoff, self.power.overhead_power_w, "runtime")
        if policy.retry_energy_j:
            device.consume_energy(policy.retry_energy_j, "runtime")

    def _watchdog_action(self, task_name: str) -> Action:
        """Escalation when retries are exhausted: the most severe of the
        task's own ``onFail`` actions, or the configured fallback (which
        also marks the task degraded on a channel consumers can check)."""
        candidates = [
            Action(p.on_fail, p.path, source=f"watchdog:{p.kind}")
            for p in self.props.for_task(task_name)
        ]
        action = arbitrate(candidates, self.policy)
        if action.type is ActionType.NONE:
            self._mark_degraded(task_name)
            action = Action(self.watchdog_fallback, source="watchdog")
        return action

    def _mark_degraded(self, task_name: str) -> None:
        """Durably flag the task's output as degraded (single-cell write)."""
        cell_name = channel_cell_name(f"degraded.{task_name}")
        nvm = self._device.nvm
        if cell_name not in nvm:
            nvm.alloc(cell_name, initial=False, size_bytes=8)
        nvm.cell(cell_name).set(True)

    def _finish_current_task(self) -> None:
        """Send EndTask (with the persisted timestamp) and advance."""
        task = self.current_task_name
        if self._suspended.get():
            self._advance_after_end(Action(ActionType.NONE))
            return
        event = end_event(
            task, self._end_ts.get(), self._emitted.get(), path=self._cur_path.get()
        )
        action = self._call_monitor(event)
        self._advance_after_end(action)

    def _call_monitor(self, event: MonitorEvent) -> Action:
        device = self._device
        device.consume(self.power.runtime_transition_s,
                       self.power.overhead_power_w, "runtime")
        actions = self.monitor.call(
            event,
            spend=self._spend_monitor,
            per_machine_cost_s=self.power.monitor_per_property_s,
            base_cost_s=self.power.monitor_call_base_s,
        )
        action = arbitrate(actions, self.policy)
        self._trace_action(action)
        return action

    def _spend_monitor(self, seconds: float) -> None:
        self._device.consume(seconds, self.power.overhead_power_w, "monitor")

    def _spend_commit_step(self) -> None:
        """Pay for one journal step; each step is a visible crash point."""
        self._device.consume(self.power.commit_step_s,
                             self.power.overhead_power_w, "commit")

    def _label_commit_step(self, label: str) -> None:
        """Forward commit-step labels to an attached crash scheduler."""
        scheduler = getattr(self._device, "scheduler", None)
        if scheduler is not None:
            annotate = getattr(scheduler, "annotate", None)
            if annotate is not None:
                annotate(label)

    def _trace_action(self, action: Action) -> None:
        if action.type is ActionType.NONE:
            return
        self._device.trace.record(
            self._device.sim_clock.now(), "monitor_action",
            action=action.type.value, source=action.source,
            path=action.path, task=self.current_task_name,
        )
        if self.audit is not None:
            self.audit.record(self._device.now(), self.current_task_name,
                              self._cur_path.get(), action)

    # ------------------------------------------------------------------
    # Action application (getNextTask, Figure 9 Line 17)
    # ------------------------------------------------------------------
    def _apply_start_action(self, action: Action) -> None:
        kind = action.type
        if kind is ActionType.RESTART_TASK:
            # Same task, fresh attempt: the next iteration re-announces.
            self._start_checked.set(False)
        elif kind is ActionType.SKIP_TASK:
            self._trace_skip()
            self._advance_to_next_task()
        elif kind is ActionType.RESTART_PATH:
            self._restart_path(action.path or self._cur_path.get())
        elif kind is ActionType.SKIP_PATH:
            self._skip_path(action.path or self._cur_path.get())
        elif kind is ActionType.COMPLETE_PATH:
            # Finish the path unmonitored, starting with the current task.
            self._suspended.set(True)
            self._start_checked.set(True)
        else:
            raise RuntimeConfigError(f"cannot apply action {action}")

    def _advance_after_end(self, action: Action) -> None:
        kind = action.type
        if kind is ActionType.RESTART_TASK:
            self._status.set(_READY)
            self._start_checked.set(False)
        elif kind is ActionType.RESTART_PATH:
            self._restart_path(action.path or self._cur_path.get())
        elif kind is ActionType.SKIP_PATH:
            self._skip_path(action.path or self._cur_path.get())
        elif kind is ActionType.COMPLETE_PATH:
            self._suspended.set(True)
            self._advance_to_next_task()
        else:
            # NONE and SKIP_TASK both move on (the task already ran).
            self._advance_to_next_task()

    def _advance_to_next_task(self) -> None:
        path = self.app.path(self._cur_path.get())
        if self._cur_idx.get() + 1 < len(path):
            self._cur_idx.set(self._cur_idx.get() + 1)
            self._status.set(_READY)
            self._start_checked.set(False)
            return
        self._device.trace.record(
            self._device.sim_clock.now(), "path_complete", path=path.number
        )
        if self._suspended.get():
            # completePath: end the run; resume after this path next time.
            self._finish_run(resume_path=path.number + 1)
        elif path.number < len(self.app.paths):
            self._enter_path(path.number + 1)
        else:
            self._finish_run(resume_path=1)

    def _restart_path(self, number: int) -> None:
        path = self.app.path(number)
        self._device.trace.record(
            self._device.sim_clock.now(), "path_restart", path=number
        )
        self.monitor.reinit_for_path_restart(path.task_names)
        self._enter_path(number)

    def _skip_path(self, number: int) -> None:
        self._device.trace.record(
            self._device.sim_clock.now(), "path_skip", path=number
        )
        if number < len(self.app.paths):
            self._enter_path(number + 1)
        else:
            self._finish_run(resume_path=1)

    def _enter_path(self, number: int) -> None:
        self._cur_path.set(number)
        self._cur_idx.set(0)
        self._status.set(_READY)
        self._start_checked.set(False)

    def _finish_run(self, resume_path: int) -> None:
        self._resume_path.set(resume_path)
        self._suspended.set(False)
        self._finished.set(True)

    def _trace_skip(self) -> None:
        self._device.trace.record(
            self._device.sim_clock.now(), "task_skip",
            task=self.current_task_name, path=self._cur_path.get(),
        )
