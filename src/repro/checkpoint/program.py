"""Sequential program model for checkpoint-based execution.

A :class:`CheckpointProgram` is an ordered list of :class:`Block`\\ s.
Checkpoints sit *between* blocks: ``checkpoint_after`` marks the blocks
followed by a snapshot. A power failure rolls execution back to the
most recent snapshot; everything after it re-executes.

:class:`TimedRegion` adds TICS-style time semantics: the data produced
inside the region expires ``expiry_s`` seconds after the region began.
When a reboot resumes into an expired region, the runtime runs the
programmer-specified response — re-executing from the region's start —
mirroring TICS's source-annotated expiration handlers (Table 3:
"Runtime executes programmer-specified code upon expiration").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import RuntimeConfigError

BlockBody = Callable[[Dict], None]


@dataclass(frozen=True)
class Block:
    """One straight-line region of computation.

    Attributes:
        name: label (unique within a program).
        duration_s / power_w: execution cost of one attempt.
        body: optional function mutating the program's volatile state
            dict; applied only when the block's cost was fully paid.
    """

    name: str
    duration_s: float
    power_w: float = 0.35e-3
    body: Optional[BlockBody] = None


@dataclass(frozen=True)
class TimedRegion:
    """TICS-style expiration over a contiguous block range.

    ``first``/``last`` name the blocks delimiting the region (inclusive).
    If execution resumes inside the region more than ``expiry_s``
    seconds after the region was entered, the region restarts from
    ``first``.
    """

    first: str
    last: str
    expiry_s: float


class CheckpointProgram:
    """Blocks + checkpoint placement + timed regions."""

    def __init__(
        self,
        name: str,
        blocks: Sequence[Block],
        checkpoint_after: Sequence[str] = (),
        timed_regions: Sequence[TimedRegion] = (),
    ):
        names = [b.name for b in blocks]
        if len(set(names)) != len(names):
            raise RuntimeConfigError(f"program {name!r}: duplicate block names")
        if not blocks:
            raise RuntimeConfigError(f"program {name!r}: no blocks")
        self.name = name
        self.blocks: List[Block] = list(blocks)
        self._index = {b.name: i for i, b in enumerate(blocks)}
        for cp in checkpoint_after:
            if cp not in self._index:
                raise RuntimeConfigError(
                    f"program {name!r}: checkpoint after unknown block {cp!r}")
        self.checkpoint_after = set(checkpoint_after)
        for region in timed_regions:
            if region.first not in self._index or region.last not in self._index:
                raise RuntimeConfigError(
                    f"program {name!r}: timed region references unknown block")
            if self._index[region.first] > self._index[region.last]:
                raise RuntimeConfigError(
                    f"program {name!r}: timed region {region.first}->"
                    f"{region.last} is reversed")
            if region.expiry_s <= 0:
                raise RuntimeConfigError(
                    f"program {name!r}: non-positive expiry")
        self.timed_regions: List[TimedRegion] = list(timed_regions)

    def index_of(self, block_name: str) -> int:
        return self._index[block_name]

    def regions_containing(self, block_index: int) -> List[TimedRegion]:
        out = []
        for region in self.timed_regions:
            if self._index[region.first] <= block_index <= self._index[region.last]:
                out.append(region)
        return out

    def resume_point_after_checkpoint(self, checkpoint_block: Optional[str]) -> int:
        """Index of the first block to (re-)execute when resuming from
        the checkpoint taken after ``checkpoint_block`` (None = start)."""
        if checkpoint_block is None:
            return 0
        return self._index[checkpoint_block] + 1

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        marks = [
            b.name + ("|CP" if b.name in self.checkpoint_after else "")
            for b in self.blocks
        ]
        return f"CheckpointProgram({self.name!r}: {' -> '.join(marks)})"
