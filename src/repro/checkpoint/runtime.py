"""Checkpoint-based intermittent runtime (Mementos/TICS-flavoured).

Execution model:

* volatile state is a plain dict, rebuilt from the last checkpoint on
  every boot;
* a checkpoint copies the volatile dict into NVM, paying a time/energy
  cost proportional to its size; snapshots are **double-buffered** —
  two slots alternate, and a slot becomes current only when its commit
  marker lands, so a power failure mid-checkpoint leaves the previous
  snapshot intact (the classic Mementos/Hibernus consistency rule);
* TICS semantics: each checkpoint records the entry timestamps of any
  open timed regions; on reboot, if the time since a region was entered
  exceeds its expiry, execution is rolled back to the region's start
  instead of the last checkpoint.

Interface-compatible with :class:`~repro.sim.Device` runs, so the same
harness drives task-based and checkpoint-based systems.
"""

from __future__ import annotations

import copy
from typing import Any, Dict

from repro.checkpoint.program import CheckpointProgram
from repro.core.recovery import RecoveryManager
from repro.core.retry import RetryPolicy, RetrySupervisor
from repro.errors import PeripheralError, RuntimeConfigError


class CheckpointRuntime:
    """Executes a :class:`CheckpointProgram` on a simulated device."""

    #: Checkpoint cost: fixed marshalling plus per-entry copy time.
    CHECKPOINT_BASE_S = 0.8e-3
    CHECKPOINT_PER_ENTRY_S = 0.1e-3
    OVERHEAD_POWER_W = 0.35e-3

    def __init__(self, program: CheckpointProgram, device, peripherals=None,
                 retry_policy=None):
        self.program = program
        self._device = device
        self.peripherals = peripherals
        nvm = device.nvm
        prefix = f"ckpt.{program.name}"
        self._retry = RetrySupervisor(nvm, retry_policy or RetryPolicy(),
                                      cell_name=f"{prefix}.retry.attempts")
        self._retry_cell = nvm.cell(self._retry.cell_name)
        # Double-buffered snapshot slots + the current-slot marker.
        self._slots = [
            nvm.alloc(f"{prefix}.slot0", None, 64),
            nvm.alloc(f"{prefix}.slot1", None, 64),
        ]
        self._current_slot = nvm.alloc(f"{prefix}.current", -1, 1,
                                       progress=True)
        self._finished = nvm.alloc(f"{prefix}.finished", False, 1,
                                   progress=True)
        # Volatile execution state (lost on power failure).
        self._pc: int = 0
        self._state: Dict = {}
        self._region_entries: Dict[str, float] = {}
        self._restored = False
        # Checkpoint systems have no redo journal — the double-buffered
        # slot flip is their commit point — but they share the boot-time
        # corruption scan and the slot-marker invariant.
        self.recovery = RecoveryManager(nvm)
        self.recovery.guard(f"{prefix}.")
        self.recovery.add_invariant(
            "ckpt.current slot legal",
            lambda: (self._current_slot.get() in (-1, 0, 1)
                     and self._slot_valid(self._current_slot.get())),
            self._repair_slot,
        )
        self.recovery.add_invariant(
            "ckpt.retry.attempts is a mapping",
            lambda: isinstance(self._retry_cell.get(), dict),
            lambda: self._retry_cell.set({}),
        )

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished.get()

    def boot(self, device) -> None:
        """Run the recovery scan, then rebuild volatile state."""
        self._device = device
        self.recovery.on_boot(device)
        self._restore()

    def begin_run(self, device) -> None:
        self._device = device
        self._current_slot.set(-1)
        self._finished.set(False)
        self._pc = 0
        self._state = {}
        self._region_entries = {}
        self._restored = True

    # ------------------------------------------------------------------
    def _slot_valid(self, slot: Any) -> bool:
        """True if ``slot`` is -1 or names a structurally sound snapshot."""
        if slot == -1:
            return True
        if slot not in (0, 1):
            return False
        snapshot = self._slots[slot].get()
        return (
            isinstance(snapshot, dict)
            and isinstance(snapshot.get("state"), dict)
            and isinstance(snapshot.get("regions"), dict)
            and isinstance(snapshot.get("pc"), int)
            and not isinstance(snapshot.get("pc"), bool)
            and 0 <= snapshot["pc"] <= len(self.program)
        )

    def _repair_slot(self) -> None:
        """Fall back to the other buffer if it is sound, else restart.

        Losing at most one checkpoint interval is the strongest
        guarantee double buffering can give once a snapshot is damaged.
        """
        for candidate in (0, 1):
            if candidate != self._current_slot.get() and self._slot_valid(candidate):
                self._current_slot.set(candidate)
                return
        self._current_slot.set(-1)

    def _restore(self) -> None:
        """Rebuild volatile state from the last committed snapshot and
        apply TICS expiration rules."""
        slot = self._current_slot.get()
        if slot < 0:
            self._pc = 0
            self._state = {}
            self._region_entries = {}
        else:
            # Deep-copied both ways so block bodies mutating nested
            # values can never reach into the persisted snapshot.
            snapshot = self._slots[slot].get()
            self._pc = snapshot["pc"]
            self._state = copy.deepcopy(snapshot["state"])
            self._region_entries = dict(snapshot["regions"])
            self._apply_expirations()
        self._restored = True

    def _apply_expirations(self) -> None:
        now = self._device.now()
        for region in self.program.regions_containing(self._pc):
            key = region.first
            entered = self._region_entries.get(key)
            if entered is None:
                continue
            if now - entered > region.expiry_s:
                # Expired: re-enter the region from its first block.
                self._device.trace.record(
                    self._device.sim_clock.now(), "monitor_action",
                    action="regionRestart", source=f"tics:{key}",
                    task=self.program.blocks[self._pc].name)
                self._pc = self.program.index_of(region.first)
                self._region_entries.pop(key, None)

    # ------------------------------------------------------------------
    def loop_iteration(self, device) -> None:
        self._device = device
        if self.finished:
            return
        if not self._restored:
            raise RuntimeConfigError("loop_iteration before boot()")
        if self.peripherals is not None:
            self.peripherals.bind(device, sense_power_w=self.OVERHEAD_POWER_W)
        block = self.program.blocks[self._pc]

        # Entering a timed region stamps its entry time (volatile until
        # the next checkpoint persists it, exactly like TICS's timekeeper
        # writes).
        for region in self.program.regions_containing(self._pc):
            if self.program.index_of(region.first) == self._pc:
                self._region_entries[region.first] = device.now()

        device.trace.record(device.sim_clock.now(), "task_start",
                            task=block.name, path=1)
        device.consume(block.duration_s, block.power_w, "app")
        if block.body is not None:
            # Volatile state is snapshotted so a peripheral fault cannot
            # leave a half-mutated dict behind; there is no transaction
            # to roll back in a checkpoint system.
            snapshot = copy.deepcopy(self._state)
            try:
                block.body(self._state)
            except PeripheralError as exc:
                self._state = snapshot
                self._handle_peripheral_failure(block, exc)
                return
        if self._retry.attempts(block.name):
            self._retry.clear(block.name)
        device.trace.record(device.sim_clock.now(), "task_end",
                            task=block.name, path=1)

        if block.name in self.program.checkpoint_after:
            self._checkpoint()
        self._pc += 1
        if self._pc >= len(self.program):
            self._finished.set(True)

    def _handle_peripheral_failure(self, block, exc: PeripheralError) -> None:
        """Retry a peripheral-failed block; skip it when retries exhaust.

        The skipped block's result is flagged in volatile state
        (``degraded.<block>``), persisted by the next checkpoint.
        """
        device = self._device
        policy = self._retry.policy
        attempt = self._retry.record_failure(block.name)
        if attempt >= policy.max_attempts:
            self._retry.clear(block.name)
            device.result.watchdog_trips += 1
            device.trace.record(
                device.sim_clock.now(), "watchdog_trip", task=block.name,
                attempts=attempt, sensor=exc.sensor, fault=exc.fault,
            )
            self._state[f"degraded.{block.name}"] = True
            device.trace.record(device.sim_clock.now(), "task_skip",
                                task=block.name, path=1, source="watchdog")
            if block.name in self.program.checkpoint_after:
                self._checkpoint()
            self._pc += 1
            if self._pc >= len(self.program):
                self._finished.set(True)
            return
        device.result.task_retries += 1
        device.trace.record(
            device.sim_clock.now(), "task_retry", task=block.name,
            attempt=attempt, sensor=exc.sensor, fault=exc.fault,
        )
        backoff = policy.backoff_s(block.name, attempt)
        if backoff > 0:
            device.consume(backoff, self.OVERHEAD_POWER_W, "runtime")
        if policy.retry_energy_j:
            device.consume_energy(policy.retry_energy_j, "runtime")

    def _checkpoint(self) -> None:
        device = self._device
        entries = len(self._state) + len(self._region_entries) + 1
        device.consume(
            self.CHECKPOINT_BASE_S + entries * self.CHECKPOINT_PER_ENTRY_S,
            self.OVERHEAD_POWER_W, "runtime")
        # Write into the inactive slot, then flip the marker: a failure
        # before the flip leaves the old snapshot current.
        target = (self._current_slot.get() + 1) % 2
        self._slots[target].set({
            "pc": self._pc + 1,
            "state": copy.deepcopy(self._state),
            "regions": dict(self._region_entries),
        })
        self._current_slot.set(target)
        device.trace.record(device.sim_clock.now(), "checkpoint",
                            block=self.program.blocks[self._pc].name)
