"""Checkpoint-based intermittent computing substrate.

The paper's background (§2) divides intermittent software into
*task-based* systems (Chain, InK, Alpaca — what ARTEMIS targets) and
*checkpointing* systems (Mementos, HarvOS, TICS) that snapshot volatile
state at program points and resume from the last snapshot after a power
failure. Table 3 compares ARTEMIS against TICS, a checkpointing system
with time annotations; this package provides that comparison substrate:

* :mod:`~repro.checkpoint.program` — sequential programs as blocks
  separated by checkpoint markers, with optional TICS-style timed
  regions whose data expires;
* :mod:`~repro.checkpoint.runtime` — a Mementos/TICS-flavoured runtime
  with double-buffered checkpoints, resume-from-snapshot semantics, and
  expiration checks on reboot.
"""

from repro.checkpoint.program import Block, CheckpointProgram, TimedRegion
from repro.checkpoint.runtime import CheckpointRuntime

__all__ = ["Block", "TimedRegion", "CheckpointProgram", "CheckpointRuntime"]
