"""A Mayfly-style specification frontend over the ARTEMIS pipeline.

§7 of the paper ("Support for Other Languages"): "By leveraging
model-to-model transformations, we can map the constructs and semantics
of diverse specification languages to the common intermediate language."

Mayfly (SenSys '17) expresses timing as *edge annotations* on the task
graph — data flowing along an edge expires, or a consumer needs a count
of items. This module parses that edge-annotation style::

    edge accel -> send { expires: 5min; path: 2; }
    edge bodyTemp -> calcAvg { collect: 10; }

and maps it onto the ARTEMIS property model: ``expires`` becomes an
:class:`~repro.core.properties.MITD` and ``collect`` a
:class:`~repro.core.properties.Collect`, both with Mayfly's fixed
response — restart the task graph (``restartPath``) — since Mayfly has
no configurable actions. From there the standard ARTEMIS generator and
monitors apply: a second language, one intermediate language.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.core.actions import ActionType
from repro.core.properties import Collect, MITD, PropertySet
from repro.errors import SpecSyntaxError, SpecValidationError
from repro.spec.units import DURATION_RE, parse_duration
from repro.taskgraph.app import Application

_EDGE_RE = re.compile(
    r"edge\s+(?P<src>[A-Za-z_]\w*)\s*->\s*(?P<dst>[A-Za-z_]\w*)\s*"
    r"\{(?P<body>[^}]*)\}",
    re.DOTALL,
)
_CLAUSE_RE = re.compile(r"(?P<key>[A-Za-z_]\w*)\s*:\s*(?P<value>[^;]+);")


@dataclass(frozen=True)
class EdgeRule:
    """One parsed edge annotation."""

    src: str
    dst: str
    expires_s: Optional[float] = None
    collect: Optional[int] = None
    path: Optional[int] = None


def parse_mayfly(source: str) -> List[EdgeRule]:
    """Parse edge-annotation source into rules."""
    rules: List[EdgeRule] = []
    consumed = 0
    for match in _EDGE_RE.finditer(source):
        consumed += len(match.group(0))
        expires = collect = path = None
        for clause in _CLAUSE_RE.finditer(match.group("body")):
            key = clause.group("key")
            value = clause.group("value").strip()
            if key == "expires":
                if not DURATION_RE.match(value):
                    raise SpecSyntaxError(f"expires: invalid duration {value!r}")
                expires = parse_duration(value)
            elif key == "collect":
                if not value.isdigit() or int(value) < 1:
                    raise SpecSyntaxError(f"collect: invalid count {value!r}")
                collect = int(value)
            elif key == "path":
                if not value.isdigit():
                    raise SpecSyntaxError(f"path: invalid number {value!r}")
                path = int(value)
            else:
                raise SpecSyntaxError(f"unknown Mayfly edge clause {key!r}")
        if expires is None and collect is None:
            raise SpecSyntaxError(
                f"edge {match.group('src')} -> {match.group('dst')}: "
                "needs at least one of expires/collect")
        rules.append(EdgeRule(match.group("src"), match.group("dst"),
                              expires, collect, path))
    leftover = _EDGE_RE.sub("", source)
    leftover = re.sub(r"//[^\n]*", "", leftover).strip()
    if leftover:
        raise SpecSyntaxError(
            f"unrecognised Mayfly specification text: {leftover[:40]!r}")
    return rules


def to_properties(rules: List[EdgeRule], app: Application) -> PropertySet:
    """Model-to-model mapping: Mayfly edges → ARTEMIS properties."""
    props = PropertySet()
    for rule in rules:
        for name in (rule.src, rule.dst):
            if not app.has_task(name):
                raise SpecValidationError(f"edge references unknown task {name!r}")
        path = rule.path
        if path is None and len(app.paths_containing(rule.dst)) > 1:
            raise SpecValidationError(
                f"edge {rule.src} -> {rule.dst}: consumer is on multiple "
                "paths; annotate the edge with 'path: N'")
        if rule.expires_s is not None:
            props.add(MITD(
                task=rule.dst, on_fail=ActionType.RESTART_PATH, path=path,
                dep_task=rule.src, limit_s=rule.expires_s))
        if rule.collect is not None:
            props.add(Collect(
                task=rule.dst, on_fail=ActionType.RESTART_PATH, path=path,
                dep_task=rule.src, count=rule.collect))
    return props


def load_mayfly_properties(source: str, app: Application) -> PropertySet:
    """Parse + map in one step (mirrors ``spec.load_properties``)."""
    return to_properties(parse_mayfly(source), app)
