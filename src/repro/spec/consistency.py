"""Static consistency checking of property specifications.

§7 of the paper ("Property Consistency Checking") flags this as future
work: "the simultaneous use of time-related properties such as
periodicity, maximum duration, and inter-task delays may lead to
inconsistent specification... there is no sequence of task executions
that satisfies all constraints."

:func:`check` analyses a validated property set against the application
structure (and, optionally, the power model and capacitor) and reports
issues before anything runs:

=========  ==================================================================
code       meaning
=========  ==================================================================
DEP-ORDER  a dependency property (collect/MITD) whose dpTask never executes
           before the guarded task — the check can never be satisfied
           (collect) or never armed (MITD)
TIME-MIN   an MITD window smaller than the unavoidable execution time
           between the dependency's completion and the task's start
DUR-MIN    a maxDuration below the task's own modelled execution time
PERIOD     a period shorter than one full application cycle, so every
           occurrence after the first violates
ENERGY     a task whose single-attempt energy exceeds the capacitor's
           usable energy per charge cycle, with no maxTries guard — the
           paper's non-termination hazard (§2.1, property 2)
LIVELOCK   a restart-flavoured onFail on a property that can never become
           satisfied, with no maxAttempt/maxTries escape
ACTION     contradictory actions on one task (completePath together with
           skipPath/restartPath on the same trigger kind)
=========  ==================================================================

ERRORs are specifications no execution can satisfy; WARNINGs are
suspicious but conceivably intended.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.actions import ActionType
from repro.core.properties import (
    Collect,
    DpData,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
    PropertySet,
)
from repro.energy.capacitor import Capacitor
from repro.energy.power import PowerModel
from repro.taskgraph.app import Application


class Severity(enum.Enum):
    """Issue severity: ERRORs are unsatisfiable, WARNINGs suspicious."""
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value.upper()}] {self.code}: {self.message}"


@dataclass
class ConsistencyReport:
    issues: List[Issue]

    @property
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    @property
    def consistent(self) -> bool:
        return not self.errors

    def __str__(self) -> str:
        if not self.issues:
            return "specification consistent: no issues"
        return "\n".join(str(i) for i in self.issues)


# ---------------------------------------------------------------------------
# Structural orderings
# ---------------------------------------------------------------------------


def _positions(app: Application, task: str) -> List[tuple]:
    """(path_number, index) pairs where a task appears."""
    out = []
    for path in app.paths:
        if task in path:
            out.append((path.number, path.index_of(task)))
    return out


def _dep_precedes(app: Application, dep: str, task: str,
                  path: Optional[int]) -> bool:
    """Does ``dep`` complete before ``task`` starts in execution order?

    Paths run in number order, so ``dep`` precedes ``task`` if it sits
    earlier on the same path or anywhere on an earlier path. When the
    property pins a path, the task occurrence on that path is the one
    that matters.
    """
    task_positions = _positions(app, task)
    if path is not None:
        task_positions = [(p, i) for p, i in task_positions if p == path]
    dep_positions = _positions(app, dep)
    for tp, ti in task_positions:
        for dp, di in dep_positions:
            if dp < tp or (dp == tp and di < ti):
                return True
    return False


def _exec_time_between(app: Application, power: PowerModel, dep: str,
                       task: str, path_number: Optional[int]) -> Optional[float]:
    """Minimum execution time from ``dep``'s completion to ``task``'s
    start when both sit on one path, under continuous power."""
    for path in app.paths:
        if path_number is not None and path.number != path_number:
            continue
        if dep in path and task in path:
            di, ti = path.index_of(dep), path.index_of(task)
            if di < ti:
                between = path.task_names[di + 1:ti]
                return sum(power.cost_of(name).duration_s for name in between)
    return None


def _cycle_time(app: Application, power: PowerModel) -> float:
    """Duration of one application run under continuous power (lower
    bound: each task once)."""
    return sum(
        power.cost_of(name).duration_s
        for path in app.paths
        for name in path.task_names
    )


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def check(
    props: PropertySet,
    app: Application,
    power: Optional[PowerModel] = None,
    capacitor: Optional[Capacitor] = None,
) -> ConsistencyReport:
    """Run every static consistency check that the inputs allow.

    ``power`` enables the timing checks (TIME-MIN/DUR-MIN/PERIOD);
    ``capacitor`` additionally enables ENERGY.
    """
    issues: List[Issue] = []
    issues.extend(_check_dep_order(props, app))
    issues.extend(_check_action_conflicts(props))
    issues.extend(_check_livelock(props, app))
    if power is not None:
        issues.extend(_check_time_min(props, app, power))
        issues.extend(_check_duration_min(props, power))
        issues.extend(_check_period(props, app, power))
        if capacitor is not None:
            issues.extend(_check_energy(props, app, power, capacitor))
    return ConsistencyReport(issues)


def _check_dep_order(props: PropertySet, app: Application) -> List[Issue]:
    issues = []
    for prop in props:
        if isinstance(prop, Collect):
            if not _dep_precedes(app, prop.dep_task, prop.task, prop.path):
                issues.append(Issue(
                    Severity.ERROR, "DEP-ORDER",
                    f"collect on {prop.task!r} needs {prop.count} items from "
                    f"{prop.dep_task!r}, but {prop.dep_task!r} never executes "
                    f"before {prop.task!r} — unsatisfiable"))
        elif isinstance(prop, MITD):
            if not _dep_precedes(app, prop.dep_task, prop.task, prop.path):
                issues.append(Issue(
                    Severity.WARNING, "DEP-ORDER",
                    f"MITD on {prop.task!r} depends on {prop.dep_task!r}, "
                    f"which never completes before {prop.task!r} starts — "
                    f"the property is never armed and never checked"))
    return issues


def _check_action_conflicts(props: PropertySet) -> List[Issue]:
    issues = []
    for task in props.tasks():
        task_props = props.for_task(task)
        completers = [p for p in task_props
                      if p.on_fail is ActionType.COMPLETE_PATH]
        path_changers = [p for p in task_props if p.on_fail in
                         (ActionType.SKIP_PATH, ActionType.RESTART_PATH)]
        if completers and path_changers:
            issues.append(Issue(
                Severity.WARNING, "ACTION",
                f"task {task!r} mixes completePath ({completers[0].kind}) "
                f"with {path_changers[0].on_fail.value} "
                f"({path_changers[0].kind}); if both fail on one event the "
                f"arbiter always picks completePath"))
    return issues


def _check_livelock(props: PropertySet, app: Application) -> List[Issue]:
    issues = []
    restart_kinds = (ActionType.RESTART_PATH, ActionType.RESTART_TASK)
    guarded_tasks = {p.task for p in props if isinstance(p, MaxTries)}
    for prop in props:
        if not isinstance(prop, Collect) or prop.on_fail not in restart_kinds:
            continue
        # restartTask re-runs only the guarded task: the dependency never
        # re-executes, so an unsatisfied count can never grow.
        if prop.on_fail is ActionType.RESTART_TASK and prop.task not in guarded_tasks:
            issues.append(Issue(
                Severity.ERROR, "LIVELOCK",
                f"collect on {prop.task!r} retries with restartTask, which "
                f"never re-runs {prop.dep_task!r}; without a maxTries guard "
                f"this cannot terminate"))
    for prop in props:
        # dpData restarting its own producer: the restarted task emits
        # the same (deterministically out-of-range) value forever, and
        # maxTries cannot bound it — its counter resets on completion.
        if isinstance(prop, DpData) and prop.on_fail in restart_kinds:
            issues.append(Issue(
                Severity.WARNING, "LIVELOCK",
                f"dpData on {prop.task!r} retries with "
                f"{prop.on_fail.value}; if the re-computed value stays out "
                f"of range this never terminates (maxTries resets on task "
                f"completion and cannot bound it)"))
    for prop in props:
        if isinstance(prop, MITD) and prop.max_attempt is None \
                and prop.on_fail is ActionType.RESTART_PATH:
            issues.append(Issue(
                Severity.WARNING, "LIVELOCK",
                f"MITD on {prop.task!r} restarts its path with no maxAttempt "
                f"escape; charging delays beyond {prop.limit_s:.0f}s cause "
                f"non-termination (the paper's Mayfly failure mode)"))
    return issues


def _check_time_min(props: PropertySet, app: Application,
                    power: PowerModel) -> List[Issue]:
    issues = []
    for prop in props:
        if not isinstance(prop, MITD):
            continue
        floor = _exec_time_between(app, power, prop.dep_task, prop.task, prop.path)
        if floor is not None and floor > prop.limit_s:
            issues.append(Issue(
                Severity.ERROR, "TIME-MIN",
                f"MITD on {prop.task!r} allows {prop.limit_s:.3f}s after "
                f"{prop.dep_task!r}, but the tasks between them alone take "
                f"{floor:.3f}s — violated on every execution"))
    return issues


def _check_duration_min(props: PropertySet, power: PowerModel) -> List[Issue]:
    issues = []
    for prop in props:
        if not isinstance(prop, MaxDuration):
            continue
        if prop.task not in power:
            continue
        duration = power.cost_of(prop.task).duration_s
        if duration > prop.limit_s:
            issues.append(Issue(
                Severity.ERROR, "DUR-MIN",
                f"maxDuration on {prop.task!r} is {prop.limit_s:.3f}s but the "
                f"task's own execution takes {duration:.3f}s — violated on "
                f"every execution"))
    return issues


def _check_period(props: PropertySet, app: Application,
                  power: PowerModel) -> List[Issue]:
    issues = []
    cycle = _cycle_time(app, power)
    for prop in props:
        if not isinstance(prop, Period):
            continue
        bound = prop.period_s + prop.jitter_s
        if bound < cycle:
            issues.append(Issue(
                Severity.WARNING, "PERIOD",
                f"period on {prop.task!r} allows {bound:.3f}s between starts, "
                f"but one application cycle takes at least {cycle:.3f}s even "
                f"on continuous power — every cycle after the first violates"))
    return issues


def _check_energy(props: PropertySet, app: Application, power: PowerModel,
                  capacitor: Capacitor) -> List[Issue]:
    issues = []
    budget = capacitor.usable_energy_per_cycle
    guarded = {p.task for p in props if isinstance(p, MaxTries)}
    for task in app.task_names:
        if task not in power:
            continue
        energy = power.cost_of(task).energy_j
        if energy > budget:
            severity = Severity.WARNING if task in guarded else Severity.ERROR
            guard = ("guarded by maxTries" if task in guarded
                     else "with NO maxTries guard: guaranteed non-termination")
            issues.append(Issue(
                severity, "ENERGY",
                f"task {task!r} needs {energy * 1e3:.2f} mJ per attempt but "
                f"one charge cycle stores only {budget * 1e3:.2f} mJ usable — "
                f"it can never complete ({guard})"))
    return issues
