"""Duration literals of the specification language.

Figure 5 uses ``5min`` and ``100ms``; the intermediate machines work in
seconds. Supported units: ``ms``, ``s``/``sec``, ``min``, ``h``/``hour``.
"""

from __future__ import annotations

import re

from repro.errors import SpecSyntaxError

_UNIT_SECONDS = {
    "ms": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "min": 60.0,
    "h": 3600.0,
    "hour": 3600.0,
}

DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)(ms|sec|s|min|hour|h)$")


def parse_duration(text: str, line: int = 0, column: int = 0) -> float:
    """Convert a duration literal like ``5min`` to seconds."""
    m = DURATION_RE.match(text)
    if m is None:
        raise SpecSyntaxError(f"invalid duration literal {text!r}", line, column)
    value, unit = m.groups()
    if unit == "ms":
        # Divide rather than multiply by 1e-3: n/1000.0 is the exact
        # binary float the rest of the system produces for n ms, while
        # n*1e-3 differs in the last ulp and breaks round-tripping.
        return float(value) / 1000.0
    return float(value) * _UNIT_SECONDS[unit]


def format_duration(seconds: float) -> str:
    """Render seconds as the most compact spec-language literal."""
    if seconds >= 3600 and seconds % 3600 == 0:
        return f"{int(seconds // 3600)}h"
    if seconds >= 60 and seconds % 60 == 0:
        return f"{int(seconds // 60)}min"
    if seconds >= 1:
        value = seconds if seconds % 1 else int(seconds)
        return f"{value}s"
    ms = seconds * 1000
    return f"{ms if ms % 1 else int(ms)}ms"
