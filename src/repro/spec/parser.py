"""Recursive-descent parser for the property specification language.

Grammar (terminals in caps)::

    spec     := block*
    block    := IDENT ':'? '{' property* '}'
    property := IDENT ':' value clause* ';'
    clause   := IDENT ':' clause_value
    value    := NUMBER | DURATION | IDENT
    clause_value := NUMBER | DURATION | IDENT | range
    range    := '[' signed ',' signed ']'

The task block's colon is optional — Figure 5 writes both
``micSense: { ... }`` and ``calcAvg { ... }``. The parser is
deliberately key-agnostic: unknown property kinds parse fine and are
rejected by the validator, which keeps the grammar stable when new
properties are added (the §4.2.2 extension path).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SpecSyntaxError
from repro.spec.ast import Clause, PropertyDecl, SpecModel, TaskBlock
from repro.spec.lexer import Token, tokenize
from repro.spec.units import parse_duration


class _Parser:
    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._i = 0

    def _peek(self) -> Token:
        return self._tokens[self._i]

    def _next(self) -> Token:
        tok = self._tokens[self._i]
        self._i += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            wanted = text if text is not None else kind
            raise SpecSyntaxError(
                f"expected {wanted!r}, got {str(tok)!r}", tok.line, tok.column
            )
        return tok

    def _accept_punct(self, text: str) -> bool:
        tok = self._peek()
        if tok.kind == "punct" and tok.text == text:
            self._next()
            return True
        return False

    # ------------------------------------------------------------------
    def parse(self) -> SpecModel:
        model = SpecModel()
        while self._peek().kind != "eof":
            model.blocks.append(self._parse_block())
        return model

    def _parse_block(self) -> TaskBlock:
        name_tok = self._expect("ident")
        self._accept_punct(":")  # optional, per Figure 5
        self._expect("punct", "{")
        properties: List[PropertyDecl] = []
        while not self._accept_punct("}"):
            properties.append(self._parse_property())
        return TaskBlock(name_tok.text, tuple(properties), name_tok.line)

    def _parse_property(self) -> PropertyDecl:
        key_tok = self._expect("ident")
        self._expect("punct", ":")
        if key_tok.text == "temporal":
            value = self._parse_formula()
        else:
            value = self._parse_value()
        clauses: List[Clause] = []
        while not self._accept_punct(";"):
            clauses.append(self._parse_clause())
        return PropertyDecl(key_tok.text, value, tuple(clauses), key_tok.line)

    def _parse_clause(self) -> Clause:
        key_tok = self._expect("ident")
        self._expect("punct", ":")
        tok = self._peek()
        if tok.kind == "punct" and tok.text == "[":
            value = self._parse_range()
        else:
            value = self._parse_value()
        return Clause(key_tok.text, value, key_tok.line)

    def _parse_formula(self):
        # Imported lazily: the tl package's own modules import the spec
        # lexer, so a top-level import here would be circular.
        from repro.tl.parse import parse_formula

        formula, self._i = parse_formula(self._tokens, self._i)
        return formula

    def _parse_value(self):
        tok = self._next()
        if tok.kind == "duration":
            return parse_duration(tok.text, tok.line, tok.column)
        if tok.kind == "number":
            return float(tok.text) if "." in tok.text else int(tok.text)
        if tok.kind == "ident":
            return tok.text
        raise SpecSyntaxError(
            f"expected a value, got {str(tok)!r}", tok.line, tok.column
        )

    def _parse_range(self) -> Tuple[float, float]:
        self._expect("punct", "[")
        low = self._parse_signed()
        self._expect("punct", ",")
        high = self._parse_signed()
        self._expect("punct", "]")
        return (low, high)

    def _parse_signed(self) -> float:
        sign = 1.0
        if self._peek().kind == "minus":
            self._next()
            sign = -1.0
        tok = self._expect("number")
        return sign * float(tok.text)


def parse_spec(source: str) -> SpecModel:
    """Parse specification source text into a :class:`SpecModel`."""
    return _Parser(source).parse()
