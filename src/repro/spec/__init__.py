"""The ARTEMIS property specification language.

A declarative, task-scoped DSL (paper §3.2, Figure 5, Table 1)::

    send: {
      MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3
            onFail: skipPath Path: 2;
      maxDuration: 100ms onFail: skipTask;
      collect: 1 dpTask: accel onFail: restartPath Path: 2;
    }

Pipeline: :func:`parse_spec` (text → AST) then
:func:`~repro.spec.validator.validate` (AST + application → semantic
:class:`~repro.core.properties.PropertySet`). :func:`load_properties`
does both.
"""

from repro.spec.consistency import check as check_consistency
from repro.spec.mayfly_frontend import load_mayfly_properties
from repro.spec.parser import parse_spec
from repro.spec.printer import print_spec
from repro.spec.validator import load_properties, validate

__all__ = [
    "parse_spec",
    "validate",
    "load_properties",
    "print_spec",
    "check_consistency",
    "load_mayfly_properties",
]
