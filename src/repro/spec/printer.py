"""Pretty-printer for property sets: the inverse of the parser.

Emits specification-language text from a semantic
:class:`~repro.core.properties.PropertySet`, grouped by task exactly as
Figure 5 formats it. ``load_properties(print_spec(props), app)``
round-trips — the property test in ``tests/test_spec_printer.py`` pins
this — which makes programmatically built property sets serialisable
and enables spec-to-spec tooling (e.g. migrating a Mayfly-frontend spec
into native syntax).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.properties import (
    Collect,
    DpData,
    EnergyAtLeast,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
    Property,
    PropertySet,
    Temporal,
)
from repro.errors import SpecError
from repro.spec.units import format_duration


def _num(value: float) -> str:
    """Render a number without a trailing .0 for integral values."""
    return str(int(value)) if float(value).is_integer() else str(value)


def _suffix(prop: Property) -> str:
    # Priority 0 is the default and stays implicit; a nonzero priority
    # on a non-sheddable kind still prints (and the validator rejects it
    # on reload) — surfacing the error beats silently dropping the field.
    text = f" priority: {prop.priority}" if prop.priority else ""
    if prop.path is not None:
        text += f" Path: {prop.path}"
    return text


def _print_property(prop: Property) -> str:
    if isinstance(prop, MaxTries):
        return (f"maxTries: {prop.limit} onFail: {prop.on_fail.value}"
                f"{_suffix(prop)};")
    if isinstance(prop, MaxDuration):
        return (f"maxDuration: {format_duration(prop.limit_s)} "
                f"onFail: {prop.on_fail.value}{_suffix(prop)};")
    if isinstance(prop, MITD):
        text = (f"MITD: {format_duration(prop.limit_s)} "
                f"dpTask: {prop.dep_task} onFail: {prop.on_fail.value}")
        if prop.max_attempt is not None:
            text += (f" maxAttempt: {prop.max_attempt} "
                     f"onFail: {prop.max_attempt_action.value}")
        return text + _suffix(prop) + ";"
    if isinstance(prop, Collect):
        # reset_on_fail is a programmatic-only variant (Figure 7's
        # literal semantics) with no spec-language syntax; refuse to
        # print it rather than silently dropping the flag.
        if prop.reset_on_fail:
            raise SpecError(
                f"collect on {prop.task!r} uses reset_on_fail, which the "
                "specification language cannot express")
        return (f"collect: {prop.count} dpTask: {prop.dep_task} "
                f"onFail: {prop.on_fail.value}{_suffix(prop)};")
    if isinstance(prop, DpData):
        return (f"dpData: {prop.var} Range: [{_num(prop.low)}, "
                f"{_num(prop.high)}] onFail: {prop.on_fail.value}"
                f"{_suffix(prop)};")
    if isinstance(prop, Period):
        text = f"period: {format_duration(prop.period_s)}"
        if prop.jitter_s:
            text += f" jitter: {format_duration(prop.jitter_s)}"
        if prop.max_attempt is not None:
            text += (f" maxAttempt: {prop.max_attempt} "
                     f"onFail: {prop.max_attempt_action.value}")
        text += f" onFail: {prop.on_fail.value}"
        return text + _suffix(prop) + ";"
    if isinstance(prop, EnergyAtLeast):
        return (f"energyAtLeast: {prop.min_energy_j} "
                f"onFail: {prop.on_fail.value}{_suffix(prop)};")
    if isinstance(prop, Temporal):
        # Imported lazily: repro.tl.parse imports the spec lexer, which
        # pulls this module in through the package __init__.
        from repro.tl.parse import format_formula

        text = f"temporal: {format_formula(prop.formula)}"
        if prop.at != "start":
            text += f" at: {prop.at}"
        if prop.label is not None:
            text += f" label: {prop.label}"
        text += f" onFail: {prop.on_fail.value}"
        return text + _suffix(prop) + ";"
    raise SpecError(f"cannot print property type {type(prop).__name__}")


def print_spec(props: PropertySet) -> str:
    """Render a property set in the specification language."""
    by_task: Dict[str, List[Property]] = {}
    for prop in props:
        by_task.setdefault(prop.task, []).append(prop)
    blocks = []
    for task, task_props in by_task.items():
        lines = [f"{task}: {{"]
        for prop in task_props:
            lines.append(f"    {_print_property(prop)}")
        lines.append("}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"
