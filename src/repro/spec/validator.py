"""Semantic validation: AST + application → property set.

Checks performed (each mirrors a constraint the paper states or
implies):

* property kinds and clause keys are known, values well-typed;
* every task block names a task of the application; ``dpTask`` targets
  exist;
* ``onFail`` is present exactly where required, and an ``onFail``
  immediately following ``maxAttempt`` binds to it (Figure 5 line 6);
* ``Path: N`` names an existing path containing the guarded task, and
  is *required* for path-scoped properties on merge-point tasks (tasks
  appearing on several paths — the paper's path-merging rule for
  ``send``);
* ``dpData`` variables must be declared as monitored on the task
  (Figure 4 declares ``avgTemp`` at task declaration);
* ``Range`` bounds are ordered.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.core.actions import ActionType
from repro.core.properties import (
    Collect,
    DpData,
    EnergyAtLeast,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
    Property,
    PropertySet,
    Temporal,
)
from repro.errors import SpecValidationError
from repro.spec.ast import Clause, PropertyDecl, SpecModel
from repro.spec.parser import parse_spec
from repro.taskgraph.app import Application
from repro.tl.ast import (
    DataCmp,
    Ended,
    Historically,
    Once,
    Started,
    walk_formula,
)

_ACTION_NAMES = {a.value for a in ActionType if a is not ActionType.NONE}

#: Actions whose effect is scoped to a path (need Path on merge tasks).
_PATH_SCOPED_KINDS = ("MITD", "collect", "period", "maxTries", "temporal")


def _err(message: str, line: int) -> SpecValidationError:
    return SpecValidationError(f"line {line}: {message}")


class _ClauseReader:
    """Consumes clauses in source order, enforcing binding rules."""

    def __init__(self, decl: PropertyDecl, task: str):
        self._clauses = list(decl.clauses)
        self._decl = decl
        self.task = task

    def take(self, key: str) -> Optional[Clause]:
        for i, clause in enumerate(self._clauses):
            if clause.key == key:
                return self._clauses.pop(i)
        return None

    def take_action(self, key: str = "onFail") -> Optional[ActionType]:
        clause = self.take(key)
        if clause is None:
            return None
        if not isinstance(clause.value, str) or clause.value not in _ACTION_NAMES:
            raise _err(
                f"{self._decl.kind} on {self.task!r}: {key} must be one of "
                f"{sorted(_ACTION_NAMES)}, got {clause.value!r}",
                clause.line,
            )
        return ActionType.from_name(clause.value)

    def take_max_attempt(self) -> Tuple[Optional[int], Optional[ActionType]]:
        """``maxAttempt: N onFail: ACT`` — the onFail *after* maxAttempt
        in source order is the max-attempt action."""
        for i, clause in enumerate(self._clauses):
            if clause.key != "maxAttempt":
                continue
            if not isinstance(clause.value, int) or clause.value < 1:
                raise _err(
                    f"maxAttempt must be a positive integer, got {clause.value!r}",
                    clause.line,
                )
            attempts = clause.value
            action: Optional[ActionType] = None
            if i + 1 < len(self._clauses) and self._clauses[i + 1].key == "onFail":
                action_clause = self._clauses[i + 1]
                if (
                    not isinstance(action_clause.value, str)
                    or action_clause.value not in _ACTION_NAMES
                ):
                    raise _err(
                        f"maxAttempt onFail must be an action, got "
                        f"{action_clause.value!r}",
                        action_clause.line,
                    )
                action = ActionType.from_name(action_clause.value)
                del self._clauses[i + 1]
            del self._clauses[i]
            if action is None:
                raise _err(
                    f"{self._decl.kind} on {self.task!r}: maxAttempt requires a "
                    "following onFail action",
                    clause.line,
                )
            return attempts, action
        return None, None

    def require_action(self) -> ActionType:
        action = self.take_action()
        if action is None:
            raise _err(
                f"{self._decl.kind} on {self.task!r}: missing onFail action",
                self._decl.line,
            )
        return action

    def finish(self) -> None:
        if self._clauses:
            extra = self._clauses[0]
            raise _err(
                f"{self._decl.kind} on {self.task!r}: unexpected clause "
                f"{extra.key!r}",
                extra.line,
            )


def _resolve_path(
    reader: _ClauseReader, decl: PropertyDecl, task: str, app: Application
) -> Optional[int]:
    clause = reader.take("Path")
    if clause is not None:
        if not isinstance(clause.value, int) or clause.value < 1:
            raise _err(f"Path must be a positive integer, got {clause.value!r}", clause.line)
        number = clause.value
        if number > len(app.paths):
            raise _err(f"Path {number} does not exist", clause.line)
        if task not in app.path(number):
            raise _err(
                f"task {task!r} is not on path {number}; cannot scope "
                f"{decl.kind} to it",
                clause.line,
            )
        return number
    # Merge-point rule: a path-scoped property on a task shared by
    # several paths is ambiguous without an explicit Path.
    if decl.kind in _PATH_SCOPED_KINDS and len(app.paths_containing(task)) > 1:
        raise _err(
            f"{decl.kind} on {task!r}: task appears on multiple paths "
            "(path merging) — an explicit Path clause is required",
            decl.line,
        )
    return None


def _int_value(decl: PropertyDecl, task: str) -> int:
    if not isinstance(decl.value, int):
        raise _err(
            f"{decl.kind} on {task!r}: expected an integer, got {decl.value!r}",
            decl.line,
        )
    return decl.value


def _duration_value(decl: PropertyDecl, task: str) -> float:
    if not isinstance(decl.value, (int, float)):
        raise _err(
            f"{decl.kind} on {task!r}: expected a duration, got {decl.value!r}",
            decl.line,
        )
    return float(decl.value)


def _dep_task(reader: _ClauseReader, decl: PropertyDecl, app: Application) -> str:
    clause = reader.take("dpTask")
    if clause is None:
        raise _err(f"{decl.kind} on {reader.task!r}: missing dpTask", decl.line)
    if not isinstance(clause.value, str) or not app.has_task(clause.value):
        raise _err(f"dpTask names unknown task {clause.value!r}", clause.line)
    return clause.value


# ---------------------------------------------------------------------------
# Per-kind builders (extensibility point: new property = new entry here,
# a new generator template, and optionally a runtime primitive — §4.2.2).
# ---------------------------------------------------------------------------


def _build_max_tries(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    path = _resolve_path(reader, decl, task, app)
    action = reader.require_action()
    reader.finish()
    return MaxTries(task=task, on_fail=action, path=path, limit=_int_value(decl, task))


def _build_max_duration(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    path = _resolve_path(reader, decl, task, app)
    action = reader.require_action()
    reader.finish()
    return MaxDuration(
        task=task, on_fail=action, path=path, limit_s=_duration_value(decl, task)
    )


def _build_mitd(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    dep = _dep_task(reader, decl, app)
    # Bind the maxAttempt/onFail pair first so the remaining onFail is
    # unambiguously the property's own action, whatever the source order.
    max_attempt, max_attempt_action = reader.take_max_attempt()
    action = reader.require_action()
    path = _resolve_path(reader, decl, task, app)
    reader.finish()
    return MITD(
        task=task,
        on_fail=action,
        path=path,
        dep_task=dep,
        limit_s=_duration_value(decl, task),
        max_attempt=max_attempt,
        max_attempt_action=max_attempt_action,
    )


def _build_collect(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    dep = _dep_task(reader, decl, app)
    action = reader.require_action()
    path = _resolve_path(reader, decl, task, app)
    reader.finish()
    return Collect(
        task=task, on_fail=action, path=path, dep_task=dep, count=_int_value(decl, task)
    )


def _build_dp_data(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    if not isinstance(decl.value, str):
        raise _err(
            f"dpData on {task!r}: expected a variable name, got {decl.value!r}",
            decl.line,
        )
    var = decl.value
    if var not in app.task(task).monitored_vars:
        raise _err(
            f"dpData on {task!r}: variable {var!r} is not declared as "
            f"monitored on the task (declare it in the Task definition)",
            decl.line,
        )
    range_clause = reader.take("Range")
    if range_clause is None or not isinstance(range_clause.value, tuple):
        raise _err(f"dpData on {task!r}: missing Range: [lo, hi]", decl.line)
    low, high = range_clause.value
    if low > high:
        raise _err(f"dpData on {task!r}: empty range [{low}, {high}]", range_clause.line)
    path = _resolve_path(reader, decl, task, app)
    action = reader.require_action()
    reader.finish()
    return DpData(task=task, on_fail=action, path=path, var=var, low=low, high=high)


def _build_period(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    jitter_clause = reader.take("jitter")
    jitter = 0.0
    if jitter_clause is not None:
        if not isinstance(jitter_clause.value, (int, float)):
            raise _err("jitter must be a duration", jitter_clause.line)
        jitter = float(jitter_clause.value)
    max_attempt, max_attempt_action = reader.take_max_attempt()
    action = reader.require_action()
    path = _resolve_path(reader, decl, task, app)
    reader.finish()
    return Period(
        task=task,
        on_fail=action,
        path=path,
        period_s=_duration_value(decl, task),
        jitter_s=jitter,
        max_attempt=max_attempt,
        max_attempt_action=max_attempt_action,
    )


def _build_energy(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    path = _resolve_path(reader, decl, task, app)
    action = reader.require_action()
    reader.finish()
    if not isinstance(decl.value, (int, float)) or decl.value <= 0:
        raise _err(
            f"energyAtLeast on {task!r}: expected a positive energy (joules)",
            decl.line,
        )
    return EnergyAtLeast(task=task, on_fail=action, path=path, min_energy_j=float(decl.value))


def _data_keys(app: Application) -> set:
    """Keys that can appear as dependent data on events: every task's
    monitored variables, plus the runtime's energy probe."""
    keys = {"energy"}
    for name in app.task_names:
        keys.update(app.task(name).monitored_vars)
    return keys


def _check_formula(formula, task: str, app: Application) -> None:
    """Semantic checks on a temporal formula, each with a sourced
    diagnostic (the parse-time checks live in :mod:`repro.tl.parse`)."""
    for node in walk_formula(formula):
        if isinstance(node, (Once, Historically)) and node.hi is not None \
                and node.lo:
            op = "once" if isinstance(node, Once) else "historically"
            raise SpecValidationError(
                f"line {node.line}: temporal on {task!r}: {op}[a,b] with "
                f"a > 0 is not monitorable with constant state",
                node.line, node.column, width=len(op),
                hint="a nonzero lower bound needs every event timestamp "
                     "in the window; use a zero lower bound "
                     f"({op}[0,{node.hi:g}s]) which needs only the most "
                     "recent witness")
        if isinstance(node, (Started, Ended)) and not app.has_task(node.task):
            atom = "started" if isinstance(node, Started) else "ended"
            raise SpecValidationError(
                f"line {node.line}: temporal on {task!r}: {atom}(...) "
                f"names unknown task {node.task!r}",
                node.line, node.column, width=len(atom),
                hint=f"known tasks: {', '.join(app.task_names)}")
        if isinstance(node, DataCmp) and node.key not in _data_keys(app):
            known = sorted(_data_keys(app))
            raise SpecValidationError(
                f"line {node.line}: temporal on {task!r}: data(...) names "
                f"unknown key {node.key!r}",
                node.line, node.column, width=len("data"),
                hint="data keys are variables declared as monitored on a "
                     "task (plus the runtime's 'energy' probe); known: "
                     f"{', '.join(known) or '(none)'}")


def _build_temporal(decl: PropertyDecl, task: str, app: Application) -> Property:
    reader = _ClauseReader(decl, task)
    at = "start"
    at_clause = reader.take("at")
    if at_clause is not None:
        if at_clause.value not in ("start", "end", "always"):
            raise _err(
                f"temporal on {task!r}: at must be start, end or always, "
                f"got {at_clause.value!r}",
                at_clause.line,
            )
        at = at_clause.value
    label = None
    label_clause = reader.take("label")
    if label_clause is not None:
        if not isinstance(label_clause.value, str) \
                or not label_clause.value.isidentifier():
            raise _err(
                f"temporal on {task!r}: label must be an identifier, got "
                f"{label_clause.value!r}",
                label_clause.line,
            )
        label = label_clause.value
    action = reader.require_action()
    path = _resolve_path(reader, decl, task, app)
    reader.finish()
    _check_formula(decl.value, task, app)
    return Temporal(
        task=task, on_fail=action, path=path,
        formula=decl.value, at=at, label=label,
    )


_BUILDERS: Dict[str, Callable[[PropertyDecl, str, Application], Property]] = {
    "maxTries": _build_max_tries,
    "maxDuration": _build_max_duration,
    "MITD": _build_mitd,
    "collect": _build_collect,
    "dpData": _build_dp_data,
    "period": _build_period,
    "energyAtLeast": _build_energy,
    "temporal": _build_temporal,
}


def _take_priority(decl: PropertyDecl, task: str) -> Tuple[PropertyDecl, Optional[int]]:
    """Strip a ``priority: N`` clause before the kind builder sees it.

    Priority is a cross-cutting modifier (degradation order), so it is
    handled generically here rather than in every builder. Returns the
    declaration without the clause plus the parsed value (or None).
    """
    for clause in decl.clauses:
        if clause.key != "priority":
            continue
        if not isinstance(clause.value, int) or clause.value < 0:
            raise _err(
                f"{decl.kind} on {task!r}: priority must be a non-negative "
                f"integer, got {clause.value!r}",
                clause.line,
            )
        rest = tuple(c for c in decl.clauses if c is not clause)
        return dataclasses.replace(decl, clauses=rest), clause.value
    return decl, None


def validate(model: SpecModel, app: Application) -> PropertySet:
    """Bind a parsed specification against an application."""
    props = PropertySet()
    for block in model.blocks:
        if not app.has_task(block.task):
            raise _err(f"unknown task {block.task!r}", block.line)
        for decl in block.properties:
            builder = _BUILDERS.get(decl.kind)
            if builder is None:
                raise _err(
                    f"unknown property {decl.kind!r} (supported: "
                    f"{sorted(_BUILDERS)})",
                    decl.line,
                )
            stripped, priority = _take_priority(decl, block.task)
            prop = builder(stripped, block.task, app)
            if priority is not None:
                if not type(prop).SUPPORTS_PRIORITY:
                    raise _err(
                        f"{decl.kind} on {block.task!r}: priority is not "
                        f"supported ({decl.kind} monitors track progress over "
                        "a gapless event stream and can never be shed)",
                        decl.line,
                    )
                prop = dataclasses.replace(prop, priority=priority)
            props.add(prop)
    return props


def load_properties(source: str, app: Application) -> PropertySet:
    """Parse + validate in one step."""
    return validate(parse_spec(source), app)
