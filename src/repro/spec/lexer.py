"""Tokenizer for the property specification language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import SpecSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<newline>\n)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<duration>\d+(?:\.\d+)?(?:ms|sec|min|hour|h|s)\b)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<arrow>->)
  | (?P<cmp><=|>=|==|!=|<|>)
  | (?P<punct>[{}()\[\]:;,])
  | (?P<minus>-)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # duration | number | ident | arrow | cmp | punct | minus | eof
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return self.text or "<eof>"


def tokenize(source: str) -> List[Token]:
    """Tokenize a specification; raises on unknown characters."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise SpecSyntaxError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        kind = m.lastgroup
        if kind == "newline":
            line += 1
            line_start = m.end()
        elif kind not in ("ws", "comment"):
            tokens.append(Token(kind, m.group(), line, m.start() - line_start + 1))
        pos = m.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
