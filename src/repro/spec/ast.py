"""Abstract syntax of the specification language (pre-validation).

The parser produces this task-block / property / clause structure; the
validator binds it against an application into the semantic property
model of :mod:`repro.core.properties`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.tl.ast import Formula

#: Value of a property or clause: an int count, a float (seconds, after
#: duration normalisation), an identifier, a numeric range, or — for
#: ``temporal`` properties — a past-time MTL formula tree.
Value = Union[int, float, str, Tuple[float, float], Formula]


@dataclass(frozen=True)
class Clause:
    """One ``key: value`` modifier after a property value, in source
    order (order matters: an ``onFail`` right after ``maxAttempt`` is the
    max-attempt action)."""

    key: str
    value: Value
    line: int = 0


@dataclass(frozen=True)
class PropertyDecl:
    """One property statement, e.g. ``MITD: 5min dpTask: accel ...;``."""

    kind: str
    value: Value
    clauses: Tuple[Clause, ...] = ()
    line: int = 0

    def clauses_named(self, key: str) -> List[Clause]:
        return [c for c in self.clauses if c.key == key]


@dataclass(frozen=True)
class TaskBlock:
    """``taskName: { ...properties... }``."""

    task: str
    properties: Tuple[PropertyDecl, ...] = ()
    line: int = 0


@dataclass
class SpecModel:
    """A whole specification file."""

    blocks: List[TaskBlock] = field(default_factory=list)

    def block_for(self, task: str) -> Optional[TaskBlock]:
        for block in self.blocks:
            if block.task == task:
                return block
        return None

    @property
    def property_count(self) -> int:
        return sum(len(b.properties) for b in self.blocks)
