"""Couples a harvester to a capacitor: the device's energy world.

The central quantity for the paper's evaluation is the *charging time*
(Figure 12's x-axis): how long the device stays dark after a brown-out
before the capacitor reaches the boot threshold again.
:meth:`EnergyEnvironment.for_charging_delay` builds an environment whose
charging time is exactly a requested value, which is how the benchmark
harness sweeps 1–10 minutes.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import EnergyError, SimulationError
from repro.energy.capacitor import Capacitor
from repro.energy.harvester import ConstantHarvester, Harvester


class EnergyEnvironment:
    """Harvester + capacitor, advanced along simulation time.

    Args:
        harvester: ambient power source. ``None`` means continuous power
            (the wall-powered setup of Figures 14/15): the capacitor never
            depletes and charging time is zero.
        capacitor: energy store; required unless continuously powered.
    """

    def __init__(
        self,
        harvester: Optional[Harvester] = None,
        capacitor: Optional[Capacitor] = None,
    ):
        if harvester is not None and capacitor is None:
            raise EnergyError("a harvested environment needs a capacitor")
        self.harvester = harvester
        self.capacitor = capacitor
        self.total_harvested_j = 0.0
        self.total_consumed_j = 0.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def continuous(cls) -> "EnergyEnvironment":
        """Continuously powered setup — energy is never the constraint."""
        return cls(harvester=None, capacitor=None)

    @classmethod
    def for_charging_delay(
        cls,
        delay_s: float,
        capacitor: Optional[Capacitor] = None,
    ) -> "EnergyEnvironment":
        """Environment whose post-brownout charging time is ``delay_s``.

        Solves for the constant harvest power that refills the capacitor
        from ``v_off`` to ``v_on`` in exactly ``delay_s`` seconds.
        """
        if delay_s <= 0:
            raise EnergyError("charging delay must be positive")
        cap = capacitor if capacitor is not None else default_capacitor()
        power = cap.usable_energy_per_cycle / delay_s
        return cls(harvester=ConstantHarvester(power), capacitor=cap)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_continuous(self) -> bool:
        return self.harvester is None

    def usable_energy(self) -> float:
        """Energy available before brown-out; infinite when continuous."""
        if self.is_continuous:
            return math.inf
        return self.capacitor.usable_energy

    # ------------------------------------------------------------------
    # State evolution
    # ------------------------------------------------------------------
    def consume(self, energy_j: float) -> bool:
        """Draw ``energy_j`` from storage; ``True`` if it fit above cutoff."""
        if energy_j < 0:
            raise EnergyError("cannot consume negative energy")
        self.total_consumed_j += energy_j
        if self.is_continuous:
            return True
        return self.capacitor.discharge(energy_j)

    def harvest(self, t0: float, t1: float) -> float:
        """Accumulate harvested energy over ``[t0, t1]`` into the capacitor."""
        if self.is_continuous:
            return 0.0
        gained = self.harvester.energy_between(t0, t1)
        stored = self.capacitor.charge(gained)
        self.total_harvested_j += stored
        return stored

    def charging_time_from(self, t: float, max_wait_s: float = 365 * 86400.0) -> float:
        """Seconds from ``t`` until the capacitor reaches the boot threshold.

        For non-constant harvesters this steps forward in one-second
        increments (charging delays are minutes-scale, so the error is
        negligible). Raises :class:`~repro.errors.SimulationError` if the
        ambient source cannot refill the capacitor within ``max_wait_s``.
        """
        if self.is_continuous:
            return 0.0
        needed = self.capacitor.energy_to_boot()
        if needed <= 0:
            return 0.0
        if isinstance(self.harvester, ConstantHarvester):
            if self.harvester.power_w <= 0:
                raise SimulationError("harvester delivers no power; device will never boot")
            return needed / self.harvester.power_w
        elapsed = 0.0
        step = 1.0
        acquired = 0.0
        while acquired < needed:
            if elapsed >= max_wait_s:
                raise SimulationError(
                    f"capacitor not recharged within {max_wait_s} s; ambient source too weak"
                )
            acquired += self.harvester.energy_between(t + elapsed, t + elapsed + step)
            elapsed += step
        return elapsed

    def recharge_to_boot(self, t: float) -> float:
        """Advance the capacitor to the boot threshold; return the wait (s)."""
        if self.is_continuous:
            return 0.0
        wait = self.charging_time_from(t)
        # Credit exactly the boot-threshold energy: integrating the
        # harvester again would double-count rounding from the search.
        needed = self.capacitor.energy_to_boot()
        self.capacitor.charge(needed)
        self.total_harvested_j += needed
        return wait


def default_capacitor() -> Capacitor:
    """Reference storage for the benchmark: usable cycle energy ~15 mJ.

    Sized so that the benchmark's most expensive task (``accel``, 12 mJ)
    completes from a full charge, but the tail of a path (``classify`` +
    ``send``) does not fit in the remainder — which is exactly the
    failure pattern §5.2 of the paper describes for its testbed.
    """
    # E_usable = C/2 * (v_on^2 - v_off^2) = C/2 * (3.0^2 - 1.8^2) = 2.88 C
    # C = 5.2 mF  =>  ~15 mJ usable per charge cycle.
    return Capacitor(capacitance=5.2e-3, v_max=3.3, v_on=3.0, v_off=1.8, v_initial=3.0)
