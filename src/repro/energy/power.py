"""Per-task time and energy cost model.

The simulator charges each task a duration (seconds of MCU time) and an
average power draw while it runs. Constants are calibrated to the paper's
platform — an MSP430FR5994 at 1 MHz (about 0.35 mW active at 3 V) with
mW-scale peripherals (accelerometer, microphone, BLE radio) — so that a
full run of the health-monitoring benchmark lands on the seconds scale of
Figure 14 while runtime/monitor overheads land on the milliseconds scale
of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.errors import EnergyError

#: MSP430FR5994 @ 1 MHz, 3 V: ~118 uA/MHz active => ~0.35 mW.
MCU_ACTIVE_POWER_W = 0.35e-3

#: Device sleep draw while waiting out a charging delay is treated as
#: zero: below the brown-out threshold the regulator is off.
MCU_OFF_POWER_W = 0.0


@dataclass(frozen=True)
class TaskCost:
    """Cost of one complete execution attempt of a task.

    Attributes:
        duration_s: MCU-busy time for the attempt.
        power_w: average power drawn while the task runs (MCU +
            peripherals).
        fixed_energy_j: extra one-shot energy (e.g. a radio wake burst)
            charged at the start of the attempt.
    """

    duration_s: float
    power_w: float = MCU_ACTIVE_POWER_W
    fixed_energy_j: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s < 0 or self.power_w < 0 or self.fixed_energy_j < 0:
            raise EnergyError("task cost fields must be non-negative")
        # The instance is frozen, so the derived energy can be computed
        # once here instead of on every access in the simulator's per-
        # attempt accounting loop.
        object.__setattr__(
            self, "_energy_j",
            self.duration_s * self.power_w + self.fixed_energy_j,
        )

    @property
    def energy_j(self) -> float:
        """Total energy of one complete attempt."""
        return self._energy_j


class PowerModel:
    """Maps task names to :class:`TaskCost` plus system overhead costs.

    Overhead knobs (all seconds of MCU time at ``overhead_power_w``):

    * ``runtime_transition_s`` — cost of one pass through the runtime's
      task-transition machinery (``checkTask``/``taskFinish`` sans
      monitor).
    * ``monitor_call_base_s`` — fixed cost of one ``callMonitor``
      invocation (event marshalling, continuation bookkeeping).
    * ``monitor_per_property_s`` — added cost per property evaluated for
      the event's task.
    * ``commit_step_s`` — cost of one step of the journaled two-phase
      commit (one journal append, the seal, or one apply). FRAM writes
      at MCU speed are effectively free next to task work, so the
      default is 0.0; raise it to surface commit steps on the timeline
      or to stress energy budgets with commit-heavy workloads. Each step
      remains an individually visible crash point either way.
    * ``sense_s`` — cost of one peripheral access through the sensor
      fault subsystem (bus transaction + conversion wait), charged to
      the ``sense`` category. Only paid when a runtime is built with a
      :class:`~repro.peripherals.PeripheralSet`; raw sensor lambdas
      stay free as before.

    The baseline Mayfly runtime folds its (cheaper, hardcoded) checks into
    its transition cost and has no separate monitor call.
    """

    def __init__(
        self,
        task_costs: Mapping[str, TaskCost],
        runtime_transition_s: float = 0.45e-3,
        monitor_call_base_s: float = 0.30e-3,
        monitor_per_property_s: float = 0.18e-3,
        overhead_power_w: float = MCU_ACTIVE_POWER_W,
        default_cost: Optional[TaskCost] = None,
        commit_step_s: float = 0.0,
        sense_s: float = 0.12e-3,
    ):
        self._costs: Dict[str, TaskCost] = dict(task_costs)
        self.runtime_transition_s = runtime_transition_s
        self.monitor_call_base_s = monitor_call_base_s
        self.monitor_per_property_s = monitor_per_property_s
        self.overhead_power_w = overhead_power_w
        self.default_cost = default_cost
        self.commit_step_s = commit_step_s
        self.sense_s = sense_s
        # Resolution memos for the two per-event lookups. The cost table
        # and overhead knobs are fixed after construction (``with_costs``
        # builds a fresh model), so both caches are sound.
        self._cost_memo: Dict[str, TaskCost] = {}
        self._call_cost_memo: Dict[int, float] = {}

    def cost_of(self, task_name: str) -> TaskCost:
        cost = self._cost_memo.get(task_name)
        if cost is not None:
            return cost
        cost = self._costs.get(task_name, self.default_cost)
        if cost is None:
            raise EnergyError(f"no cost defined for task {task_name!r}")
        self._cost_memo[task_name] = cost
        return cost

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._costs or self.default_cost is not None

    def task_names(self) -> Iterable[str]:
        return self._costs.keys()

    def monitor_call_cost_s(self, n_properties: int) -> float:
        """MCU time of one monitor invocation checking ``n_properties``."""
        cached = self._call_cost_memo.get(n_properties)
        if cached is not None:
            return cached
        if n_properties < 0:
            raise EnergyError("property count must be non-negative")
        cost = self.monitor_call_base_s + n_properties * self.monitor_per_property_s
        self._call_cost_memo[n_properties] = cost
        return cost

    def with_costs(self, **updates: TaskCost) -> "PowerModel":
        """Copy of this model with some task costs replaced."""
        merged = dict(self._costs)
        merged.update(updates)
        return PowerModel(
            merged,
            runtime_transition_s=self.runtime_transition_s,
            monitor_call_base_s=self.monitor_call_base_s,
            monitor_per_property_s=self.monitor_per_property_s,
            overhead_power_w=self.overhead_power_w,
            default_cost=self.default_cost,
            commit_step_s=self.commit_step_s,
            sense_s=self.sense_s,
        )


#: Reference costs for the wearable health-monitoring benchmark (§5.1).
#: Peripheral-heavy tasks (accel, micSense, send) draw mW-scale power;
#: accel is the single most expensive task, as measured in the paper.
MSP430FR5994_POWER = PowerModel(
    {
        "bodyTemp": TaskCost(0.30, 1.2e-3),
        "calcAvg": TaskCost(0.20, MCU_ACTIVE_POWER_W),
        "heartRate": TaskCost(1.50, 0.8e-3),
        "accel": TaskCost(2.00, 6.0e-3),
        "filter": TaskCost(0.80, MCU_ACTIVE_POWER_W),
        "classify": TaskCost(1.20, MCU_ACTIVE_POWER_W),
        "micSense": TaskCost(1.00, 4.0e-3),
        "send": TaskCost(1.50, 5.0e-3),
    }
)
