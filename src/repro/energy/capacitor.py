"""Capacitor energy-storage model.

Energy stored in a capacitor is ``E = C * V^2 / 2``. Batteryless devices
operate between two voltage thresholds:

* ``v_on`` — the boot threshold: after a brown-out the device stays off
  until the capacitor charges back up to this voltage.
* ``v_off`` — the brown-out (cutoff) threshold: below this voltage the
  regulator drops out and the MCU dies instantly.

The *usable* energy per charge cycle is therefore
``C/2 * (v_on^2 - v_off^2)``; tasks whose cost exceeds it can never
complete, which is precisely the non-termination hazard the paper's
``maxTries`` property guards against.
"""

from __future__ import annotations

import math

from repro.errors import EnergyError


class Capacitor:
    """Capacitor with boot/brown-out thresholds.

    Args:
        capacitance: farads.
        v_max: maximum (fully charged) voltage.
        v_on: boot threshold voltage.
        v_off: brown-out threshold voltage.
        v_initial: starting voltage (defaults to ``v_max``).
    """

    def __init__(
        self,
        capacitance: float,
        v_max: float = 3.3,
        v_on: float = 3.0,
        v_off: float = 1.8,
        v_initial: float | None = None,
    ):
        if capacitance <= 0:
            raise EnergyError("capacitance must be positive")
        if not (0 < v_off < v_on <= v_max):
            raise EnergyError(
                f"require 0 < v_off < v_on <= v_max, got "
                f"v_off={v_off}, v_on={v_on}, v_max={v_max}"
            )
        self.capacitance = capacitance
        self.v_max = v_max
        self.v_on = v_on
        self.v_off = v_off
        self._energy = self._energy_at(v_initial if v_initial is not None else v_max)

    # ------------------------------------------------------------------
    # Voltage/energy conversions
    # ------------------------------------------------------------------
    def _energy_at(self, voltage: float) -> float:
        return 0.5 * self.capacitance * voltage * voltage

    @property
    def voltage(self) -> float:
        return math.sqrt(2.0 * self._energy / self.capacitance)

    @property
    def energy(self) -> float:
        """Total stored energy in joules (down to 0 V)."""
        return self._energy

    @property
    def usable_energy(self) -> float:
        """Energy available before brown-out, from the *current* voltage."""
        return max(0.0, self._energy - self._energy_at(self.v_off))

    @property
    def usable_energy_per_cycle(self) -> float:
        """Energy one full charge cycle provides (v_on down to v_off)."""
        return self._energy_at(self.v_on) - self._energy_at(self.v_off)

    @property
    def max_energy(self) -> float:
        return self._energy_at(self.v_max)

    @property
    def can_boot(self) -> bool:
        return self.voltage >= self.v_on

    @property
    def is_dead(self) -> bool:
        return self.voltage < self.v_off

    # ------------------------------------------------------------------
    # Charge / discharge
    # ------------------------------------------------------------------
    def charge(self, energy_j: float) -> float:
        """Add harvested energy, clamped at ``v_max``; returns stored delta."""
        if energy_j < 0:
            raise EnergyError("cannot charge by negative energy")
        before = self._energy
        self._energy = min(self.max_energy, self._energy + energy_j)
        return self._energy - before

    def discharge(self, energy_j: float) -> bool:
        """Draw ``energy_j``; returns ``False`` (and drains to the cutoff)
        if the draw crosses the brown-out threshold."""
        if energy_j < 0:
            raise EnergyError("cannot discharge by negative energy")
        floor = self._energy_at(self.v_off)
        if self._energy - energy_j < floor:
            self._energy = floor
            return False
        self._energy -= energy_j
        return True

    def energy_to_boot(self) -> float:
        """Joules still needed to reach the boot threshold."""
        return max(0.0, self._energy_at(self.v_on) - self._energy)

    def __repr__(self) -> str:
        return (
            f"Capacitor(C={self.capacitance}, V={self.voltage:.3f}, "
            f"usable={self.usable_energy * 1e3:.3f}mJ)"
        )
