"""Energy-harvesting substrate.

Models the paper's testbed: a Powercast RF transmitter/receiver pair
charging a capacitor that powers an MSP430FR5994. The pieces:

* :class:`~repro.energy.capacitor.Capacitor` — energy storage with
  turn-on and brown-out voltage thresholds.
* :mod:`~repro.energy.harvester` — ambient power sources (constant, RF
  path-loss, on/off outage patterns, recorded traces, solar-like).
* :class:`~repro.energy.power.PowerModel` — per-task time and energy
  costs calibrated to MSP430FR5994-class numbers.
* :class:`~repro.energy.environment.EnergyEnvironment` — couples a
  harvester to a capacitor and answers "how long until we can boot
  again?", the quantity the paper calls *charging time*.
"""

from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment
from repro.energy.harvester import (
    ConstantHarvester,
    Harvester,
    PeriodicOutageHarvester,
    RFHarvester,
    SolarHarvester,
    TraceHarvester,
)
from repro.energy.power import TaskCost, PowerModel, MSP430FR5994_POWER

__all__ = [
    "Capacitor",
    "EnergyEnvironment",
    "Harvester",
    "ConstantHarvester",
    "RFHarvester",
    "PeriodicOutageHarvester",
    "SolarHarvester",
    "TraceHarvester",
    "TaskCost",
    "PowerModel",
    "MSP430FR5994_POWER",
]
