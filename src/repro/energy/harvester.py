"""Ambient energy sources.

A harvester answers one question: how much power (watts) is being
delivered to the capacitor at simulation time ``t``. Concrete models:

* :class:`ConstantHarvester` — steady power (the continuously-powered
  setup of the paper's Figures 14/15 is the limit of a large constant).
* :class:`RFHarvester` — Powercast-style RF source with log-distance
  path loss and receiver efficiency.
* :class:`PeriodicOutageHarvester` — power alternating between full and
  zero; used to dial in exact *charging delays* (Fig. 12's 1–10 min
  x-axis).
* :class:`TraceHarvester` — piecewise-constant replay of a recorded or
  synthetic trace.
* :class:`SolarHarvester` — sinusoidal diurnal profile for the examples.
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.errors import EnergyError


class Harvester(ABC):
    """Power source interface: instantaneous power at a given time."""

    @abstractmethod
    def power_at(self, t: float) -> float:
        """Instantaneous harvested power (watts) at time ``t`` seconds."""

    def energy_between(self, t0: float, t1: float, step: float = 0.1) -> float:
        """Integrate power over ``[t0, t1]`` (trapezoid, fixed step).

        Subclasses with closed forms override this.
        """
        if t1 < t0:
            raise EnergyError("t1 must be >= t0")
        if t1 == t0:
            return 0.0
        n = max(1, int(math.ceil((t1 - t0) / step)))
        h = (t1 - t0) / n
        total = 0.0
        prev = self.power_at(t0)
        for i in range(1, n + 1):
            cur = self.power_at(t0 + i * h)
            total += 0.5 * (prev + cur) * h
            prev = cur
        return total


class ConstantHarvester(Harvester):
    """Steady power source."""

    def __init__(self, power_w: float):
        if power_w < 0:
            raise EnergyError("power must be non-negative")
        self.power_w = power_w

    def power_at(self, t: float) -> float:
        return self.power_w

    def energy_between(self, t0: float, t1: float, step: float = 0.1) -> float:
        if t1 < t0:
            raise EnergyError("t1 must be >= t0")
        return self.power_w * (t1 - t0)


class RFHarvester(Harvester):
    """RF energy source with log-distance path loss.

    Models the paper's Powercast TX91501-3W transmitter + P2110 receiver.
    Received power follows ``P_rx = P_tx * G / d^alpha`` and is converted
    with a fixed rectifier efficiency. Defaults give the few-mW harvest
    rates typical at 1–2 m from a 3 W transmitter.

    Args:
        tx_power_w: transmitter power (3.0 for TX91501-3W).
        distance_m: transmitter-receiver distance.
        path_loss_exp: path loss exponent (2.0 = free space).
        gain: combined antenna gains and constant losses.
        efficiency: RF-to-DC conversion efficiency of the receiver.
    """

    def __init__(
        self,
        tx_power_w: float = 3.0,
        distance_m: float = 1.0,
        path_loss_exp: float = 2.0,
        gain: float = 0.002,
        efficiency: float = 0.55,
    ):
        if tx_power_w < 0 or distance_m <= 0:
            raise EnergyError("tx_power must be >=0 and distance > 0")
        if not 0 < efficiency <= 1:
            raise EnergyError("efficiency must be in (0, 1]")
        self.tx_power_w = tx_power_w
        self.distance_m = distance_m
        self.path_loss_exp = path_loss_exp
        self.gain = gain
        self.efficiency = efficiency

    def power_at(self, t: float) -> float:
        received = self.tx_power_w * self.gain / (self.distance_m ** self.path_loss_exp)
        return received * self.efficiency

    def energy_between(self, t0: float, t1: float, step: float = 0.1) -> float:
        if t1 < t0:
            raise EnergyError("t1 must be >= t0")
        return self.power_at(t0) * (t1 - t0)


class PeriodicOutageHarvester(Harvester):
    """Power alternating between ``power_w`` (for ``on_s``) and zero
    (for ``off_s``), starting in the ON phase at t=0."""

    def __init__(self, power_w: float, on_s: float, off_s: float):
        if power_w < 0 or on_s <= 0 or off_s < 0:
            raise EnergyError("invalid outage pattern")
        self.power_w = power_w
        self.on_s = on_s
        self.off_s = off_s

    def power_at(self, t: float) -> float:
        phase = t % (self.on_s + self.off_s)
        return self.power_w if phase < self.on_s else 0.0


class TraceHarvester(Harvester):
    """Piecewise-constant replay of ``(time, power)`` samples.

    Between samples the power of the most recent sample holds; beyond the
    last sample, the final power holds (or the trace repeats if
    ``loop=True``).
    """

    def __init__(self, samples: Sequence[Tuple[float, float]], loop: bool = False):
        if not samples:
            raise EnergyError("trace must contain at least one sample")
        times = [s[0] for s in samples]
        if times != sorted(times):
            raise EnergyError("trace sample times must be non-decreasing")
        if any(p < 0 for _, p in samples):
            raise EnergyError("trace powers must be non-negative")
        self._times: List[float] = list(times)
        self._powers: List[float] = [s[1] for s in samples]
        self.loop = loop
        self._span = self._times[-1] - self._times[0] if len(samples) > 1 else 0.0

    def power_at(self, t: float) -> float:
        if self.loop and self._span > 0:
            t = self._times[0] + (t - self._times[0]) % self._span
        idx = bisect.bisect_right(self._times, t) - 1
        idx = max(0, min(idx, len(self._powers) - 1))
        return self._powers[idx]


class SolarHarvester(Harvester):
    """Sinusoidal day/night profile: zero at night, a half-sine by day."""

    def __init__(self, peak_power_w: float, day_length_s: float = 86400.0, daylight_fraction: float = 0.5):
        if peak_power_w < 0 or day_length_s <= 0 or not 0 < daylight_fraction <= 1:
            raise EnergyError("invalid solar parameters")
        self.peak_power_w = peak_power_w
        self.day_length_s = day_length_s
        self.daylight_fraction = daylight_fraction

    def power_at(self, t: float) -> float:
        phase = (t % self.day_length_s) / self.day_length_s
        if phase >= self.daylight_fraction:
            return 0.0
        return self.peak_power_w * math.sin(math.pi * phase / self.daylight_fraction)
