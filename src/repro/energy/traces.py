"""Synthetic ambient-energy trace generation.

The paper's testbed uses a fixed RF transmitter; real deployments see
far messier supply. These generators produce ``(time, power)`` sample
lists for :class:`~repro.energy.harvester.TraceHarvester`, deterministic
per seed, covering the regimes the intermittent-computing literature
evaluates against:

* :func:`rf_mobility_trace` — a receiver moving around an RF source
  (random-walk distance → path-loss power);
* :func:`office_light_trace` — indoor photovoltaic: working-hours
  plateau, lights off at night, stochastic shadowing dips;
* :func:`markov_onoff_trace` — bursty two-state supply (e.g. passing
  vehicles over a piezo harvester);
* :func:`washout_trace` — a long dead period inserted into an otherwise
  steady supply, for targeted charging-delay experiments.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import EnergyError

Samples = List[Tuple[float, float]]


def _check(duration_s: float, step_s: float) -> None:
    if duration_s <= 0 or step_s <= 0:
        raise EnergyError("duration and step must be positive")
    if step_s > duration_s:
        raise EnergyError("step must not exceed duration")


def rf_mobility_trace(
    duration_s: float,
    step_s: float = 10.0,
    tx_power_w: float = 3.0,
    gain: float = 0.002,
    efficiency: float = 0.55,
    min_distance_m: float = 0.5,
    max_distance_m: float = 4.0,
    walk_step_m: float = 0.15,
    seed: int = 0,
) -> Samples:
    """Receiver random-walking between ``min`` and ``max`` distance from
    a Powercast-style transmitter; power follows 1/d^2 path loss."""
    _check(duration_s, step_s)
    rng = random.Random(seed)
    distance = (min_distance_m + max_distance_m) / 2
    samples: Samples = []
    t = 0.0
    while t <= duration_s:
        distance += rng.uniform(-walk_step_m, walk_step_m)
        distance = min(max_distance_m, max(min_distance_m, distance))
        power = tx_power_w * gain / (distance ** 2) * efficiency
        samples.append((t, power))
        t += step_s
    return samples


def office_light_trace(
    duration_s: float,
    step_s: float = 60.0,
    peak_power_w: float = 1.5e-3,
    day_length_s: float = 86400.0,
    work_start_frac: float = 0.33,
    work_end_frac: float = 0.75,
    shadow_prob: float = 0.05,
    seed: int = 0,
) -> Samples:
    """Indoor PV: near-constant power during working hours, zero
    otherwise, with occasional shadowing dips (someone walks past)."""
    _check(duration_s, step_s)
    if not 0 <= work_start_frac < work_end_frac <= 1:
        raise EnergyError("invalid working-hours fractions")
    rng = random.Random(seed)
    samples: Samples = []
    t = 0.0
    while t <= duration_s:
        frac = (t % day_length_s) / day_length_s
        if work_start_frac <= frac < work_end_frac:
            power = peak_power_w * rng.uniform(0.85, 1.0)
            if rng.random() < shadow_prob:
                power *= rng.uniform(0.05, 0.3)
        else:
            power = 0.0
        samples.append((t, power))
        t += step_s
    return samples


def markov_onoff_trace(
    duration_s: float,
    step_s: float = 5.0,
    on_power_w: float = 5e-3,
    p_on_to_off: float = 0.2,
    p_off_to_on: float = 0.1,
    seed: int = 0,
) -> Samples:
    """Two-state Markov supply: bursty ON periods separated by dead
    time, the canonical model for vibration/passing-traffic harvesting."""
    _check(duration_s, step_s)
    if not (0 < p_on_to_off <= 1 and 0 < p_off_to_on <= 1):
        raise EnergyError("transition probabilities must be in (0, 1]")
    rng = random.Random(seed)
    on = rng.random() < p_off_to_on / (p_off_to_on + p_on_to_off)
    samples: Samples = []
    t = 0.0
    while t <= duration_s:
        samples.append((t, on_power_w if on else 0.0))
        if on and rng.random() < p_on_to_off:
            on = False
        elif not on and rng.random() < p_off_to_on:
            on = True
        t += step_s
    return samples


def washout_trace(
    duration_s: float,
    base_power_w: float,
    dead_start_s: float,
    dead_length_s: float,
    step_s: float = 1.0,
) -> Samples:
    """Steady supply with one dead window — a controlled outage for
    targeted timeliness experiments."""
    _check(duration_s, step_s)
    if dead_start_s < 0 or dead_length_s < 0:
        raise EnergyError("dead window must be non-negative")
    samples: Samples = []
    t = 0.0
    while t <= duration_s:
        in_dead = dead_start_s <= t < dead_start_s + dead_length_s
        samples.append((t, 0.0 if in_dead else base_power_w))
        t += step_s
    return samples


def mean_power(samples: Samples) -> float:
    """Time-weighted mean power of a trace (piecewise-constant hold)."""
    if len(samples) < 2:
        return samples[0][1] if samples else 0.0
    total = 0.0
    for (t0, p), (t1, _) in zip(samples, samples[1:]):
        total += p * (t1 - t0)
    return total / (samples[-1][0] - samples[0][0])


def duty_cycle(samples: Samples, threshold_w: float = 0.0) -> float:
    """Fraction of samples with power above ``threshold_w``."""
    if not samples:
        return 0.0
    return sum(1 for _, p in samples if p > threshold_w) / len(samples)
