"""Per-cell NVM access logging for memory-model verification.

"Towards a Formal Foundation of Intermittent Computing" (Surbatovich et
al., OOPSLA '20) characterizes the crash-consistency bug class of
task-based intermittent systems directly in terms of the *memory access
log*: a write-after-read (WAR) hazard on non-volatile state, or a
re-executed region whose writes differ from its first attempt, is
exactly what makes an intermittent execution inequivalent to every
continuous one. :class:`AccessLog` records the evidence those oracles
need — per-cell read/write/stage events, journaled-commit markers, and
reboot boundaries — so :class:`repro.verify.memmodel.MemoryModelChecker`
can pass verdicts on a *single* intermittent run, with no
continuous-power twin execution.

The log is an opt-in observer: a :class:`~repro.nvm.memory
.NonVolatileMemory` carries ``None`` by default and every hook is a
single ``is not None`` check, so simulation runs that do not verify pay
one attribute test per access. Attach one with
:meth:`NonVolatileMemory.attach_access_log`.

Event structure (see :class:`AccessEvent`):

* ``epoch`` counts power cycles: it starts at 0 and increments at every
  reboot, so events with the same epoch belong to one continuous burst
  of execution.
* ``region`` counts failure-atomic execution regions: it increments at
  every reboot *and* every journal ``clear`` (the end of a committed or
  recovered transaction), so a region spans exactly the work between
  two commit points — the unit that re-executes after a crash.
* ``via`` attributes writes to their mechanism: ``"task"`` for direct
  program writes, ``"apply"`` for the journal's roll-forward of
  committed entries, ``"recovery"`` for boot-time recovery actions.
  The memory-model oracles only charge ``"task"`` writes — journal
  applies and recovery are the *protocol*, not the program.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.nvm.memory import value_checksum

#: Cell access operations.
OP_READ = "read"
OP_WRITE = "write"
#: A volatile staged write (transaction intent, not yet durable).
OP_STAGE = "stage"

#: Commit-protocol and power-cycle markers. ``cell`` holds the journal
#: name (markers) or the recovery outcome detail.
OP_BEGIN = "begin"
OP_SEAL = "seal"
OP_CLEAR = "clear"
OP_RECOVER = "recover"
OP_REBOOT = "reboot"

#: ``via`` values for write attribution.
VIA_TASK = "task"
VIA_APPLY = "apply"
VIA_RECOVERY = "recovery"


class AccessEvent:
    """One logged NVM access or protocol marker."""

    __slots__ = ("op", "cell", "value_sig", "epoch", "region", "via",
                 "detail")

    def __init__(self, op: str, cell: Optional[str], value_sig: Optional[int],
                 epoch: int, region: int, via: str,
                 detail: Optional[str] = None):
        self.op = op
        self.cell = cell
        self.value_sig = value_sig
        self.epoch = epoch
        self.region = region
        self.via = via
        #: marker payload: journal name for begin/seal/clear, recovery
        #: outcome for recover.
        self.detail = detail

    def __repr__(self) -> str:
        where = f"e{self.epoch}/r{self.region}"
        if self.op in (OP_READ, OP_WRITE, OP_STAGE):
            sig = "" if self.value_sig is None else f"={self.value_sig:08x}"
            via = "" if self.via == VIA_TASK else f" via {self.via}"
            return f"<{self.op} {self.cell}{sig} {where}{via}>"
        return f"<{self.op} {self.detail or self.cell or ''} {where}>"


class AccessLog:
    """Ordered record of NVM accesses across power cycles.

    Args:
        normalize: applied to every written/staged value before its
            checksum is taken. Verification passes
            :func:`repro.verify.oracle.mask_time_fields` so legitimate
            re-execution timestamp drift does not register as a
            different value; the default identity keeps raw values.
        reads: record read events (needed by the WAR oracle). Turn off
            to halve the log for idempotence-only analyses.
        mask_cells: predicate over cell names; a matching cell's values
            are never checksummed (``value_sig`` stays ``None``).
            Verification passes
            :func:`repro.verify.oracle.is_time_cell` so cells that hold
            bare timestamps compare equal across re-executions.
    """

    def __init__(self, normalize: Optional[Callable[[Any], Any]] = None,
                 reads: bool = True,
                 mask_cells: Optional[Callable[[str], bool]] = None):
        self._mask_cells = mask_cells
        self.events: List[AccessEvent] = []
        self.epoch = 0
        self.region = 0
        self.record_reads = reads
        self._normalize = normalize
        #: journal names observed via protocol markers; the checker uses
        #: them to exempt journal-infrastructure cells.
        self.journal_names: set = set()
        self._via: List[str] = []

    # ------------------------------------------------------------------
    # Hooks called by the NVM layer
    # ------------------------------------------------------------------
    def _sig(self, cell: str, value: Any) -> Optional[int]:
        if self._mask_cells is not None and self._mask_cells(cell):
            return None
        if self._normalize is not None:
            value = self._normalize(value)
        return value_checksum(value)

    def on_read(self, cell: str) -> None:
        if self.record_reads:
            self.events.append(AccessEvent(
                OP_READ, cell, None, self.epoch, self.region,
                self._via[-1] if self._via else VIA_TASK))

    def on_write(self, cell: str, value: Any) -> None:
        self.events.append(AccessEvent(
            OP_WRITE, cell, self._sig(cell, value), self.epoch, self.region,
            self._via[-1] if self._via else VIA_TASK))

    def on_stage(self, cell: str, value: Any) -> None:
        self.events.append(AccessEvent(
            OP_STAGE, cell, self._sig(cell, value), self.epoch, self.region,
            self._via[-1] if self._via else VIA_TASK))

    def on_marker(self, op: str, journal: str,
                  detail: Optional[str] = None) -> None:
        """Record a commit-protocol marker (begin/seal/clear/recover)."""
        self.journal_names.add(journal)
        self.events.append(AccessEvent(
            op, journal, None, self.epoch, self.region, VIA_TASK,
            detail=detail))
        if op == OP_CLEAR:
            # End of a committed (or recovered) transaction: the next
            # accesses belong to a new failure-atomic region.
            self.region += 1

    def mark_reboot(self) -> None:
        """Record a power-cycle boundary (called by the device)."""
        self.epoch += 1
        self.region += 1
        self.events.append(AccessEvent(
            OP_REBOOT, None, None, self.epoch, self.region, VIA_TASK))

    # ------------------------------------------------------------------
    # Write attribution context (journal apply / boot recovery)
    # ------------------------------------------------------------------
    def push_via(self, via: str) -> None:
        self._via.append(via)

    def pop_via(self) -> None:
        if self._via:
            self._via.pop()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self.events)

    @property
    def epochs(self) -> int:
        """Number of execution epochs (power cycles + 1)."""
        return self.epoch + 1

    def journal_prefixes(self) -> Tuple[str, ...]:
        """Cell-name prefixes of every journal seen in the log."""
        return tuple(sorted(f"{name}." for name in self.journal_names))

    def describe(self, last: Optional[int] = None) -> str:
        """Human-readable dump (optionally only the last N events)."""
        events = self.events if last is None else self.events[-last:]
        return "\n".join(repr(e) for e in events)
