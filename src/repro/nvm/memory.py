"""FRAM-like non-volatile memory with named persistent cells.

Cells are allocated by name, carry an approximate byte size (used by the
Table 2 memory accountant), and keep their value across simulated power
failures. A :class:`NonVolatileMemory` instance outlives the device's
volatile state: the simulator wipes everything *except* this object on
reboot.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, Optional

from repro.errors import NVMError

#: FRAM capacity of the MSP430FR5994 used in the paper (bytes).
DEFAULT_CAPACITY_BYTES = 256 * 1024


class PersistentCell:
    """A single named value living in non-volatile memory.

    Reads and writes go straight to the backing store — like FRAM, writes
    are immediately durable (no flush step). Use
    :class:`~repro.nvm.transaction.Transaction` for staged writes that
    must commit atomically at task boundaries.
    """

    __slots__ = ("_nvm", "name", "size_bytes")

    def __init__(self, nvm: "NonVolatileMemory", name: str, size_bytes: int):
        self._nvm = nvm
        self.name = name
        self.size_bytes = size_bytes

    def get(self) -> Any:
        return self._nvm._data[self.name]

    def set(self, value: Any) -> None:
        self._nvm._data[self.name] = value
        self._nvm._write_count += 1
        counts = self._nvm._cell_writes
        counts[self.name] = counts.get(self.name, 0) + 1

    # Convenience property-style access.
    value = property(get, set)

    def __repr__(self) -> str:
        return f"PersistentCell({self.name!r}={self.get()!r})"


class NonVolatileMemory:
    """Byte-accounted store of named persistent cells.

    Args:
        capacity_bytes: total FRAM capacity; allocation beyond it raises
            :class:`~repro.errors.NVMError`, mirroring a link-time overflow
            on the real MCU.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes <= 0:
            raise NVMError("NVM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._data: Dict[str, Any] = {}
        self._cells: Dict[str, PersistentCell] = {}
        self._used_bytes = 0
        self._write_count = 0
        self._cell_writes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, name: str, initial: Any = None, size_bytes: int = 8) -> PersistentCell:
        """Allocate a named cell, or return the existing one after reboot.

        Allocation is idempotent by name: on reboot the runtime re-runs its
        initialisation code, and re-allocating an existing cell returns the
        surviving cell *without* resetting its value (that is the whole
        point of FRAM). Passing a different ``size_bytes`` for an existing
        name is an error, as it would be with a linker-placed symbol.
        """
        if size_bytes <= 0:
            raise NVMError(f"cell {name!r}: size must be positive")
        existing = self._cells.get(name)
        if existing is not None:
            if existing.size_bytes != size_bytes:
                raise NVMError(
                    f"cell {name!r} re-allocated with size {size_bytes} "
                    f"!= original {existing.size_bytes}"
                )
            return existing
        if self._used_bytes + size_bytes > self.capacity_bytes:
            raise NVMError(
                f"NVM overflow allocating {name!r}: "
                f"{self._used_bytes} + {size_bytes} > {self.capacity_bytes}"
            )
        cell = PersistentCell(self, name, size_bytes)
        self._cells[name] = cell
        self._data[name] = initial
        self._used_bytes += size_bytes
        return cell

    def free(self, name: str) -> None:
        """Release a cell (used by tests; real FRAM layout is static)."""
        cell = self._cells.pop(name, None)
        if cell is None:
            raise NVMError(f"cell {name!r} not allocated")
        self._used_bytes -= cell.size_bytes
        del self._data[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cell(self, name: str) -> PersistentCell:
        try:
            return self._cells[name]
        except KeyError:
            raise NVMError(f"cell {name!r} not allocated") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[str]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    @property
    def write_count(self) -> int:
        """Total writes performed (FRAM wear / overhead accounting)."""
        return self._write_count

    def snapshot(self) -> Dict[str, Any]:
        """Deep copy of all cell values (for checkpoint-diff tests)."""
        return copy.deepcopy(self._data)

    def usage_report(self) -> Dict[str, int]:
        """Per-cell byte usage, sorted descending by size."""
        sizes = {name: cell.size_bytes for name, cell in self._cells.items()}
        return dict(sorted(sizes.items(), key=lambda kv: -kv[1]))

    def wear_report(self, top: Optional[int] = None) -> Dict[str, int]:
        """Per-cell write counts, hottest first.

        FRAM endurance is enormous (~1e15 cycles) but write *energy* is
        not free and hot cells reveal protocol bugs (e.g. a monitor
        variable rewritten on every event when it should change rarely).
        """
        ordered = dict(sorted(self._cell_writes.items(), key=lambda kv: -kv[1]))
        if top is not None:
            ordered = dict(list(ordered.items())[:top])
        return ordered

    def writes_to(self, name: str) -> int:
        """Write count of one cell (0 if never written)."""
        return self._cell_writes.get(name, 0)


def namespaced(nvm: NonVolatileMemory, prefix: str):
    """Return an ``alloc`` function that prefixes all cell names.

    Lets independently generated monitors allocate cells without clashing,
    the same way the C generator prefixes monitor variables.
    """

    def alloc(name: str, initial: Any = None, size_bytes: int = 8) -> PersistentCell:
        return nvm.alloc(f"{prefix}.{name}", initial, size_bytes)

    return alloc
