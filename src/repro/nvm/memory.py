"""FRAM-like non-volatile memory with named persistent cells.

Cells are allocated by name, carry an approximate byte size (used by the
Table 2 memory accountant), and keep their value across simulated power
failures. A :class:`NonVolatileMemory` instance outlives the device's
volatile state: the simulator wipes everything *except* this object on
reboot.

Integrity model: every committed write records a per-cell checksum, so
silent corruption — injected with :meth:`NonVolatileMemory.corrupt`, the
simulation's bit-flip fault — is detectable by :meth:`verify` without
being observable through normal reads. Cells can also be given a wear
limit after which they go read-only, modelling worn-out storage.
"""

from __future__ import annotations

import copy
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import NVMError

#: FRAM capacity of the MSP430FR5994 used in the paper (bytes).
DEFAULT_CAPACITY_BYTES = 256 * 1024


#: Bounded memo for checksums of small immutable scalars. Monitors,
#: journals and the persistent clock rewrite the same handful of
#: states and counters millions of times per fleet simulation, and the
#: repr+CRC pair showed up as the top cost in the fleet benchmark.
#: Keys carry the concrete type so ``True``/``1`` and ``1``/``1.0``
#: never alias; ``±0.0`` (equal, different reprs) stays unmemoized.
_CHECKSUM_MEMO: dict = {}
_CHECKSUM_MEMO_MAX = 4096


def value_checksum(value: Any) -> int:
    """Deterministic checksum of a cell value (CRC-32 over its repr)."""
    t = type(value)
    if (t is int or t is bool
            or (t is float and value != 0.0)
            or (t is str and len(value) <= 64)):
        key = (t, value)
        memo = _CHECKSUM_MEMO
        checksum = memo.get(key)
        if checksum is None:
            checksum = zlib.crc32(
                repr(value).encode("utf-8", "backslashreplace"))
            if len(memo) >= _CHECKSUM_MEMO_MAX:
                memo.clear()
            memo[key] = checksum
        return checksum
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def serialized_size_bytes(value: Any, floor: int = 8) -> int:
    """Approximate serialized size of a cell value in bytes.

    Sized from the value's ``repr`` (the same canonical form the
    checksums hash), floored at one machine word's worth of accounting,
    so memory and wear tracking stay truthful for tuples/lists instead
    of pretending every value is one word.
    """
    return max(floor, len(repr(value).encode("utf-8", "backslashreplace")))


def _flip(value: Any, bit: int) -> Any:
    """Return ``value`` with one bit (conceptually) flipped.

    Type-preserving where possible so the corruption stays *silent*:
    reads succeed and return plausible garbage; only a checksum can tell.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << bit)
    if isinstance(value, float):
        raw = bytearray(struct.pack(">d", value))
        raw[(bit // 8) % 8] ^= 1 << (bit % 8)
        return struct.unpack(">d", bytes(raw))[0]
    if isinstance(value, str):
        if not value:
            return "\x00"
        return chr(ord(value[0]) ^ (1 << (bit % 7))) + value[1:]
    if value is None:
        return 1 << bit
    if isinstance(value, tuple) and value:
        return (_flip(value[0], bit),) + value[1:]
    if isinstance(value, list) and value:
        return [_flip(value[0], bit)] + list(value[1:])
    if isinstance(value, dict) and value:
        key = next(iter(value))
        flipped = dict(value)
        flipped[key] = _flip(value[key], bit)
        return flipped
    # Empty containers and exotic objects: unrecognisable garbage.
    return f"�{value!r}"


class PersistentCell:
    """A single named value living in non-volatile memory.

    Reads and writes go straight to the backing store — like FRAM, writes
    are immediately durable (no flush step). Use
    :class:`~repro.nvm.transaction.Transaction` for staged writes that
    must commit atomically at task boundaries.
    """

    __slots__ = ("_nvm", "name", "size_bytes")

    def __init__(self, nvm: "NonVolatileMemory", name: str, size_bytes: int):
        self._nvm = nvm
        self.name = name
        self.size_bytes = size_bytes

    def get(self) -> Any:
        nvm = self._nvm
        if nvm._access_log is not None:
            nvm._access_log.on_read(self.name)
        return nvm._data[self.name]

    def set(self, value: Any) -> None:
        nvm = self._nvm
        limit = nvm._write_limits.get(self.name)
        if limit is not None and nvm._cell_writes.get(self.name, 0) >= limit[0]:
            if limit[1]:  # silent wear: the write is dropped, not flagged
                nvm._wear_dropped += 1
                return
            raise NVMError(
                f"cell {self.name!r} worn out: read-only after "
                f"{limit[0]} writes"
            )
        nvm._data[self.name] = value
        nvm._checksums[self.name] = value_checksum(value)
        nvm._write_count += 1
        counts = nvm._cell_writes
        counts[self.name] = counts.get(self.name, 0) + 1
        if nvm._access_log is not None:
            nvm._access_log.on_write(self.name, value)

    # Convenience property-style access.
    value = property(get, set)

    def __repr__(self) -> str:
        return f"PersistentCell({self.name!r}={self.get()!r})"


class NonVolatileMemory:
    """Byte-accounted store of named persistent cells.

    Args:
        capacity_bytes: total FRAM capacity; allocation beyond it raises
            :class:`~repro.errors.NVMError`, mirroring a link-time overflow
            on the real MCU.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes <= 0:
            raise NVMError("NVM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._data: Dict[str, Any] = {}
        self._cells: Dict[str, PersistentCell] = {}
        self._used_bytes = 0
        self._write_count = 0
        self._cell_writes: Dict[str, int] = {}
        self._checksums: Dict[str, int] = {}
        self._initials: Dict[str, Any] = {}
        self._write_limits: Dict[str, Tuple[int, bool]] = {}
        self._wear_dropped = 0
        #: Optional access-log observer (see :mod:`repro.nvm.accesslog`).
        self._access_log = None
        #: Cells declared crash-progress points at allocation time.
        self._progress_cells: set = set()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, name: str, initial: Any = None, size_bytes: int = 8,
              progress: bool = False) -> PersistentCell:
        """Allocate a named cell, or return the existing one after reboot.

        Allocation is idempotent by name: on reboot the runtime re-runs its
        initialisation code, and re-allocating an existing cell returns the
        surviving cell *without* resetting its value (that is the whole
        point of FRAM). Passing a different ``size_bytes`` for an existing
        name is an error, as it would be with a linker-placed symbol.

        ``progress=True`` declares the cell a *crash-progress point*: a
        cell the runtime updates with single atomic writes as its
        intentional, crash-visible linearization mechanism (task program
        counters, retry counters, chunk cursors, A/B slot switches).
        Such cells are read-then-written across reboots *by design* —
        re-execution observing the post-write value is exactly the
        resume semantics — so the write-after-read hazard oracle
        (:mod:`repro.verify.memmodel`) exempts them, the same way
        DINO/Alpaca-style systems exempt manually-verified idempotent
        state from privatization. The declaration is sticky across the
        idempotent re-allocation on reboot.
        """
        if size_bytes <= 0:
            raise NVMError(f"cell {name!r}: size must be positive")
        if progress:
            self._progress_cells.add(name)
        existing = self._cells.get(name)
        if existing is not None:
            if existing.size_bytes != size_bytes:
                raise NVMError(
                    f"cell {name!r} re-allocated with size {size_bytes} "
                    f"!= original {existing.size_bytes}"
                )
            return existing
        if self._used_bytes + size_bytes > self.capacity_bytes:
            raise NVMError(
                f"NVM overflow allocating {name!r}: "
                f"{self._used_bytes} + {size_bytes} > {self.capacity_bytes}"
            )
        cell = PersistentCell(self, name, size_bytes)
        self._cells[name] = cell
        self._data[name] = initial
        self._checksums[name] = value_checksum(initial)
        self._initials[name] = copy.deepcopy(initial)
        self._used_bytes += size_bytes
        return cell

    def grow(self, name: str, size_bytes: int) -> PersistentCell:
        """Grow an existing cell's accounted size to at least ``size_bytes``.

        Channel cells sized by their serialized value (rather than the old
        flat 8 bytes) can legitimately need more room when a later write
        stores a bigger tuple/list. Growing re-checks capacity; shrinking
        is never done (a linker-placed buffer does not give bytes back).
        """
        cell = self.cell(name)
        if size_bytes <= cell.size_bytes:
            return cell
        extra = size_bytes - cell.size_bytes
        if self._used_bytes + extra > self.capacity_bytes:
            raise NVMError(
                f"NVM overflow growing {name!r} to {size_bytes}: "
                f"{self._used_bytes} + {extra} > {self.capacity_bytes}"
            )
        cell.size_bytes = size_bytes
        self._used_bytes += extra
        return cell

    def free(self, name: str) -> None:
        """Release a cell (used by tests; real FRAM layout is static)."""
        cell = self._cells.pop(name, None)
        if cell is None:
            raise NVMError(f"cell {name!r} not allocated")
        self._used_bytes -= cell.size_bytes
        del self._data[name]
        self._checksums.pop(name, None)
        self._initials.pop(name, None)
        self._write_limits.pop(name, None)

    # ------------------------------------------------------------------
    # Integrity: checksums, corruption, wear
    # ------------------------------------------------------------------
    def verify(self, name: str) -> bool:
        """True if cell ``name`` still matches its last recorded checksum."""
        if name not in self._cells:
            raise NVMError(f"cell {name!r} not allocated")
        return value_checksum(self._data[name]) == self._checksums[name]

    def verify_all(self) -> List[str]:
        """Names of all cells failing checksum verification."""
        return [name for name in self._cells if not self.verify(name)]

    def corrupt(self, name: str, bit: int = 0) -> Any:
        """Silently corrupt a cell, as a cosmic-ray bit flip would.

        The stored value changes but the recorded checksum (and the write
        counters) do not, so normal reads return the garbage while
        :meth:`verify` detects the damage. Returns the corrupted value.
        """
        if name not in self._cells:
            raise NVMError(f"cell {name!r} not allocated")
        corrupted = _flip(self._data[name], bit)
        self._data[name] = corrupted
        return corrupted

    def restore_initial(self, name: str) -> Any:
        """Reset a cell to its allocation-time initial value.

        The generic corruption repair: the cell's content cannot be
        trusted, so it is reset to the value static initialisation would
        have produced. Returns the restored value.
        """
        if name not in self._cells:
            raise NVMError(f"cell {name!r} not allocated")
        value = copy.deepcopy(self._initials[name])
        self._cells[name].set(value)
        return value

    def set_write_limit(self, name: str, limit: int, silent: bool = False) -> None:
        """Make a cell wear out: read-only after ``limit`` total writes.

        With ``silent=False`` (default) an over-limit write raises
        :class:`~repro.errors.NVMError`; with ``silent=True`` it is
        dropped and counted in :attr:`wear_dropped` — the nastier,
        harder-to-detect failure mode of real worn storage.
        """
        if name not in self._cells:
            raise NVMError(f"cell {name!r} not allocated")
        if limit < 0:
            raise NVMError("write limit must be non-negative")
        self._write_limits[name] = (limit, silent)

    def is_worn(self, name: str) -> bool:
        """True if the cell has exhausted its write limit."""
        limit = self._write_limits.get(name)
        return limit is not None and self._cell_writes.get(name, 0) >= limit[0]

    @property
    def wear_dropped(self) -> int:
        """Writes silently dropped by worn-out cells."""
        return self._wear_dropped

    # ------------------------------------------------------------------
    # Access logging (memory-model verification)
    # ------------------------------------------------------------------
    def attach_access_log(self, log) -> None:
        """Observe every cell read/write with ``log`` (an
        :class:`~repro.nvm.accesslog.AccessLog`). One observer at a
        time; pass ``None`` via :meth:`detach_access_log` to stop."""
        self._access_log = log

    def detach_access_log(self):
        """Stop access logging; returns the detached log (or ``None``)."""
        log, self._access_log = self._access_log, None
        return log

    @property
    def access_log(self):
        """The attached access log, or ``None``."""
        return self._access_log

    @property
    def progress_cells(self) -> frozenset:
        """Cells declared ``progress=True`` at allocation."""
        return frozenset(self._progress_cells)

    def is_progress(self, name: str) -> bool:
        """True if ``name`` was declared a crash-progress cell."""
        return name in self._progress_cells

    def raw_get(self, name: str, default: Any = None) -> Any:
        """Read a cell value without touching the access log.

        For observers (fingerprinting, state projection) that must not
        pollute the very log they are analysing. Returns ``default``
        for unallocated cells instead of raising.
        """
        return self._data.get(name, default)

    def raw_items(self):
        """Iterate ``(name, value)`` pairs without touching the access
        log (observer use; see :meth:`raw_get`)."""
        return self._data.items()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cell(self, name: str) -> PersistentCell:
        try:
            return self._cells[name]
        except KeyError:
            raise NVMError(f"cell {name!r} not allocated") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[str]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    @property
    def write_count(self) -> int:
        """Total writes performed (FRAM wear / overhead accounting)."""
        return self._write_count

    def snapshot(self) -> Dict[str, Any]:
        """Deep copy of all cell values (for checkpoint-diff tests)."""
        return copy.deepcopy(self._data)

    def state_fingerprint(self) -> int:
        """CRC-32 fingerprint of the complete durable state.

        Covers every allocated cell name and value (in sorted-name
        order, so insertion order does not leak in). Two memories with
        the same fingerprint hold the same committed state for all
        practical purposes; the conformance checker
        (:mod:`repro.verify`) uses this to prune crash points that
        would resume from an NVM snapshot it has already explored.
        """
        acc = 0
        for name in sorted(self._data):
            acc = zlib.crc32(
                repr((name, self._data[name])).encode("utf-8", "backslashreplace"),
                acc,
            )
        return acc

    def usage_report(self) -> Dict[str, int]:
        """Per-cell byte usage, sorted descending by size."""
        sizes = {name: cell.size_bytes for name, cell in self._cells.items()}
        return dict(sorted(sizes.items(), key=lambda kv: -kv[1]))

    def wear_report(self, top: Optional[int] = None) -> Dict[str, int]:
        """Per-cell write counts, hottest first.

        FRAM endurance is enormous (~1e15 cycles) but write *energy* is
        not free and hot cells reveal protocol bugs (e.g. a monitor
        variable rewritten on every event when it should change rarely).
        """
        ordered = dict(sorted(self._cell_writes.items(), key=lambda kv: -kv[1]))
        if top is not None:
            ordered = dict(list(ordered.items())[:top])
        return ordered

    def writes_to(self, name: str) -> int:
        """Write count of one cell (0 if never written)."""
        return self._cell_writes.get(name, 0)


def namespaced(nvm: NonVolatileMemory, prefix: str):
    """Return an ``alloc`` function that prefixes all cell names.

    Lets independently generated monitors allocate cells without clashing,
    the same way the C generator prefixes monitor variables.
    """

    def alloc(name: str, initial: Any = None, size_bytes: int = 8,
              progress: bool = False) -> PersistentCell:
        return nvm.alloc(f"{prefix}.{name}", initial, size_bytes,
                         progress=progress)

    return alloc
