"""Atomic, all-or-nothing commit of staged writes to NVM.

Task-based intermittent runtimes (Chain, InK, Alpaca, and the ARTEMIS
runtime in the paper) give each task transactional semantics: the task
stages its writes while running; only when it finishes are they committed
to non-volatile memory. A power failure mid-task discards the stage, so
re-execution is idempotent.

:class:`Transaction` models exactly that. The stage lives in *volatile*
memory (a plain dict) — it is constructed fresh after every reboot — so a
power failure between ``stage()`` calls loses nothing durable. ``commit``
itself is modelled as atomic, which matches the paper's runtime where the
commit point is a single pointer/status update in FRAM.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import NVMError
from repro.nvm.memory import NonVolatileMemory


class Transaction:
    """Volatile write stage with atomic commit into an NVM instance."""

    def __init__(self, nvm: NonVolatileMemory):
        self._nvm = nvm
        self._stage: Dict[str, Any] = {}

    def stage(self, name: str, value: Any) -> None:
        """Stage a write to cell ``name``; cell must already be allocated."""
        if name not in self._nvm:
            raise NVMError(f"cannot stage write to unallocated cell {name!r}")
        self._stage[name] = value

    def read(self, name: str) -> Any:
        """Read through the stage: staged value if present, else NVM."""
        if name in self._stage:
            return self._stage[name]
        return self._nvm.cell(name).get()

    def commit(self) -> int:
        """Apply every staged write to NVM; returns number of writes."""
        count = 0
        for name, value in self._stage.items():
            self._nvm.cell(name).set(value)
            count += 1
        self._stage.clear()
        return count

    def rollback(self) -> None:
        """Discard all staged writes (what a power failure does for free)."""
        self._stage.clear()

    @property
    def pending(self) -> int:
        return len(self._stage)

    def __contains__(self, name: str) -> bool:
        return name in self._stage
