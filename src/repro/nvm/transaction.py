"""Journaled, all-or-nothing commit of staged writes to NVM.

Task-based intermittent runtimes (Chain, InK, Alpaca, and the ARTEMIS
runtime in the paper) give each task transactional semantics: the task
stages its writes while running; only when it finishes are they committed
to non-volatile memory. A power failure mid-task discards the stage, so
re-execution is idempotent.

:class:`Transaction` models exactly that. The stage lives in *volatile*
memory (a plain dict) — it is constructed fresh after every reboot — so a
power failure between ``stage()`` calls loses nothing durable. ``commit``
runs a real journaled two-phase protocol through a
:class:`~repro.nvm.journal.CommitJournal`: every staged write is first
persisted as a redo entry, a checksummed status flip linearizes the
commit, and the entries are then applied to their cells. Passing a
``spend`` callback to :meth:`commit` makes every journal/flip/apply step
a distinct energy payment — and therefore a distinct crash point visible
to fault injectors; a crash at any of them is rolled back or forward by
:meth:`CommitJournal.recover` on the next boot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import NVMError
from repro.nvm.journal import CommitJournal
from repro.nvm.memory import NonVolatileMemory

#: A commit spend callback pays the energy of one commit step; it may
#: raise :class:`~repro.errors.PowerFailure`, interrupting the commit.
CommitSpendFn = Callable[[], None]


class Transaction:
    """Volatile write stage with journaled atomic commit into NVM.

    Args:
        nvm: the non-volatile memory to commit into.
        journal: the commit journal to write through. Defaults to the
            shared journal named ``"txnlog"`` on ``nvm``, so transactions
            created anywhere in a runtime agree on the journal layout.
    """

    #: Test-only fault switch for the memory-model checker's mutation
    #: self-test (:mod:`repro.verify.mutation`): when True, ``stage()``
    #: also writes the value straight into NVM — an *unprivatized*
    #: write, exactly the WAR-hazard class Alpaca's privatization
    #: exists to prevent. A crash-free run is unaffected (the commit
    #: overwrites the cell with the same value), so only the
    #: access-log oracles can observe the breakage from a crashing
    #: run. Never set this outside tests.
    TEST_WRITE_THROUGH_STAGE = False

    def __init__(self, nvm: NonVolatileMemory, journal: Optional[CommitJournal] = None):
        self._nvm = nvm
        self._journal = journal if journal is not None else CommitJournal(nvm)
        self._stage: Dict[str, Any] = {}

    @property
    def journal(self) -> CommitJournal:
        """The journal this transaction commits through."""
        return self._journal

    def stage(self, name: str, value: Any, create: bool = False) -> None:
        """Stage a write to cell ``name``.

        The cell must already be allocated unless ``create`` is given:
        then a missing cell is allocated by the journal's apply step, in
        the same failure-atomic step as the value write, so a rolled-back
        commit leaves no durable trace of the allocation.
        """
        if not create and name not in self._nvm:
            raise NVMError(f"cannot stage write to unallocated cell {name!r}")
        self._stage[name] = value
        log = self._nvm.access_log
        if log is not None:
            log.on_stage(name, value)
        if Transaction.TEST_WRITE_THROUGH_STAGE and name in self._nvm:
            # Injected WAR-hazard bug: the staged write escapes its
            # privatization and lands durably before the commit point.
            self._nvm.cell(name).set(value)

    def read(self, name: str) -> Any:
        """Read through the stage: staged value if present, else NVM."""
        if name in self._stage:
            return self._stage[name]
        return self._nvm.cell(name).get()

    def commit(
        self,
        spend: Optional[CommitSpendFn] = None,
        on_step: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Commit every staged write through the journal; returns the count.

        Protocol (each ``spend`` call is a crash point):

        1. open the journal (*pending*);
        2. per staged write: pay, persist one redo entry;
        3. pay, seal — checksum + status flip, the linearization point;
        4. per entry: pay, apply it to its cell;
        5. pay, clear the journal (*idle*).

        ``on_step``, if given, is called with a semantic label
        (``journal:<cell>``, ``seal``, ``apply:<cell>``, ``clear``)
        immediately *before* the matching ``spend`` — a crash scheduler
        intercepting the spend can attribute the crash point to the
        exact commit step (see :mod:`repro.verify.schedule`). Passing
        neither callback leaves the protocol unchanged.

        A commit with zero staged writes is a no-op: nothing to
        linearize, so no journal activity and no crash points.
        """
        if not self._stage:
            return 0
        journal = self._journal
        journal.begin()
        for name, value in self._stage.items():
            if on_step is not None:
                on_step(f"journal:{name}")
            if spend is not None:
                spend()
            journal.append(name, value)
        if on_step is not None:
            on_step("seal")
        if spend is not None:
            spend()
        journal.seal()
        count = journal.apply(spend, on_step=on_step)
        if on_step is not None:
            on_step("clear")
        if spend is not None:
            spend()
        journal.clear()
        self._stage.clear()
        return count

    def rollback(self) -> None:
        """Discard all staged writes (what a power failure does for free)."""
        self._stage.clear()

    @property
    def pending(self) -> int:
        return len(self._stage)

    def __contains__(self, name: str) -> bool:
        return name in self._stage
