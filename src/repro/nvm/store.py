"""Dict-like view over a prefix of non-volatile memory.

Monitor state machines keep their state and variables in a mutable
mapping; backing that mapping with NVM makes the whole machine persist
across power failures. Cells are allocated lazily on first write.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.nvm.memory import NonVolatileMemory


class NVMStore:
    """Mutable-mapping adapter: ``store[key]`` ↔ NVM cell ``prefix.key``."""

    def __init__(self, nvm: NonVolatileMemory, prefix: str, cell_bytes: int = 8,
                 progress: bool = False):
        self._nvm = nvm
        self._prefix = prefix
        self._cell_bytes = cell_bytes
        self._progress = progress
        # Track which keys belong to this store (NVM itself is shared).
        self._keys_cell = nvm.alloc(f"{prefix}.__keys__", initial=(),
                                    size_bytes=16, progress=progress)

    def _cell_name(self, key: str) -> str:
        return f"{self._prefix}.{key}"

    def __getitem__(self, key: str) -> Any:
        if key not in self:
            raise KeyError(key)
        return self._nvm.cell(self._cell_name(key)).get()

    def __setitem__(self, key: str, value: Any) -> None:
        name = self._cell_name(key)
        if name not in self._nvm:
            self._nvm.alloc(name, initial=None, size_bytes=self._cell_bytes,
                            progress=self._progress)
        if key not in self._keys_cell.get():
            self._keys_cell.set(self._keys_cell.get() + (key,))
        self._nvm.cell(name).set(value)

    def __delitem__(self, key: str) -> None:
        if key not in self:
            raise KeyError(key)
        self._nvm.free(self._cell_name(key))
        self._keys_cell.set(tuple(k for k in self._keys_cell.get() if k != key))

    def __contains__(self, key: str) -> bool:
        return key in self._keys_cell.get()

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys_cell.get())

    def __len__(self) -> int:
        return len(self._keys_cell.get())

    def keys(self):
        return list(self._keys_cell.get())
