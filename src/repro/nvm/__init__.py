"""Non-volatile memory substrate (FRAM model).

The paper's target platform is an MSP430FR5994 with 256 KB of FRAM.
This package models the two properties intermittent software relies on:

* **Persistence** — values written to NVM survive power failures
  (:class:`~repro.nvm.memory.NonVolatileMemory`).
* **Atomic commit** — task-based runtimes stage task writes in volatile
  memory and commit them all-or-nothing at task end through a
  crash-consistent redo journal
  (:class:`~repro.nvm.transaction.Transaction`,
  :class:`~repro.nvm.journal.CommitJournal`).
* **Integrity** — per-cell checksums detect silent corruption, and
  wear limits model cells going read-only
  (:meth:`~repro.nvm.memory.NonVolatileMemory.corrupt`,
  :meth:`~repro.nvm.memory.NonVolatileMemory.verify`).
"""

from repro.nvm.accesslog import AccessEvent, AccessLog
from repro.nvm.journal import CommitJournal
from repro.nvm.memory import NonVolatileMemory, PersistentCell
from repro.nvm.store import NVMStore
from repro.nvm.transaction import Transaction

__all__ = [
    "AccessEvent",
    "AccessLog",
    "NonVolatileMemory",
    "PersistentCell",
    "NVMStore",
    "Transaction",
    "CommitJournal",
]
