"""Non-volatile memory substrate (FRAM model).

The paper's target platform is an MSP430FR5994 with 256 KB of FRAM.
This package models the two properties intermittent software relies on:

* **Persistence** — values written to NVM survive power failures
  (:class:`~repro.nvm.memory.NonVolatileMemory`).
* **Atomic commit** — task-based runtimes stage task writes in volatile
  memory and commit them all-or-nothing at task end
  (:class:`~repro.nvm.transaction.Transaction`).
"""

from repro.nvm.memory import NonVolatileMemory, PersistentCell
from repro.nvm.store import NVMStore
from repro.nvm.transaction import Transaction

__all__ = ["NonVolatileMemory", "PersistentCell", "NVMStore", "Transaction"]
