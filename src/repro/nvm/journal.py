"""Crash-consistent commit journal (redo log) in non-volatile memory.

The paper's runtime makes task commits atomic with a single FRAM status
update; Alpaca-style systems get there by *privatising* writes and
committing them through a journal. :class:`CommitJournal` reproduces
that mechanism instead of assuming it:

1. ``begin`` marks the journal *pending* and clears it.
2. ``append`` persists one ``(cell, value)`` redo entry per staged write.
3. ``seal`` stores a checksum over the entries and flips the status to
   *committed* — this single flip is the linearization point.
4. ``apply`` copies each entry into its target cell, tracking progress
   in the persistent ``applied`` index.
5. ``clear`` returns the journal to *idle*.

A power failure at any interior step leaves a state :meth:`recover` can
classify on the next boot: a *pending* journal is discarded (the commit
never happened — the task re-executes), a *committed* journal is
re-applied idempotently (the commit happened — roll forward), and a
committed journal whose checksum no longer matches its entries is
detected as corruption and discarded rather than replayed.

Several :class:`~repro.nvm.transaction.Transaction` instances may share
one journal (allocation is idempotent by name); only one commit is ever
in flight at a time because intermittent runtimes are single-threaded.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Optional, Tuple

from repro.errors import NVMError
from repro.nvm.memory import NonVolatileMemory, serialized_size_bytes

#: Journal status values. The transition PENDING -> COMMITTED is the
#: commit's linearization point.
STATUS_IDLE = "idle"
STATUS_PENDING = "pending"
STATUS_COMMITTED = "committed"

#: Recovery outcomes returned by :meth:`CommitJournal.recover`.
RECOVERED_CLEAN = "clean"
RECOVERED_ROLLED_BACK = "rolled_back"
RECOVERED_ROLLED_FORWARD = "rolled_forward"
RECOVERED_CORRUPT = "corrupt"


def entries_checksum(entries: Tuple[Tuple[str, Any], ...]) -> int:
    """Deterministic checksum of a journal entry tuple."""
    return zlib.crc32(repr(entries).encode("utf-8", "backslashreplace"))


class CommitJournal:
    """Persistent redo log backing journaled two-phase commits.

    Args:
        nvm: the non-volatile memory holding the journal cells.
        name: NVM namespace; all journals with the same name on the same
            NVM share state (which is the point — the journal layout is
            static, like a linker-placed log region).
    """

    #: Test-only fault switch for the conformance checker's mutation
    #: self-test (:mod:`repro.verify.mutation`): when True, boot-time
    #: roll-forward recovery silently skips re-applying the *first*
    #: journal entry — the write is lost even though the commit
    #: linearized. Crash-free commits are unaffected, so only a checker
    #: that actually explores crash schedules can observe the breakage.
    #: Never set this outside tests.
    TEST_SKIP_RECOVERY_APPLY = False

    def __init__(self, nvm: NonVolatileMemory, name: str = "txnlog"):
        self._nvm = nvm
        self.name = name
        self._status = nvm.alloc(f"{name}.status", STATUS_IDLE, size_bytes=2)
        self._entries = nvm.alloc(f"{name}.entries", (), size_bytes=96)
        self._checksum = nvm.alloc(f"{name}.checksum", 0, size_bytes=4)
        self._applied = nvm.alloc(f"{name}.applied", 0, size_bytes=2)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """Current journal status (idle / pending / committed)."""
        return self._status.get()

    @property
    def in_flight(self) -> bool:
        """True if a commit was interrupted and needs recovery."""
        return self._status.get() != STATUS_IDLE

    def entries(self) -> Tuple[Tuple[str, Any], ...]:
        """The persisted redo entries (for tests and diagnostics)."""
        return tuple(self._entries.get())

    @property
    def applied(self) -> int:
        """Index of the next entry to apply during roll-forward."""
        return self._applied.get()

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------
    def _mark(self, op: str, detail: Optional[str] = None) -> None:
        """Emit a commit-protocol marker into the attached access log."""
        log = self._nvm.access_log
        if log is not None:
            log.on_marker(op, self.name, detail)

    def begin(self) -> None:
        """Open the journal for a new commit (status becomes pending)."""
        if self.in_flight:
            raise NVMError(
                f"journal {self.name!r} already {self.status}; "
                "recover() it before starting a new commit"
            )
        self._mark("begin")
        self._entries.set(())
        self._applied.set(0)
        self._checksum.set(0)
        self._status.set(STATUS_PENDING)

    def append(self, cell_name: str, value: Any) -> None:
        """Persist one redo entry; requires a pending journal."""
        if self._status.get() != STATUS_PENDING:
            raise NVMError(
                f"journal {self.name!r}: append while {self.status!r}"
            )
        self._entries.set(self._entries.get() + ((cell_name, value),))

    def seal(self) -> None:
        """Checksum the entries and flip to committed (the commit point)."""
        if self._status.get() != STATUS_PENDING:
            raise NVMError(f"journal {self.name!r}: seal while {self.status!r}")
        self._checksum.set(entries_checksum(tuple(self._entries.get())))
        self._status.set(STATUS_COMMITTED)
        self._mark("seal")

    def verify(self) -> bool:
        """True if the sealed entries still match their checksum."""
        return entries_checksum(tuple(self._entries.get())) == self._checksum.get()

    def apply(
        self,
        spend: Optional[Callable[[], None]] = None,
        on_step: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Roll the committed entries into their cells; returns the count.

        Resumes from the persistent ``applied`` index, so re-applying
        after an interruption is idempotent. ``spend``, if given, is
        called before each application step — charging the device makes
        every step a distinct crash point. ``on_step``, if given, is
        called with ``apply:<cell>`` just before each spend so crash
        schedulers can label the crash point.
        """
        if self._status.get() != STATUS_COMMITTED:
            raise NVMError(f"journal {self.name!r}: apply while {self.status!r}")
        entries = self._entries.get()
        log = self._nvm.access_log
        if log is not None:
            log.push_via("apply")
        try:
            for i in range(self._applied.get(), len(entries)):
                cell_name, value = entries[i]
                if on_step is not None:
                    on_step(f"apply:{cell_name}")
                if spend is not None:
                    spend()
                # First-write allocation happens here, in the same
                # failure-atomic step as the value write: a commit that
                # rolls back must leave no durable trace, not even an empty
                # cell. (Channel cells used to be allocated eagerly while
                # the task body ran, so a rolled-back commit still published
                # an observable None-valued cell.) Growth of an existing
                # cell stays the writer's job — it is size accounting only
                # and never publishes a value.
                if cell_name not in self._nvm:
                    self._nvm.alloc(cell_name, initial=None,
                                    size_bytes=serialized_size_bytes(value))
                self._nvm.cell(cell_name).set(value)
                self._applied.set(i + 1)
        finally:
            if log is not None:
                log.pop_via()
        return len(entries)

    def clear(self) -> None:
        """Return the journal to idle (end of a commit or of recovery)."""
        self._status.set(STATUS_IDLE)
        self._entries.set(())
        self._applied.set(0)
        self._checksum.set(0)
        self._mark("clear")

    # ------------------------------------------------------------------
    # Boot-time recovery
    # ------------------------------------------------------------------
    def recover(self) -> str:
        """Classify and resolve an interrupted commit.

        Returns one of:

        * ``"clean"`` — no commit was in flight.
        * ``"rolled_back"`` — a pending journal was discarded: the crash
          hit before the commit point, so the commit never happened.
        * ``"rolled_forward"`` — a committed journal was re-applied to
          completion: the commit happened; its effects are now durable.
        * ``"corrupt"`` — the journal failed its checksum (or its status
          cell held garbage) and was discarded instead of replayed.
        """
        log = self._nvm.access_log
        if log is not None:
            log.push_via("recovery")
        try:
            outcome = self._recover()
        finally:
            if log is not None:
                log.pop_via()
        self._mark("recover", outcome)
        return outcome

    def _recover(self) -> str:
        status = self._status.get()
        if status == STATUS_IDLE:
            return RECOVERED_CLEAN
        if status == STATUS_PENDING:
            self.clear()
            return RECOVERED_ROLLED_BACK
        if status == STATUS_COMMITTED:
            if not self.verify():
                self.clear()
                return RECOVERED_CORRUPT
            if (CommitJournal.TEST_SKIP_RECOVERY_APPLY
                    and self._applied.get() == 0 and self._entries.get()):
                # Injected commit-ordering bug: pretend the first entry
                # was already applied, dropping its write on the floor.
                self._applied.set(1)
            self.apply()
            self.clear()
            return RECOVERED_ROLLED_FORWARD
        # The status cell itself holds an unknown value: corruption.
        self.clear()
        return RECOVERED_CORRUPT
