"""ARTEMIS — adaptable runtime monitoring for intermittent systems.

A faithful Python reproduction of the EuroSys '24 paper by Yıldız et
al.: a property specification language, an intermediate state-machine
language with automatic monitor generation, a power-failure-resilient
task-based runtime, the substrates they need (non-volatile memory,
persistent timekeeping, energy harvesting, an intermittent-device
simulator), and the Mayfly baseline used in the paper's evaluation.

Quickstart::

    from repro import (
        AppBuilder, load_properties, ArtemisRuntime, Device,
        EnergyEnvironment, MSP430FR5994_POWER,
    )

    app = (AppBuilder("demo")
           .task("sense", body=lambda ctx: ctx.write("x", ctx.sample("adc")))
           .task("send")
           .path(1, ["sense", "send"])
           .sensor("adc", lambda t: 21.0)
           .build())
    props = load_properties("sense { maxTries: 5 onFail: skipPath; }", app)
    device = Device(EnergyEnvironment.continuous())
    runtime = ArtemisRuntime(app, props, device, MSP430FR5994_POWER)
    result = device.run(runtime)
"""

from repro.baselines.chain import ChainRuntime
from repro.baselines.mayfly import Collection, Expiration, MayflyConfig, MayflyRuntime
from repro.core.actions import Action, ActionType
from repro.core.arbiter import arbitrate, first_reported, most_severe
from repro.core.events import EventKind, MonitorEvent, end_event, start_event
from repro.core.generator import generate_machine, generate_machines
from repro.core.monitor import ArtemisMonitor, MonitorGroup
from repro.core.properties import (
    Collect,
    DpData,
    EnergyAtLeast,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
    PropertySet,
)
from repro.core.degradation import DegradationController
from repro.core.retry import RetryPolicy, RetrySupervisor
from repro.core.runtime import ArtemisRuntime
from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment, default_capacitor
from repro.energy.harvester import (
    ConstantHarvester,
    PeriodicOutageHarvester,
    RFHarvester,
    SolarHarvester,
    TraceHarvester,
)
from repro.energy.power import MSP430FR5994_POWER, PowerModel, TaskCost
from repro.errors import (
    PeripheralError,
    PowerFailure,
    ReproError,
    SpecError,
    SpecSyntaxError,
    SpecValidationError,
)
from repro.nvm.memory import NonVolatileMemory
from repro.peripherals import (
    BurstDropout,
    FaultySensor,
    OutOfRangeGlitch,
    PeripheralSet,
    StuckAtLastValue,
    TransientTimeout,
    parse_fault_spec,
)
from repro.sim.device import Device
from repro.sim.result import RunResult
from repro.sim.tracer import Tracer
from repro.spec.parser import parse_spec
from repro.spec.validator import load_properties, validate
from repro.statemachine.interpreter import MachineInstance, Verdict
from repro.statemachine.model import StateMachine
from repro.taskgraph.app import Application
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.path import Path
from repro.taskgraph.task import Task

__version__ = "1.0.0"

__all__ = [
    # Task model
    "Application", "AppBuilder", "Task", "Path",
    # Spec language
    "parse_spec", "validate", "load_properties",
    "MaxTries", "MaxDuration", "MITD", "Collect", "DpData", "Period",
    "EnergyAtLeast", "PropertySet",
    # Intermediate language & generation
    "StateMachine", "MachineInstance", "Verdict",
    "generate_machine", "generate_machines",
    # Core framework
    "ArtemisRuntime", "ArtemisMonitor", "MonitorGroup", "Action", "ActionType",
    "MonitorEvent", "EventKind", "start_event", "end_event",
    "arbitrate", "most_severe", "first_reported",
    # Robustness layer
    "RetryPolicy", "RetrySupervisor", "DegradationController",
    "PeripheralSet", "FaultySensor", "parse_fault_spec",
    "TransientTimeout", "StuckAtLastValue", "OutOfRangeGlitch", "BurstDropout",
    # Substrates
    "NonVolatileMemory", "Device", "RunResult", "Tracer",
    "Capacitor", "EnergyEnvironment", "default_capacitor",
    "ConstantHarvester", "RFHarvester", "PeriodicOutageHarvester",
    "SolarHarvester", "TraceHarvester",
    "PowerModel", "TaskCost", "MSP430FR5994_POWER",
    # Baselines
    "MayflyRuntime", "MayflyConfig", "Expiration", "Collection",
    "ChainRuntime",
    # Errors
    "ReproError", "SpecError", "SpecSyntaxError", "SpecValidationError",
    "PowerFailure", "PeripheralError",
]
