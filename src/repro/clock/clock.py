"""Simulation time base and persistent clock model."""

from __future__ import annotations

import random
from repro.errors import ReproError
from repro.nvm.memory import NonVolatileMemory


class SimClock:
    """Monotonic simulation clock, in seconds.

    All components in a simulation share one ``SimClock``; nothing in the
    package reads wall-clock time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ReproError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f})"


class PersistentClock:
    """Clock readable by intermittent software across power failures.

    On real hardware this is a remanence timekeeper or an external RTC:
    the device reads a timestamp after reboot that tracks true elapsed
    time within a bounded error. Here the true time comes from the shared
    :class:`SimClock`; the persistent aspect is modelled by storing the
    last reading in NVM and (optionally) perturbing post-reboot readings
    by a bounded relative error.

    Args:
        sim_clock: shared simulation time base.
        nvm: non-volatile store for the last reading.
        max_rel_error: bound on the relative error of the *outage
            duration* estimate after a reboot (e.g. ``0.05`` for ±5%).
            Defaults to 0 — a perfect timekeeper, which is what the paper
            assumes.
        seed: RNG seed for error injection (determinism).
    """

    def __init__(
        self,
        sim_clock: SimClock,
        nvm: NonVolatileMemory,
        max_rel_error: float = 0.0,
        seed: int = 0,
        name: str = "persistent_clock",
    ):
        if not 0.0 <= max_rel_error < 1.0:
            raise ReproError("max_rel_error must be in [0, 1)")
        self._sim = sim_clock
        self._cell = nvm.alloc(f"{name}.last_reading", initial=sim_clock.now(),
                               size_bytes=8, progress=True)
        self._max_rel_error = max_rel_error
        self._rng = random.Random(seed)
        # Accumulated offset from error injection; volatile by design —
        # each reboot draws a fresh error for the outage it just slept
        # through, then on-time reads are exact deltas.
        self._offset = 0.0

    def now(self) -> float:
        """Current time as seen by the intermittent software."""
        reading = self._sim.now() + self._offset
        self._cell.set(reading)
        return reading

    def on_reboot(self) -> None:
        """Called by the device after an outage to inject timing error.

        The error is proportional to the outage length (time since the
        last persisted reading), matching how remanence timekeepers'
        accuracy degrades with off-time.
        """
        if self._max_rel_error == 0.0:
            return
        last = self._cell.get()
        outage = max(0.0, (self._sim.now() + self._offset) - last)
        err = self._rng.uniform(-self._max_rel_error, self._max_rel_error)
        self._offset += outage * err

    @property
    def last_persisted(self) -> float:
        return self._cell.get()
