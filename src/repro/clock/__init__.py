"""Timekeeping substrate.

Intermittent systems lose their clock on every power failure; the paper
(like TICS, Mayfly, and CHRT) assumes *persistent timekeeping* hardware
that keeps wall time across outages. :class:`SimClock` is the simulation
time base; :class:`PersistentClock` layers persistence semantics (and an
optional bounded error, mirroring remanence-based timekeepers) on top.
"""

from repro.clock.clock import PersistentClock, SimClock

__all__ = ["SimClock", "PersistentClock"]
