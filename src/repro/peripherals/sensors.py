"""Fault-wrapped sensors and the peripheral access layer.

:class:`FaultySensor` wraps one application sensor function with a list
of :class:`~repro.peripherals.faults.SensorFault` models and tracks the
last known-good reading (what a stuck-at fault replays).

:class:`PeripheralSet` is what runtimes hold: it owns the node's
sensors, charges each access to the device's ``sense`` energy category,
and publishes every fault activation as a ``sensor_fault`` trace record
plus the :attr:`~repro.sim.result.RunResult.sensor_faults` counter.
``TaskContext.sense()`` routes here when a runtime was built with a
peripheral set; without one, sensors stay infallible free lambdas as
before.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.energy.power import MCU_ACTIVE_POWER_W
from repro.errors import RuntimeConfigError
from repro.peripherals.faults import SensorFault

SensorFn = Callable[[float], Any]


class FaultySensor:
    """One sensor function wrapped with fault models.

    Faults are applied in order; the first raising fault aborts the
    access. The last good (fault-free) reading is kept so stuck-at
    faults have something to replay.
    """

    def __init__(self, name: str, fn: SensorFn, faults: Iterable[SensorFault] = ()):
        self.name = name
        self._fn = fn
        self.faults = list(faults)

        self._last_good: Any = None

    @property
    def last_good(self) -> Any:
        """Most recent fault-free reading (None before the first one)."""
        return self._last_good

    def attach(self, fault: SensorFault) -> None:
        """Add another fault model to this sensor."""
        self.faults.append(fault)

    def sample(
        self,
        t: float,
        on_fault: Optional[Callable[[str, str, bool], None]] = None,
    ) -> Any:
        """Read the sensor at time ``t``, applying active faults.

        ``on_fault(sensor, kind, silent)`` is invoked for every fault
        activation — including raising ones, *before* they raise — so
        the caller can account the fault even when the access fails.
        """
        value = self._fn(t)
        faulted = False
        for fault in self.faults:
            if not fault.fires(t):
                continue
            faulted = True
            if on_fault is not None:
                on_fault(self.name, fault.KIND, fault.SILENT)
            value = fault.perturb(self.name, t, value, self._last_good)
        if not faulted:
            self._last_good = value
        return value


class PeripheralSet:
    """The node's sensors behind an energy-charged, fault-prone bus.

    Args:
        sensors: mapping of sensor name to reading function ``f(t)``
            (e.g. ``app.sensors``).
        sense_s: default MCU-busy seconds charged per access (a bound
            runtime overrides this from its power model's ``sense_s``).
        sense_power_w: power drawn during an access.

    The set must be :meth:`bind`-bound to the active device before
    accesses are charged/traced; unbound access still works (pure fault
    semantics) for unit tests.
    """

    def __init__(
        self,
        sensors: Mapping[str, SensorFn] = (),
        sense_s: float = 0.0,
        sense_power_w: float = MCU_ACTIVE_POWER_W,
    ):
        self._sensors: Dict[str, FaultySensor] = {}
        for name, fn in dict(sensors).items():
            self._sensors[name] = FaultySensor(name, fn)
        self._sense_s = float(sense_s)
        self._sense_power_w = float(sense_power_w)
        self._device: Any = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_sensor(
        self, name: str, fn: SensorFn, faults: Iterable[SensorFault] = ()
    ) -> FaultySensor:
        """Register a sensor (replacing any existing one of that name)."""
        sensor = FaultySensor(name, fn, faults)
        self._sensors[name] = sensor
        return sensor

    def attach(self, name: str, fault: SensorFault) -> None:
        """Attach a fault model to an already-registered sensor."""
        self.sensor(name).attach(fault)

    def sensor(self, name: str) -> FaultySensor:
        """The wrapped sensor of that name."""
        try:
            return self._sensors[name]
        except KeyError:
            raise RuntimeConfigError(f"unknown sensor {name!r}") from None

    def bind(
        self,
        device: Any,
        sense_s: Optional[float] = None,
        sense_power_w: Optional[float] = None,
    ) -> None:
        """Point the set at the active device (re-bound on every boot).

        Non-None cost overrides replace the construction-time defaults,
        which is how runtimes thread their power model's ``sense_s``
        through without the workload builder having to know it.
        """
        self._device = device
        if sense_s is not None:
            self._sense_s = float(sense_s)
        if sense_power_w is not None:
            self._sense_power_w = float(sense_power_w)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def sense(self, name: str, t: float) -> Any:
        """Read sensor ``name`` at time ``t`` through the fault layer.

        Charges the access to the ``sense`` energy category, records a
        ``sensor_fault`` trace entry and bumps the ``sensor_faults``
        counter for every fault activation, and lets raising faults
        propagate as :class:`~repro.errors.PeripheralError`.
        """
        sensor = self.sensor(name)
        device = self._device
        if device is not None and self._sense_s > 0.0:
            device.consume(self._sense_s, self._sense_power_w, "sense")

        def on_fault(sensor_name: str, kind: str, silent: bool) -> None:
            if device is None:
                return
            device.result.sensor_faults += 1
            device.trace.record(
                device.now(), "sensor_fault",
                sensor=sensor_name, fault=kind, silent=silent,
            )

        return sensor.sample(t, on_fault)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._sensors

    def __iter__(self) -> Iterator[str]:
        return iter(self._sensors)

    def __len__(self) -> int:
        return len(self._sensors)

    def names(self) -> Tuple[str, ...]:
        """Registered sensor names."""
        return tuple(self._sensors)
