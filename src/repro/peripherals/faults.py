"""Seeded, schedulable sensor fault models.

Each model decides *when* it is active — inside deterministic time
windows and/or stochastically at a per-sample rate — and *what* an
active fault does to a reading. Raising faults (timeout, dropout)
abort the access with :class:`~repro.errors.PeripheralError` so the
runtime's retry policy can re-execute the task; silent faults
(stuck-at, glitch) return plausible-but-wrong values, the kind of
damage only a property monitor can catch.

All randomness is seeded per fault instance with a string seed
(``random.Random(f"{kind}:{seed}")``), so a fault schedule is a pure
function of its configuration and the order of accesses — reruns of a
simulation reproduce the exact same fault sequence.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

from repro.errors import PeripheralError, RuntimeConfigError

#: Fault-kind tags accepted by :func:`parse_fault_spec`.
FAULT_KINDS = ("timeout", "stuck", "glitch", "dropout")


class SensorFault:
    """Base class for sensor fault models.

    Args:
        rate: per-sample activation probability in ``[0, 1]``.
        windows: ``(t_start, t_end)`` pairs (seconds); the fault is
            always active while the access time falls in a window.
        seed: seed for the fault's private RNG stream.

    Subclasses set :attr:`KIND` (short tag used in traces and CLI
    specs) and :attr:`SILENT` (True when the fault corrupts the value
    instead of raising), and implement :meth:`perturb`.
    """

    KIND = "fault"
    SILENT = False

    def __init__(
        self,
        rate: float = 0.0,
        windows: Sequence[Tuple[float, float]] = (),
        seed: int = 0,
    ):
        if not 0.0 <= rate <= 1.0:
            raise RuntimeConfigError(f"fault rate must be in [0, 1], got {rate}")
        self.windows = tuple((float(a), float(b)) for a, b in windows)
        for start, end in self.windows:
            if end <= start:
                raise RuntimeConfigError(
                    f"fault window must have end > start, got ({start}, {end})"
                )
        self.rate = float(rate)
        self.seed = seed
        self._rng = random.Random(f"{self.KIND}:{seed}")

    def fires(self, t: float) -> bool:
        """Decide whether the fault is active for an access at time ``t``.

        Consumes one RNG draw per call when a stochastic rate is set, so
        activation is deterministic given the access sequence.
        """
        in_window = any(start <= t < end for start, end in self.windows)
        stochastic = self.rate > 0.0 and self._rng.random() < self.rate
        return in_window or stochastic

    def perturb(self, sensor: str, t: float, value: Any, last_good: Any) -> Any:
        """Apply the fault to a reading; raise or return the bad value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(rate={self.rate}, "
            f"windows={self.windows!r}, seed={self.seed!r})"
        )


class TransientTimeout(SensorFault):
    """The peripheral bus times out: the access fails loudly.

    The classic transient fault — an I2C/SPI transaction that never
    completes. Raises :class:`~repro.errors.PeripheralError`; a retry a
    moment later usually succeeds (unless the fault is windowed over
    the whole run, which models a dead sensor).
    """

    KIND = "timeout"
    SILENT = False

    def perturb(self, sensor: str, t: float, value: Any, last_good: Any) -> Any:
        raise PeripheralError(sensor, self.KIND, t)


class StuckAtLastValue(SensorFault):
    """The sensor silently repeats its last good reading.

    A frozen ADC or a stale FIFO: the access *succeeds* but the value
    is old. If no good reading has been taken yet the fresh value
    passes through (there is nothing to be stuck at).
    """

    KIND = "stuck"
    SILENT = True

    def perturb(self, sensor: str, t: float, value: Any, last_good: Any) -> Any:
        return value if last_good is None else last_good


class OutOfRangeGlitch(SensorFault):
    """The reading spikes out of its physical range.

    Models an electrical glitch during conversion. Numeric readings are
    displaced by ``magnitude`` with a seeded random sign; non-numeric
    readings are replaced by the magnitude itself (recognisably
    garbage).
    """

    KIND = "glitch"
    SILENT = True

    def __init__(
        self,
        rate: float = 0.0,
        windows: Sequence[Tuple[float, float]] = (),
        seed: int = 0,
        magnitude: float = 1e3,
    ):
        super().__init__(rate, windows, seed)
        self.magnitude = float(magnitude)

    def perturb(self, sensor: str, t: float, value: Any, last_good: Any) -> Any:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            sign = 1.0 if self._rng.random() < 0.5 else -1.0
            return value + sign * self.magnitude
        return self.magnitude


class BurstDropout(SensorFault):
    """Consecutive accesses fail in bursts.

    Once triggered (by window or rate), the next ``burst_length - 1``
    accesses also fail — the bursty loss pattern of a marginal sensor
    connection, much harder on retry policies than independent
    per-sample faults.
    """

    KIND = "dropout"
    SILENT = False

    def __init__(
        self,
        rate: float = 0.0,
        windows: Sequence[Tuple[float, float]] = (),
        seed: int = 0,
        burst_length: int = 3,
    ):
        super().__init__(rate, windows, seed)
        if burst_length < 1:
            raise RuntimeConfigError(
                f"burst length must be >= 1, got {burst_length}"
            )
        self.burst_length = int(burst_length)
        self._burst_left = 0

    def fires(self, t: float) -> bool:
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        if super().fires(t):
            self._burst_left = self.burst_length - 1
            return True
        return False

    def perturb(self, sensor: str, t: float, value: Any, last_good: Any) -> Any:
        raise PeripheralError(sensor, self.KIND, t)


_FAULT_CLASSES = {
    TransientTimeout.KIND: TransientTimeout,
    StuckAtLastValue.KIND: StuckAtLastValue,
    OutOfRangeGlitch.KIND: OutOfRangeGlitch,
    BurstDropout.KIND: BurstDropout,
}


def _parse_window(text: str) -> Tuple[float, float]:
    start, sep, end = text.partition("-")
    if not sep:
        raise RuntimeConfigError(
            f"fault window must be 'start-end' seconds, got {text!r}"
        )
    return float(start), float(end)


def parse_fault_spec(text: str) -> Tuple[str, SensorFault]:
    """Parse a CLI fault spec into ``(sensor_name, fault)``.

    Format: ``sensor:kind:rate[:option=value]*`` where ``kind`` is one
    of ``timeout|stuck|glitch|dropout`` and options are ``seed=N``,
    ``burst=N`` (dropout), ``magnitude=X`` (glitch), and repeatable
    ``window=start-end`` (seconds). Example: ``ppg:dropout:0.1:seed=7``.
    """
    parts = text.split(":")
    if len(parts) < 3:
        raise RuntimeConfigError(
            f"fault spec must be 'sensor:kind:rate[:opt=val]*', got {text!r}"
        )
    sensor, kind, rate_text = parts[0], parts[1], parts[2]
    cls = _FAULT_CLASSES.get(kind)
    if cls is None:
        raise RuntimeConfigError(
            f"unknown fault kind {kind!r}; expected one of {', '.join(FAULT_KINDS)}"
        )
    try:
        rate = float(rate_text)
    except ValueError:
        raise RuntimeConfigError(
            f"fault rate must be a number, got {rate_text!r}"
        ) from None
    kwargs: dict = {"rate": rate}
    windows = []
    for option in parts[3:]:
        key, sep, value = option.partition("=")
        if not sep:
            raise RuntimeConfigError(f"fault option must be key=value, got {option!r}")
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "burst":
                if cls is not BurstDropout:
                    raise RuntimeConfigError(
                        "option 'burst' only applies to dropout faults")
                kwargs["burst_length"] = int(value)
            elif key == "magnitude":
                if cls is not OutOfRangeGlitch:
                    raise RuntimeConfigError(
                        "option 'magnitude' only applies to glitch faults")
                kwargs["magnitude"] = float(value)
            elif key == "window":
                windows.append(_parse_window(value))
            else:
                raise RuntimeConfigError(f"unknown fault option {key!r}")
        except ValueError:
            raise RuntimeConfigError(
                f"fault option {key!r} has a malformed value {value!r}"
            ) from None
    if windows:
        kwargs["windows"] = tuple(windows)
    return sensor, cls(**kwargs)
