"""Peripheral fault subsystem: flaky sensors for intermittent nodes.

Application sensors in this reproduction were infallible lambdas; real
harvested deployments lose peripherals transiently at least as often as
they lose power. This package wraps sensors in seeded, schedulable
fault models — transient bus timeout, stuck-at-last-value, out-of-range
glitch, and burst dropout — charges each access to the energy model's
``sense`` category, and surfaces every fault activation in the trace
and :class:`~repro.sim.result.RunResult` counters.

Raising faults surface to the runtime as
:class:`~repro.errors.PeripheralError`, where the retry/backoff layer
(:mod:`repro.core.retry`) re-executes the task; silent faults corrupt
values in ways only a property monitor can catch.
"""

from repro.peripherals.faults import (
    FAULT_KINDS,
    BurstDropout,
    OutOfRangeGlitch,
    SensorFault,
    StuckAtLastValue,
    TransientTimeout,
    parse_fault_spec,
)
from repro.peripherals.sensors import FaultySensor, PeripheralSet

__all__ = [
    "FAULT_KINDS",
    "SensorFault",
    "TransientTimeout",
    "StuckAtLastValue",
    "OutOfRangeGlitch",
    "BurstDropout",
    "parse_fault_spec",
    "FaultySensor",
    "PeripheralSet",
]
