"""Naive reference semantics for past-time MTL formulas.

Keeps the *entire* event history and evaluates the surface formula
(no normalization, no sharing, no constant-state tricks) directly from
the textbook definitions each time a new event arrives. Hopeless on a
harvested node — which is the point: it is the independent ground truth
the shared-subformula compiler is differential-tested against in
``tests/test_tl_differential.py``. It also supports constructs the
compiler rejects (``once[a,b]`` with a > 0), so tests can demonstrate
*why* those need unbounded state.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.tl.ast import (
    AndF,
    DataCmp,
    Ended,
    Formula,
    Historically,
    Implies,
    Lit,
    NotF,
    Once,
    OrF,
    Since,
    Started,
)

_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class ReferenceMonitor:
    """Full-history evaluator of one formula over a growing trace."""

    def __init__(self, formula: Formula):
        self.formula = formula
        self.events: List = []
        self._cache: Dict[Tuple[Formula, int], bool] = {}

    def update(self, event) -> bool:
        """Append ``event`` (any object with ``kind``, ``task``,
        ``timestamp`` and optional ``data``) and return whether the
        formula holds at it."""
        self.events.append(event)
        return self._eval(self.formula, len(self.events) - 1)

    @property
    def value(self) -> bool:
        """Truth at the most recent event (False on the empty trace)."""
        if not self.events:
            return False
        return self._eval(self.formula, len(self.events) - 1)

    # ------------------------------------------------------------------
    def _eval(self, f: Formula, i: int) -> bool:
        key = (f, i)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        value = self._eval_uncached(f, i)
        self._cache[key] = value
        return value

    def _eval_uncached(self, f: Formula, i: int) -> bool:
        event = self.events[i]
        if isinstance(f, Lit):
            return f.value
        if isinstance(f, Started):
            return event.kind == "startTask" and event.task == f.task
        if isinstance(f, Ended):
            return event.kind == "endTask" and event.task == f.task
        if isinstance(f, DataCmp):
            data = getattr(event, "data", None) or {}
            if f.key not in data:
                return False
            return _CMP[f.op](data[f.key], f.value)
        if isinstance(f, NotF):
            return not self._eval(f.operand, i)
        if isinstance(f, AndF):
            return self._eval(f.left, i) and self._eval(f.right, i)
        if isinstance(f, OrF):
            return self._eval(f.left, i) or self._eval(f.right, i)
        if isinstance(f, Implies):
            return (not self._eval(f.left, i)) or self._eval(f.right, i)
        if isinstance(f, Once):
            return any(self._in_window(f, i, j) and self._eval(f.operand, j)
                       for j in range(i + 1))
        if isinstance(f, Historically):
            return all(self._eval(f.operand, j)
                       for j in range(i + 1) if self._in_window(f, i, j))
        if isinstance(f, Since):
            # exists j <= i: q at j, and p at every k with j < k <= i
            for j in range(i, -1, -1):
                if self._eval(f.right, j):
                    return all(self._eval(f.left, k)
                               for k in range(j + 1, i + 1))
                if not self._eval(f.left, j):
                    return False
            return False
        raise TypeError(f"not a formula node: {f!r}")

    def _in_window(self, f, i: int, j: int) -> bool:
        if f.hi is None:
            return True
        age = self.events[i].timestamp - self.events[j].timestamp
        return f.lo <= age <= f.hi
