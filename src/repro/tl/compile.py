"""Shared-subformula DAG → intermediate-language state machines.

Only the *stateful* DAG nodes (``once``, ``once[0,b]``, ``since``)
become machines of their own; every purely boolean subformula folds
into the value expressions of its consumers. A 200-property spec over
a handful of temporal idioms therefore compiles to a few dozen
sub-monitors plus one single-state root machine per property.

Each stateful node gets a *value expression* readable at any event:

========================  =================================================
node                      value expression
========================  =================================================
``started(t)``            ``eventIs(startTask, t)``
``ended(t)``              ``eventIs(endTask, t)``
``data(k) op c``          ``hasData(k) and event.data.k op c``
``once p``                ``extern(M.seen)``
``once[0,b] p``           ``extern(M.seen) and ts - extern(M.last) <= b``
``p since q``             ``extern(M.val)``
========================  =================================================

where ``M`` is the node's sub-monitor, updated *before* any reader on
each event because machines are emitted in dependency order (children
first) and every execution backend — interpreter, generated Python,
generated C, lockstep batch — steps machines in list order.

A nonzero lower bound (``once[a,b]``, a > 0) is rejected upstream by
the validator: answering it exactly requires remembering every event
timestamp in the window (unbounded state), while ``a = 0`` needs only
the most recent witness — the one-scalar trick that keeps sub-monitor
NVM footprints constant.

Sub-monitor triggers are the *enumerated* event patterns that can make
the operand true (a ``once started(a) or ended(b)`` machine subscribes
to exactly two patterns); negation, data atoms, and nested temporal
operands force a wildcard subscription.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.statemachine.model import (
    ANY_EVENT,
    END_TASK,
    START_TASK,
    Assign,
    BinOp,
    Const,
    EventField,
    EventIs,
    EventPattern,
    Expr,
    ExternRef,
    Fail,
    HasData,
    Not,
    StateMachine,
    Transition,
    Var,
    Variable,
)
from repro.tl.ast import (
    AndF,
    DataCmp,
    Ended,
    Lit,
    NotF,
    Once,
    OrF,
    Since,
    Started,
)
from repro.tl.rewrite import Dag, DagNode, build_dag

_TS = EventField("timestamp")

#: Trigger pattern sets: ``None`` is the wildcard ("any event can flip
#: the value"), otherwise a finite set of (kind, task) pairs.
Patterns = Optional[FrozenSet[Tuple[str, str]]]


def _sub_name(node: DagNode) -> str:
    digest = hashlib.md5(node.key.encode()).hexdigest()[:8]
    if isinstance(node.formula, Since):
        op = "since"
    elif node.formula.bounded:  # type: ignore[union-attr]
        op = "onceb"
    else:
        op = "once"
    return f"tl_{op}_{digest}"


def val_expr(node: DagNode, names: Dict[str, str]) -> Expr:
    """Expression evaluating the node's truth at the current event."""
    f = node.formula
    if isinstance(f, Lit):
        return Const(f.value)
    if isinstance(f, Started):
        return EventIs(START_TASK, f.task)
    if isinstance(f, Ended):
        return EventIs(END_TASK, f.task)
    if isinstance(f, DataCmp):
        return BinOp(
            "and",
            HasData(f.key),
            BinOp(f.op, EventField(f"data.{f.key}"), Const(f.value)),
        )
    if isinstance(f, NotF):
        return Not(val_expr(node.children[0], names))
    if isinstance(f, AndF):
        return BinOp("and", val_expr(node.children[0], names),
                     val_expr(node.children[1], names))
    if isinstance(f, OrF):
        return BinOp("or", val_expr(node.children[0], names),
                     val_expr(node.children[1], names))
    if isinstance(f, Once):
        machine = names[node.key]
        seen = ExternRef(machine, "seen")
        if not f.bounded:
            return seen
        age = BinOp("-", _TS, ExternRef(machine, "last"))
        return BinOp("and", seen, BinOp("<=", age, Const(float(f.hi))))
    if isinstance(f, Since):
        return ExternRef(names[node.key], "val")
    raise TypeError(f"not a core formula node: {f!r}")


def trigger_patterns(node: DagNode) -> Patterns:
    """Over-approximate the events at which the node's value can be
    true (for enumerable atoms, the exact set)."""
    f = node.formula
    if isinstance(f, Lit):
        return None if f.value else frozenset()
    if isinstance(f, Started):
        return frozenset({(START_TASK, f.task)})
    if isinstance(f, Ended):
        return frozenset({(END_TASK, f.task)})
    if isinstance(f, AndF):
        left = trigger_patterns(node.children[0])
        right = trigger_patterns(node.children[1])
        if left is None:
            return right
        if right is None:
            return left
        return left & right
    if isinstance(f, OrF):
        left = trigger_patterns(node.children[0])
        right = trigger_patterns(node.children[1])
        if left is None or right is None:
            return None
        return left | right
    # DataCmp / NotF / Once / Since: value can flip on any event.
    return None


def _sub_triggers(node: DagNode) -> List[EventPattern]:
    operand = node.children[0] if not isinstance(node.formula, Since) else None
    patterns = trigger_patterns(operand) if operand is not None else None
    if patterns is None:
        return [EventPattern(ANY_EVENT)]
    return [EventPattern(kind, task) for kind, task in sorted(patterns)]


def _gen_once(node: DagNode, names: Dict[str, str]) -> StateMachine:
    """``once p`` — latch a witness; bounded form also records when."""
    f = node.formula
    assert isinstance(f, Once)
    variables = [Variable("seen", "bool", False)]
    body: Tuple = (Assign("seen", Const(True)),)
    if f.bounded:
        variables.append(Variable("last", "time", 0.0))
        body = body + (Assign("last", _TS),)
    operand = node.children[0]
    transitions = [
        Transition("S", "S", trigger, guard=val_expr(operand, names),
                   body=body)
        for trigger in _sub_triggers(node)
    ]
    return StateMachine(names[node.key], ["S"], "S",
                        variables=variables, transitions=transitions)


def _gen_since(node: DagNode, names: Dict[str, str]) -> StateMachine:
    """``p since q`` — the recurrence val = q or (p and val)."""
    p, q = node.children
    update = BinOp("or", val_expr(q, names),
                   BinOp("and", val_expr(p, names), Var("val")))
    return StateMachine(
        names[node.key], ["S"], "S",
        variables=[Variable("val", "bool", False)],
        transitions=[
            Transition("S", "S", EventPattern(ANY_EVENT),
                       body=(Assign("val", update),)),
        ],
    )


@dataclass
class TLCompilation:
    """Result of compiling a batch of temporal properties together.

    ``machines`` is the full dependency-ordered list: shared
    sub-monitors first (children before readers), then one root machine
    per property in declaration order. ``sub_owners`` maps each
    sub-monitor to the root machines that read it (directly or through
    other sub-monitors).
    """

    machines: List[StateMachine]
    sub_machines: List[StateMachine]
    root_machines: List[StateMachine]
    sub_owners: Dict[str, List[str]]
    dag: Dag

    @property
    def naive_monitors(self) -> int:
        """Machines per-property compilation would emit (one per
        stateful occurrence plus one root each)."""
        return self.dag.naive_stateful + len(self.root_machines)

    @property
    def shared_monitors(self) -> int:
        return len(self.machines)

    @property
    def sharing_ratio(self) -> float:
        if self.naive_monitors == 0:
            return 1.0
        return self.shared_monitors / self.naive_monitors


def _action_name(on_fail) -> str:
    return getattr(on_fail, "value", None) or str(on_fail)


def _gen_root(prop, root: DagNode, names: Dict[str, str]) -> StateMachine:
    if prop.at == "start":
        trigger = EventPattern(START_TASK, prop.task)
    elif prop.at == "end":
        trigger = EventPattern(END_TASK, prop.task)
    else:  # "always"
        trigger = EventPattern(ANY_EVENT)
    guard: Expr = Not(val_expr(root, names))
    if prop.path is not None:
        guard = BinOp(
            "and",
            BinOp("==", EventField("path"), Const(prop.path)),
            guard,
        )
    return StateMachine(
        prop.machine_name(),
        states=["Watching"],
        initial="Watching",
        transitions=[
            Transition("Watching", "Watching", trigger, guard=guard,
                       body=(Fail(_action_name(prop.on_fail), prop.path),)),
        ],
        priority=int(getattr(prop, "priority", 0)),
    )


def compile_temporal(props: Sequence, share: bool = True) -> TLCompilation:
    """Compile temporal properties into one dependency-ordered machine
    list with (by default) sub-monitors shared across properties.

    ``props`` are :class:`repro.core.properties.Temporal` instances
    (duck-typed here to keep this package free of core imports).
    """
    props = list(props)
    dag = build_dag([p.formula for p in props], share=share)

    names: Dict[str, str] = {}
    sub_machines: List[StateMachine] = []
    for node in dag.nodes:  # dependency order: children first
        if not node.stateful:
            continue
        names[node.key] = _sub_name(node)
        if isinstance(node.formula, Since):
            sub_machines.append(_gen_since(node, names))
        else:
            sub_machines.append(_gen_once(node, names))

    root_machines = [
        _gen_root(prop, root, names)
        for prop, root in zip(props, dag.roots)
    ]

    sub_owners: Dict[str, List[str]] = {}
    for prop, root in zip(props, dag.roots):
        seen: set = set()
        stack = [root]
        while stack:
            n = stack.pop()
            if n.key in seen:
                continue
            seen.add(n.key)
            stack.extend(n.children)
            if n.stateful:
                sub_owners.setdefault(names[n.key], []).append(
                    prop.machine_name())

    return TLCompilation(
        machines=sub_machines + root_machines,
        sub_machines=sub_machines,
        root_machines=root_machines,
        sub_owners=sub_owners,
        dag=dag,
    )
