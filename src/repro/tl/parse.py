"""Recursive-descent parser and printer for past-time MTL formulas.

Operates directly on the spec lexer's token stream so the ``temporal``
property form embeds in the specification grammar without a second
tokenizer. Precedence, loosest binding first::

    implies   p -> q            (right-associative)
    since     p since q         (left-associative)
    or        p or q
    and       p and q
    unary     not p | once p | once[0,5s] p | historically p
    primary   started(t) | ended(t) | data(k) >= 3 | true | false | (p)

Future-time operators (``eventually``, ``always``, ``until``, ``next``,
``globally``, ``finally``) are reserved words: using one raises a
sourced :class:`~repro.errors.SpecSyntaxError` whose hint names the
monitorable past-time dual. ``format_formula`` is the exact inverse of
the parser (minimal parenthesization), property-tested in
``tests/test_tl_parser.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SpecSyntaxError
from repro.spec.lexer import Token, tokenize
from repro.spec.units import format_duration, parse_duration
from repro.tl.ast import (
    CMP_OPS,
    AndF,
    DataCmp,
    Ended,
    Formula,
    Historically,
    Implies,
    Lit,
    NotF,
    Once,
    OrF,
    Since,
    Started,
)

#: Future-time operators we reject with a pointer at the past-time dual.
FUTURE_OPERATORS = {
    "eventually": "once",
    "finally": "once",
    "always": "historically",
    "globally": "historically",
    "until": "since",
    "next": "a past-time formula over the previous event",
}

_UNARY_OPS = ("not", "once", "historically")


class _FormulaParser:
    """Cursor over a shared token list; never consumes past the formula."""

    def __init__(self, tokens: List[Token], pos: int):
        self.tokens = tokens
        self.pos = pos

    # -- token helpers ----------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if tok.kind != "punct" or tok.text != text:
            raise SpecSyntaxError(
                f"expected {text!r} in temporal formula, got {tok!s}",
                tok.line, tok.column, width=len(tok.text) or 1)
        return tok

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Formula:
        return self._implies()

    def _implies(self) -> Formula:
        left = self._since()
        tok = self._peek()
        if tok.kind == "arrow":
            self._next()
            right = self._implies()  # right-associative
            return Implies(left, right, line=tok.line, column=tok.column)
        return left

    def _since(self) -> Formula:
        left = self._or()
        while self._peek().text in ("since", "until"):
            tok = self._next()
            if tok.text == "until":
                # Infix position: _unary's reserved-word check never
                # sees it, so the dual-pointing rejection lives here.
                raise SpecSyntaxError(
                    "future-time operator 'until' is not monitorable "
                    "online", tok.line, tok.column, width=len(tok.text),
                    hint="runtime monitors see only the past; use the "
                         "past-time dual (since)")
            if self._peek().text == "[":
                bracket = self._peek()
                raise SpecSyntaxError(
                    "'since' does not take a time bound",
                    bracket.line, bracket.column,
                    hint="bound the query instead: p since q with a "
                         "window is expressible as (p since q) and "
                         "once[0,b] q")
            right = self._or()
            left = Since(left, right, line=tok.line, column=tok.column)
        return left

    def _or(self) -> Formula:
        left = self._and()
        while self._peek().text == "or":
            tok = self._next()
            left = OrF(left, self._and(), line=tok.line, column=tok.column)
        return left

    def _and(self) -> Formula:
        left = self._unary()
        while self._peek().text == "and":
            tok = self._next()
            left = AndF(left, self._unary(), line=tok.line, column=tok.column)
        return left

    def _unary(self) -> Formula:
        tok = self._peek()
        if tok.kind == "ident" and tok.text in FUTURE_OPERATORS:
            dual = FUTURE_OPERATORS[tok.text]
            raise SpecSyntaxError(
                f"future-time operator {tok.text!r} is not monitorable "
                "online", tok.line, tok.column, width=len(tok.text),
                hint=f"runtime monitors see only the past; use the "
                     f"past-time dual ({dual})")
        if tok.text == "not":
            self._next()
            return NotF(self._unary(), line=tok.line, column=tok.column)
        if tok.text in ("once", "historically"):
            self._next()
            lo, hi = self._bound()
            node = Once if tok.text == "once" else Historically
            return node(self._unary(), lo, hi,
                        line=tok.line, column=tok.column)
        return self._primary()

    def _bound(self) -> Tuple[Optional[float], Optional[float]]:
        if self._peek().text != "[":
            return None, None
        open_tok = self._next()
        lo = self._bound_value()
        self._expect_punct(",")
        hi = self._bound_value()
        self._expect_punct("]")
        if hi < lo:
            raise SpecSyntaxError(
                f"empty time interval [{lo:g}s, {hi:g}s]",
                open_tok.line, open_tok.column,
                hint="the interval's lower bound must not exceed its "
                     "upper bound")
        return lo, hi

    def _bound_value(self) -> float:
        tok = self._next()
        if tok.kind == "minus":
            num = self._next()
            raise SpecSyntaxError(
                f"negative time bound -{num.text}", tok.line, tok.column,
                hint="past-time windows reach backwards already; bounds "
                     "must be non-negative")
        if tok.kind == "duration":
            return parse_duration(tok.text, tok.line, tok.column)
        if tok.kind == "number":
            return float(tok.text)
        raise SpecSyntaxError(
            f"expected a duration in time bound, got {tok!s}",
            tok.line, tok.column, width=len(tok.text) or 1)

    def _primary(self) -> Formula:
        tok = self._next()
        if tok.kind == "punct" and tok.text == "(":
            inner = self.parse()
            self._expect_punct(")")
            return inner
        if tok.text == "true":
            return Lit(True, line=tok.line, column=tok.column)
        if tok.text == "false":
            return Lit(False, line=tok.line, column=tok.column)
        if tok.text in ("started", "ended"):
            self._expect_punct("(")
            task = self._next()
            if task.kind != "ident":
                raise SpecSyntaxError(
                    f"expected a task name, got {task!s}",
                    task.line, task.column, width=len(task.text) or 1)
            self._expect_punct(")")
            node = Started if tok.text == "started" else Ended
            return node(task.text, line=tok.line, column=tok.column)
        if tok.text == "data":
            self._expect_punct("(")
            key = self._next()
            if key.kind != "ident":
                raise SpecSyntaxError(
                    f"expected a data key, got {key!s}",
                    key.line, key.column, width=len(key.text) or 1)
            self._expect_punct(")")
            op = self._next()
            if op.kind != "cmp" or op.text not in CMP_OPS:
                raise SpecSyntaxError(
                    f"expected a comparison after data({key.text}), "
                    f"got {op!s}", op.line, op.column,
                    width=len(op.text) or 1)
            sign = 1.0
            num = self._next()
            if num.kind == "minus":
                sign = -1.0
                num = self._next()
            if num.kind == "number":
                value = sign * float(num.text)
            elif num.kind == "duration":
                value = sign * parse_duration(num.text, num.line, num.column)
            else:
                raise SpecSyntaxError(
                    f"expected a number, got {num!s}",
                    num.line, num.column, width=len(num.text) or 1)
            return DataCmp(key.text, op.text, value,
                           line=tok.line, column=tok.column)
        raise SpecSyntaxError(
            f"expected a temporal formula, got {tok!s}",
            tok.line, tok.column, width=len(tok.text) or 1)


def parse_formula(tokens: List[Token], pos: int) -> Tuple[Formula, int]:
    """Parse one formula starting at ``tokens[pos]``; returns the
    formula and the index of the first unconsumed token."""
    parser = _FormulaParser(tokens, pos)
    formula = parser.parse()
    return formula, parser.pos


def parse_formula_text(source: str) -> Formula:
    """Parse a standalone formula string (tests and the library API)."""
    tokens = tokenize(source)
    formula, pos = parse_formula(tokens, 0)
    trailing = tokens[pos]
    if trailing.kind != "eof":
        raise SpecSyntaxError(
            f"trailing input after formula: {trailing!s}",
            trailing.line, trailing.column, width=len(trailing.text) or 1)
    return formula


# ---------------------------------------------------------------------------
# Printer (exact inverse of the parser)
# ---------------------------------------------------------------------------

_LEVEL_IMPLIES, _LEVEL_SINCE, _LEVEL_OR, _LEVEL_AND, _LEVEL_UNARY, \
    _LEVEL_ATOM = range(1, 7)


def _level(f: Formula) -> int:
    if isinstance(f, Implies):
        return _LEVEL_IMPLIES
    if isinstance(f, Since):
        return _LEVEL_SINCE
    if isinstance(f, OrF):
        return _LEVEL_OR
    if isinstance(f, AndF):
        return _LEVEL_AND
    if isinstance(f, (NotF, Once, Historically)):
        return _LEVEL_UNARY
    return _LEVEL_ATOM


def _bound_text(lo: Optional[float], hi: Optional[float]) -> str:
    if hi is None:
        return ""
    fmt = lambda s: "0" if s == 0 else format_duration(s)  # noqa: E731
    return f"[{fmt(lo)}, {fmt(hi)}]"


def _num_text(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt(f: Formula, need: int) -> str:
    text = _fmt_node(f)
    if _level(f) < need:
        return f"({text})"
    return text


def _fmt_node(f: Formula) -> str:
    if isinstance(f, Lit):
        return "true" if f.value else "false"
    if isinstance(f, Started):
        return f"started({f.task})"
    if isinstance(f, Ended):
        return f"ended({f.task})"
    if isinstance(f, DataCmp):
        return f"data({f.key}) {f.op} {_num_text(f.value)}"
    if isinstance(f, NotF):
        return f"not {_fmt(f.operand, _LEVEL_UNARY)}"
    if isinstance(f, Once):
        return f"once{_bound_text(f.lo, f.hi)} {_fmt(f.operand, _LEVEL_UNARY)}"
    if isinstance(f, Historically):
        return (f"historically{_bound_text(f.lo, f.hi)} "
                f"{_fmt(f.operand, _LEVEL_UNARY)}")
    if isinstance(f, AndF):
        return f"{_fmt(f.left, _LEVEL_AND)} and {_fmt(f.right, _LEVEL_AND + 1)}"
    if isinstance(f, OrF):
        return f"{_fmt(f.left, _LEVEL_OR)} or {_fmt(f.right, _LEVEL_OR + 1)}"
    if isinstance(f, Since):
        return (f"{_fmt(f.left, _LEVEL_SINCE)} since "
                f"{_fmt(f.right, _LEVEL_SINCE + 1)}")
    if isinstance(f, Implies):
        return (f"{_fmt(f.left, _LEVEL_IMPLIES + 1)} -> "
                f"{_fmt(f.right, _LEVEL_IMPLIES)}")
    raise TypeError(f"not a formula node: {f!r}")


def format_formula(f: Formula) -> str:
    """Render a formula in the surface syntax with minimal parentheses;
    ``parse_formula_text(format_formula(f)) == f`` for every formula."""
    return _fmt(f, _LEVEL_IMPLIES)
