"""Normalization and shared-subformula DAG construction.

``normalize`` rewrites a surface formula into a small core language:
``->`` becomes ``or``/``not``, ``historically`` becomes the dual
``not once not``, double negations cancel, constants fold, and the
operands of the commutative connectives are ordered by canonical key so
``a and b`` and ``b and a`` normalize identically. The core language
after normalization is: literals, event/data atoms, ``not``, ``and``,
``or``, ``once`` (bounded or not) and ``since``.

``build_dag`` then hash-conses the normalized formulas of *many*
properties into one DAG keyed on :func:`repro.tl.ast.formula_key`:
structurally equal subformulas become a single node regardless of which
property mentions them. Only ``once``/``since`` nodes carry runtime
state, so the DAG's unique stateful nodes are exactly the sub-monitors
the compiler must emit — the naive-versus-shared counts reported here
are the sharing win the ``compile`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.tl.ast import (
    AndF,
    DataCmp,
    Ended,
    Formula,
    Historically,
    Implies,
    Lit,
    NotF,
    Once,
    OrF,
    Since,
    Started,
    children,
    formula_key,
    walk_formula,
)

# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def _not(p: Formula, line: int = 0, column: int = 0) -> Formula:
    if isinstance(p, Lit):
        return Lit(not p.value, line=line, column=column)
    if isinstance(p, NotF):
        return p.operand
    return NotF(p, line=line, column=column)


def _ordered(left: Formula, right: Formula) -> Tuple[Formula, Formula]:
    if formula_key(right) < formula_key(left):
        return right, left
    return left, right


def _and(left: Formula, right: Formula, line: int = 0,
         column: int = 0) -> Formula:
    if isinstance(left, Lit):
        return right if left.value else left
    if isinstance(right, Lit):
        return left if right.value else right
    if formula_key(left) == formula_key(right):
        return left
    left, right = _ordered(left, right)
    return AndF(left, right, line=line, column=column)


def _or(left: Formula, right: Formula, line: int = 0,
        column: int = 0) -> Formula:
    if isinstance(left, Lit):
        return left if left.value else right
    if isinstance(right, Lit):
        return right if right.value else left
    if formula_key(left) == formula_key(right):
        return left
    left, right = _ordered(left, right)
    return OrF(left, right, line=line, column=column)


def _once(operand: Formula, lo, hi, line: int = 0,
          column: int = 0) -> Formula:
    # once true / once false are the literal itself (the current instant
    # is always inside a [0,b] window, and the unbounded window includes
    # now); once of an already-monotone once folds to the wider query.
    if isinstance(operand, Lit):
        return operand
    if hi is None and isinstance(operand, Once) and operand.hi is None:
        return operand
    return Once(operand, lo, hi, line=line, column=column)


def _since(left: Formula, right: Formula, line: int = 0,
           column: int = 0) -> Formula:
    # val_i = q_i or (p_i and val_{i-1}) — fold the constant operands.
    if isinstance(right, Lit):
        return right
    if isinstance(left, Lit):
        return _once(right, None, None, line, column) if left.value else right
    return Since(left, right, line=line, column=column)


def normalize(f: Formula) -> Formula:
    """Rewrite ``f`` into the core language (idempotent)."""
    if isinstance(f, (Lit, Started, Ended, DataCmp)):
        return f
    if isinstance(f, NotF):
        return _not(normalize(f.operand), f.line, f.column)
    if isinstance(f, AndF):
        return _and(normalize(f.left), normalize(f.right), f.line, f.column)
    if isinstance(f, OrF):
        return _or(normalize(f.left), normalize(f.right), f.line, f.column)
    if isinstance(f, Implies):
        return _or(_not(normalize(f.left), f.line, f.column),
                   normalize(f.right), f.line, f.column)
    if isinstance(f, Once):
        return _once(normalize(f.operand), f.lo, f.hi, f.line, f.column)
    if isinstance(f, Historically):
        # historically[I] p  ==  not once[I] not p
        inner = _not(normalize(f.operand), f.line, f.column)
        return _not(_once(inner, f.lo, f.hi, f.line, f.column),
                    f.line, f.column)
    if isinstance(f, Since):
        return _since(normalize(f.left), normalize(f.right),
                      f.line, f.column)
    raise TypeError(f"not a formula node: {f!r}")


def is_stateful(f: Formula) -> bool:
    """True when the (normalized) node needs runtime state of its own —
    exactly the nodes the compiler emits sub-monitor machines for."""
    return isinstance(f, (Once, Since))


# ---------------------------------------------------------------------------
# Shared-subformula DAG
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DagNode:
    """One unique (normalized) subformula in the DAG."""

    key: str
    formula: Formula
    children: Tuple["DagNode", ...]
    index: int

    @property
    def stateful(self) -> bool:
        return is_stateful(self.formula)


@dataclass
class Dag:
    """Hash-consed subformula DAG over one or more root formulas.

    ``nodes`` is in dependency order (children strictly before parents),
    so walking it front to back visits every subformula after the
    subformulas it reads — the same order the compiler emits machines
    in. ``naive_stateful`` counts stateful *occurrences* across all root
    trees (what per-property compilation would emit); the stateful nodes
    actually present in ``nodes`` are what sharing reduced that to.
    """

    nodes: List[DagNode] = field(default_factory=list)
    roots: List[DagNode] = field(default_factory=list)
    node_for_key: Dict[str, DagNode] = field(default_factory=dict)
    naive_stateful: int = 0

    @property
    def stateful_nodes(self) -> List[DagNode]:
        return [n for n in self.nodes if n.stateful]

    @property
    def shared_stateful(self) -> int:
        return len(self.stateful_nodes)


def build_dag(roots: Sequence[Formula], share: bool = True) -> Dag:
    """Normalize ``roots`` and hash-cons them into a :class:`Dag`.

    With ``share=False`` every root gets a private key namespace, so
    nothing is shared *across* properties (duplicate subformulas within
    one property still collapse) — the baseline the sharing ratio is
    measured against.
    """
    dag = Dag()

    def intern(f: Formula, salt: str) -> DagNode:
        key = salt + formula_key(f)
        hit = dag.node_for_key.get(key)
        if hit is not None:
            return hit
        kids = tuple(intern(c, salt) for c in children(f))
        node = DagNode(key=key, formula=f, children=kids,
                       index=len(dag.nodes))
        dag.nodes.append(node)
        dag.node_for_key[key] = node
        return node

    for i, root in enumerate(roots):
        normalized = normalize(root)
        dag.naive_stateful += sum(
            1 for sub in walk_formula(normalized) if is_stateful(sub))
        salt = "" if share else f"{i}#"
        dag.roots.append(intern(normalized, salt))
    return dag
