"""Past-time MTL frontend: temporal properties over task events.

``repro.tl`` extends the specification language beyond the paper's six
fixed property kinds with a ``temporal`` property form — past-time
metric temporal logic over task events (``started(t)`` / ``ended(t)``)
and collected-data predicates (``data(key) > c``), in the style of
Reelay's discrete-time past-MTL monitors (see PAPERS.md).

The pipeline:

* :mod:`~repro.tl.ast` — the surface formula AST (boolean connectives,
  ``once`` / ``historically`` / ``since``, bounded ``once[0,b]`` /
  ``historically[0,b]``);
* :mod:`~repro.tl.parse` — a recursive-descent formula parser over the
  spec lexer's token stream, with sourced diagnostics for future-time
  operators and ill-timed bounds;
* :mod:`~repro.tl.rewrite` — normalization (implication/historically
  elimination, double negation, constant folding, commutative operand
  ordering) plus hash-consing of structurally equal subformulas into a
  shared-subformula DAG (the multi-property monitoring trick);
* :mod:`~repro.tl.compile` — DAG nodes with temporal state become
  sub-monitor state machines in the existing intermediate language;
  each property becomes a one-state root machine whose guard reads the
  sub-monitors through ``extern(...)`` expressions, wired in
  :func:`repro.statemachine.compose.dependency_order`;
* :mod:`~repro.tl.reference` — a naive full-history reference monitor
  the compiled DAG is differential-tested against.
"""

from repro.tl.ast import (
    AndF,
    DataCmp,
    Ended,
    Formula,
    Historically,
    Implies,
    Lit,
    NotF,
    Once,
    OrF,
    Since,
    Started,
    formula_key,
    walk_formula,
)
from repro.tl.compile import TLCompilation, compile_temporal
from repro.tl.parse import format_formula, parse_formula, parse_formula_text
from repro.tl.reference import ReferenceMonitor
from repro.tl.rewrite import Dag, build_dag, normalize

__all__ = [
    "AndF",
    "DataCmp",
    "Ended",
    "Formula",
    "Historically",
    "Implies",
    "Lit",
    "NotF",
    "Once",
    "OrF",
    "Since",
    "Started",
    "formula_key",
    "walk_formula",
    "parse_formula",
    "parse_formula_text",
    "format_formula",
    "normalize",
    "build_dag",
    "Dag",
    "compile_temporal",
    "TLCompilation",
    "ReferenceMonitor",
]
