"""Surface AST of the past-time MTL formula language.

Nodes are frozen dataclasses so formulas are hashable and structurally
comparable — the rewriter's hash-consing and the parser↔printer
round-trip tests both lean on that. Source positions ride along in
``compare=False`` fields: two formulas differing only in where they
were written are equal (and hash equal), but diagnostics can still
point at the offending token.

Time bounds are stored in seconds (floats), already converted from the
spec language's duration literals (``5s``, ``100ms``, ``2min``). Only a
zero lower bound is monitorable with constant state (see
:mod:`repro.tl.compile`); the validator enforces that, the AST itself
represents whatever was written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

#: Comparison operators a data atom supports.
CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


def _pos_field() -> int:
    return field(default=0, compare=False)  # type: ignore[return-value]


@dataclass(frozen=True)
class Lit:
    """Boolean literal ``true`` / ``false``."""

    value: bool
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class Started:
    """Event atom: the current event is ``startTask(task)``."""

    task: str
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class Ended:
    """Event atom: the current event is ``endTask(task)``."""

    task: str
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class DataCmp:
    """Data atom ``data(key) <op> value``.

    False on events that carry no ``key`` in their dependent data — a
    total predicate, unlike the raw ``event.data.<key>`` field access.
    """

    key: str
    op: str
    value: float
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class NotF:
    operand: "Formula"
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class AndF:
    left: "Formula"
    right: "Formula"
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class OrF:
    left: "Formula"
    right: "Formula"
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class Implies:
    left: "Formula"
    right: "Formula"
    line: int = _pos_field()
    column: int = _pos_field()


@dataclass(frozen=True)
class Once:
    """``once p`` (unbounded) or ``once[lo,hi] p`` (bounded).

    ``lo``/``hi`` are seconds; both ``None`` for the unbounded form.
    """

    operand: "Formula"
    lo: Optional[float] = None
    hi: Optional[float] = None
    line: int = _pos_field()
    column: int = _pos_field()

    @property
    def bounded(self) -> bool:
        return self.hi is not None


@dataclass(frozen=True)
class Historically:
    """``historically p`` / ``historically[lo,hi] p`` — the dual of
    ``once``: p held at every past instant (in the window)."""

    operand: "Formula"
    lo: Optional[float] = None
    hi: Optional[float] = None
    line: int = _pos_field()
    column: int = _pos_field()

    @property
    def bounded(self) -> bool:
        return self.hi is not None


@dataclass(frozen=True)
class Since:
    """``p since q``: q held at some past instant and p has held ever
    since (strictly after it, inclusively at the current instant)."""

    left: "Formula"
    right: "Formula"
    line: int = _pos_field()
    column: int = _pos_field()


Formula = Union[Lit, Started, Ended, DataCmp, NotF, AndF, OrF, Implies,
                Once, Historically, Since]


def _bound_key(lo: Optional[float], hi: Optional[float]) -> str:
    if hi is None:
        return ""
    return f"[{lo:g},{hi:g}]"


def formula_key(f: Formula) -> str:
    """Canonical structural key of a formula — equal formulas (positions
    aside) get equal keys. The rewriter hash-conses on this, and the
    compiler derives content-addressed sub-monitor names from it."""
    if isinstance(f, Lit):
        return "T" if f.value else "F"
    if isinstance(f, Started):
        return f"started({f.task})"
    if isinstance(f, Ended):
        return f"ended({f.task})"
    if isinstance(f, DataCmp):
        return f"data({f.key}){f.op}{f.value:g}"
    if isinstance(f, NotF):
        return f"!({formula_key(f.operand)})"
    if isinstance(f, AndF):
        return f"&({formula_key(f.left)},{formula_key(f.right)})"
    if isinstance(f, OrF):
        return f"|({formula_key(f.left)},{formula_key(f.right)})"
    if isinstance(f, Implies):
        return f">({formula_key(f.left)},{formula_key(f.right)})"
    if isinstance(f, Once):
        return f"O{_bound_key(f.lo, f.hi)}({formula_key(f.operand)})"
    if isinstance(f, Historically):
        return f"H{_bound_key(f.lo, f.hi)}({formula_key(f.operand)})"
    if isinstance(f, Since):
        return f"S({formula_key(f.left)},{formula_key(f.right)})"
    raise TypeError(f"not a formula node: {f!r}")


def children(f: Formula) -> List[Formula]:
    """Immediate subformulas, left to right."""
    if isinstance(f, (Lit, Started, Ended, DataCmp)):
        return []
    if isinstance(f, (NotF, Once, Historically)):
        return [f.operand]
    if isinstance(f, (AndF, OrF, Implies, Since)):
        return [f.left, f.right]
    raise TypeError(f"not a formula node: {f!r}")


def walk_formula(f: Formula) -> List[Formula]:
    """The formula and all of its descendants, pre-order."""
    out = [f]
    for child in children(f):
        out.extend(walk_formula(child))
    return out
