"""Persistent step-sequence execution (local continuations).

An :class:`ImmortalRoutine` runs a list of steps while keeping a program
counter in NVM — the analogue of ImmortalThreads' ``_begin``/``_end``
macros around the generated monitor code (paper Figure 10). If a power
failure interrupts step *i*, the next :meth:`resume` re-executes from
step *i*: steps must therefore be *failure-atomic*, which holds in this
simulation because effects are applied only after the step's energy has
been fully paid (the device raises :class:`~repro.errors.PowerFailure`
inside the payment, before any effect).
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.errors import ReproError
from repro.nvm.memory import NonVolatileMemory

#: Program-counter value meaning "no routine in progress".
_IDLE = -1

Step = Callable[[], None]


class ImmortalRoutine:
    """A restartable sequence of steps with a persistent program counter.

    Usage::

        routine = ImmortalRoutine(nvm, "callMonitor")
        routine.run(steps)          # may raise PowerFailure mid-way
        ...
        if routine.in_progress:     # after reboot
            routine.resume(steps)   # re-runs only the unfinished suffix
    """

    def __init__(self, nvm: NonVolatileMemory, name: str):
        # The persistent PC is the canonical progress cell: it exists to
        # be read back differently after a crash (WAR-exempt).
        self._pc = nvm.alloc(f"imm.{name}.pc", initial=_IDLE, size_bytes=2,
                             progress=True)
        self._total = nvm.alloc(f"imm.{name}.total", initial=0, size_bytes=2,
                                progress=True)
        self.name = name

    @property
    def in_progress(self) -> bool:
        return self._pc.get() != _IDLE

    @property
    def next_step(self) -> int:
        """Index of the first step that has not completed."""
        pc = self._pc.get()
        return 0 if pc == _IDLE else pc

    def run(self, steps: Sequence[Step]) -> None:
        """Start the routine from step 0 (``_begin``).

        Raises :class:`~repro.errors.ReproError` if a previous run is
        still unfinished — callers must :meth:`resume` first, exactly as
        the paper's runtime calls ``monitorFinalize`` before anything
        else after a reboot.
        """
        if self.in_progress:
            raise ReproError(
                f"routine {self.name!r} interrupted at step {self.next_step}; "
                "resume() it before starting a new run"
            )
        self._total.set(len(steps))
        self._pc.set(0)
        self._execute(steps, 0)

    def resume(self, steps: Sequence[Step]) -> bool:
        """Finish an interrupted run; returns ``True`` if there was one.

        The caller must supply the *same* step sequence the interrupted
        run used (the generated monitor's step list is static, so this
        holds by construction).
        """
        if not self.in_progress:
            return False
        if len(steps) != self._total.get():
            raise ReproError(
                f"routine {self.name!r}: resume with {len(steps)} steps, "
                f"but the interrupted run had {self._total.get()}"
            )
        self._execute(steps, self.next_step)
        return True

    def _execute(self, steps: Sequence[Step], start: int) -> None:
        for i in range(start, len(steps)):
            steps[i]()  # PowerFailure here leaves pc at i — step re-runs
            self._pc.set(i + 1)
        self._pc.set(_IDLE)  # _end


class PersistentList:
    """Small NVM-backed append-only list (e.g. verdicts gathered across
    an interrupted monitor call)."""

    def __init__(self, nvm: NonVolatileMemory, name: str, size_bytes: int = 64):
        # Append is a same-cell read-modify-write; duplicate appends
        # after re-execution are deduplicated by the consumer's seq
        # protocol (MonitorGroup.finalize), so the cell is WAR-exempt.
        self._cell = nvm.alloc(f"plist.{name}", initial=(),
                               size_bytes=size_bytes, progress=True)

    def append(self, item: Any) -> None:
        self._cell.set(self._cell.get() + (item,))

    def items(self) -> List[Any]:
        return list(self._cell.get())

    def clear(self) -> None:
        self._cell.set(())

    def __len__(self) -> int:
        return len(self._cell.get())
