"""ImmortalThreads-style power-failure-resilient execution.

The paper generates its monitors with the ImmortalThreads library
(OSDI '22): C macros implementing *local continuations* so a routine
interrupted by a power failure resumes from its last completed step,
with all its variables in non-volatile memory. This package provides the
Python equivalent used by :class:`repro.core.monitor.ArtemisMonitor`.
"""

from repro.immortal.continuations import ImmortalRoutine

__all__ = ["ImmortalRoutine"]
