"""A second workload: a batteryless wildlife trap camera.

Modelled on Camaroptera-class remote image sensors (cited in the
paper's motivation): a solar/RF-harvesting camera node that detects
motion, captures and compresses a frame, runs local inference, and
uplinks either a detection summary or — for high-confidence detections
— a thumbnail. Exercises the framework differently than the health
benchmark:

* much lumpier energy profile (capture and uplink are two orders above
  the PIR polling);
* `period` keeps the motion poll honest across outages;
* `energyAtLeast` gates the expensive capture so it is not attempted on
  a nearly-flat capacitor (§4.2.2's motivating use);
* `maxDuration` bounds end-to-end detection latency;
* a `dpData` range routes high-confidence detections to the emergency
  (completePath) uplink, mirroring Figure 5's pattern in a second
  domain.

Paths:

1. ``pirPoll → wake`` — cheap motion polling.
2. ``capture → compress → infer → uplinkMeta`` — the detection pipeline.
3. ``thumbnail → uplinkImage`` — opportunistic image upload.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.core.runtime import ArtemisRuntime
from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.app import Application
from repro.taskgraph.builder import AppBuilder

#: Detection pipeline property set.
CAMERA_SPEC = """
pirPoll {
    period: 30s jitter: 10s onFail: restartPath maxAttempt: 5 onFail: skipPath;
}

capture {
    energyAtLeast: 0.020 onFail: restartTask;
    maxTries: 8 onFail: skipPath;
}

infer {
    collect: 1 dpTask: capture onFail: restartPath;
    dpData: confidence Range: [0, 0.85] onFail: completePath;
}

uplinkMeta {
    MITD: 2min dpTask: infer onFail: restartPath maxAttempt: 3 onFail: skipPath;
    maxDuration: 10min onFail: skipTask;
}

uplinkImage {
    energyAtLeast: 0.030 onFail: restartTask;
    maxTries: 12 onFail: skipPath;
}
"""


def _pir_poll(ctx) -> None:
    ctx.write("motion", ctx.sample("pir"))


def _wake(ctx) -> None:
    ctx.write("armed", bool(ctx.read("motion", 0.0)))


def _capture(ctx) -> None:
    ctx.write("frame", {"t": ctx.now(), "luma": ctx.sample("luminance")})


def _compress(ctx) -> None:
    frame = ctx.read("frame", {})
    ctx.write("jpeg", {"t": frame.get("t"), "kb": 12.0})


def _infer(ctx) -> None:
    frame = ctx.read("frame", {})
    # Confidence rises with scene luminance in this synthetic model.
    confidence = max(0.0, min(1.0, 0.3 + 0.6 * frame.get("luma", 0.0)))
    ctx.write("confidence", confidence)
    ctx.emit("confidence", confidence)


def _uplink_meta(ctx) -> None:
    ctx.append("uplinked", {"kind": "meta", "t": ctx.now(),
                            "confidence": ctx.read("confidence")})


def _thumbnail(ctx) -> None:
    jpeg = ctx.read("jpeg", {})
    ctx.write("thumb", {"kb": jpeg.get("kb", 12.0) / 4})


def _uplink_image(ctx) -> None:
    ctx.append("uplinked", {"kind": "image", "t": ctx.now(),
                            "thumb": ctx.read("thumb")})


def build_camera_app(
    luminance_of_t: Optional[Callable[[float], float]] = None,
) -> Application:
    """Construct the trap-camera application.

    Args:
        luminance_of_t: scene luminance sensor in [0, 1]; drives the
            inference confidence. Defaults to a dim scene (confidence
            stays under the 0.85 emergency threshold); pass e.g.
            ``lambda t: 1.0`` for a high-confidence detection that
            triggers the completePath image upload.
    """
    luminance = luminance_of_t if luminance_of_t is not None else (
        lambda t: 0.4 + 0.1 * math.sin(t / 120.0))
    return (
        AppBuilder("trap_camera")
        .task("pirPoll", body=_pir_poll)
        .task("wake", body=_wake)
        .task("capture", body=_capture)
        .task("compress", body=_compress)
        .task("infer", body=_infer, monitored_vars=["confidence"])
        .task("uplinkMeta", body=_uplink_meta)
        .task("thumbnail", body=_thumbnail)
        .task("uplinkImage", body=_uplink_image)
        .path(1, ["pirPoll", "wake"])
        .path(2, ["capture", "compress", "infer", "uplinkMeta"])
        .path(3, ["thumbnail", "uplinkImage"])
        .sensor("pir", lambda t: 1.0)
        .sensor("luminance", luminance)
        .build()
    )


def camera_power_model() -> PowerModel:
    """Per-task costs: capture and radio dwarf everything else."""
    return PowerModel({
        "pirPoll": TaskCost(0.05, 0.2e-3),
        "wake": TaskCost(0.02, 0.35e-3),
        "capture": TaskCost(1.2, 15e-3),      # 18 mJ: image sensor burst
        "compress": TaskCost(2.0, 0.8e-3),
        "infer": TaskCost(3.0, 1.0e-3),
        "uplinkMeta": TaskCost(2.5, 8e-3),    # 20 mJ long-range uplink
        "thumbnail": TaskCost(0.8, 0.6e-3),
        "uplinkImage": TaskCost(3.5, 8e-3),   # 28 mJ image upload
    })


def camera_capacitor() -> Capacitor:
    """Larger storage than the wearable: ~35 mJ usable per cycle, so a
    capture (18 mJ) fits but the whole detection pipeline (capture +
    compress + infer + uplink ≈ 36 mJ) does not — one brown-out per
    detection is the expected operating regime."""
    return Capacitor(capacitance=12e-3, v_max=3.3, v_on=3.0, v_off=1.8,
                     v_initial=3.0)


def make_camera_device(charging_delay_s: Optional[float] = None) -> Device:
    """Camera-node device: continuous power, or harvested with the given charging delay."""
    if charging_delay_s is None:
        return Device(EnergyEnvironment.continuous())
    env = EnergyEnvironment.for_charging_delay(
        charging_delay_s, capacitor=camera_capacitor())
    return Device(env)


def build_camera_runtime(
    device: Device,
    app: Optional[Application] = None,
    spec: str = CAMERA_SPEC,
) -> ArtemisRuntime:
    """ARTEMIS deployment of the camera workload on ``device``."""
    app = app if app is not None else build_camera_app()
    props = load_properties(spec, app)
    return ArtemisRuntime(app, props, device, camera_power_model())
