"""Benchmark workloads.

:mod:`~repro.workloads.health` is the paper's evaluation application —
the wearable health monitor of Figures 4/5/6 — plus factory helpers that
build matched ARTEMIS and Mayfly deployments on identical devices.
"""

from repro.workloads.health import (
    BENCHMARK_SPEC,
    FIGURE5_SPEC,
    build_artemis,
    build_health_app,
    build_mayfly,
    health_power_model,
    make_continuous_device,
    make_intermittent_device,
    mayfly_config,
)

__all__ = [
    "BENCHMARK_SPEC",
    "FIGURE5_SPEC",
    "build_health_app",
    "build_artemis",
    "build_mayfly",
    "mayfly_config",
    "health_power_model",
    "make_continuous_device",
    "make_intermittent_device",
]
