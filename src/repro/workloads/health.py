"""The wearable health-monitoring benchmark (paper §5, Figures 4-6).

Three paths over eight tasks:

* **Path 1** — ``bodyTemp → calcAvg → heartRate → send``: collect ten
  temperature readings, average, transmit.
* **Path 2** — ``accel → classify → send``: respiration rate from the
  accelerometer; ``accel`` is the most power-hungry task.
* **Path 3** — ``micSense → filter → send``: cough detection from the
  microphone.

Two specifications are provided: :data:`BENCHMARK_SPEC` is the property
set the evaluation section actually exercises (§5.1), and
:data:`FIGURE5_SPEC` is the paper's full Figure 5 listing verbatim
(including ``maxDuration`` and the ``dpData`` emergency range), used by
tests and the emergency-path example.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.baselines.mayfly import Collection, Expiration, MayflyConfig, MayflyRuntime
from repro.core.retry import RetryPolicy
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment, default_capacitor
from repro.energy.harvester import TraceHarvester
from repro.energy.power import MSP430FR5994_POWER, PowerModel
from repro.energy.traces import rf_mobility_trace
from repro.peripherals import BurstDropout, FaultySensor, PeripheralSet
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.app import Application

#: Properties used in the evaluation (§5.1): collect on Path 1, maxTries
#: + MITD/maxAttempt on Path 2, maxTries + collect on Path 3.
BENCHMARK_SPEC = """
micSense: {
    maxTries: 10 onFail: skipPath Path: 3;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 10 dpTask: bodyTemp onFail: restartPath;
}

accel {
    maxTries: 10 onFail: skipPath Path: 2;
}
"""

#: BENCHMARK_SPEC with degradation priorities: when stored energy falls
#: below the shed watermark the lowest-priority monitor goes first, so
#: cough detection (priority 1) degrades before respiration (priority 2).
#: The collect/MITD progress trackers take no priority — they are never
#: shed (see ``Property.SUPPORTS_PRIORITY``).
DEGRADATION_SPEC = """
micSense: {
    maxTries: 10 onFail: skipPath priority: 1 Path: 3;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 10 dpTask: bodyTemp onFail: restartPath;
}

accel {
    maxTries: 10 onFail: skipPath priority: 2 Path: 2;
}
"""

#: Figure 5 of the paper, verbatim semantics (the 100 ms maxDuration is
#: far below ``send``'s simulated duration, so this spec is for language
#: and generation tests, not for timing-faithful simulation).
FIGURE5_SPEC = """
micSense: {
    maxTries: 10 onFail: skipPath Path: 3;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    maxDuration: 100ms onFail: skipTask Path: 2;
    collect: 1 dpTask: accel onFail: restartPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 10 dpTask: bodyTemp onFail: restartPath;
    dpData: avgTemp Range: [36, 38] onFail: completePath;
}

accel {
    maxTries: 10 onFail: skipPath Path: 2;
}
"""


def _body_temp(ctx) -> None:
    reading = ctx.sample("adc_temp")
    temps = list(ctx.read("temps", []))
    temps.append(reading)
    ctx.write("temps", temps[-10:])


def _calc_avg(ctx) -> None:
    temps = ctx.read("temps", [])
    avg = sum(temps) / len(temps) if temps else 0.0
    ctx.write("avgTemp", avg)
    ctx.emit("avgTemp", avg)


def _heart_rate(ctx) -> None:
    ctx.write("heartRate", ctx.sample("ppg"))


def _accel(ctx) -> None:
    ctx.write("accelSample", ctx.sample("accelerometer"))


def _classify(ctx) -> None:
    sample = ctx.read("accelSample", (0.0, 0.0, 0.0))
    # Breath rate estimate: magnitude of the periodic chest component.
    ctx.write("breathRate", 12.0 + 4.0 * abs(sample[2]))


def _mic_sense(ctx) -> None:
    ctx.write("micFrame", ctx.sample("microphone"))


def _filter(ctx) -> None:
    frame = ctx.read("micFrame", 0.0)
    ctx.write("coughScore", max(0.0, frame - 0.2))


def _send(ctx) -> None:
    packet = {
        "t": ctx.now(),
        "avgTemp": ctx.read("avgTemp"),
        "heartRate": ctx.read("heartRate"),
        "breathRate": ctx.read("breathRate"),
        "coughScore": ctx.read("coughScore"),
    }
    ctx.append("sent", packet)


def build_health_app(
    temp_of_t: Optional[Callable[[float], float]] = None,
) -> Application:
    """Construct the benchmark application.

    Args:
        temp_of_t: body-temperature sensor model; defaults to a healthy
            36.6 °C with a mild circadian ripple. Pass e.g.
            ``lambda t: 39.2`` to drive the Figure 5 emergency range.
    """
    temp = temp_of_t if temp_of_t is not None else (
        lambda t: 36.6 + 0.2 * math.sin(t / 600.0)
    )
    return (
        AppBuilder("health_monitor")
        .task("bodyTemp", body=_body_temp)
        .task("calcAvg", body=_calc_avg, monitored_vars=["avgTemp"])
        .task("heartRate", body=_heart_rate)
        .task("accel", body=_accel)
        .task("classify", body=_classify)
        .task("micSense", body=_mic_sense)
        .task("filter", body=_filter)
        .task("send", body=_send)
        .path(1, ["bodyTemp", "calcAvg", "heartRate", "send"])
        .path(2, ["accel", "classify", "send"])
        .path(3, ["micSense", "filter", "send"])
        .sensor("adc_temp", temp)
        .sensor("ppg", lambda t: 68.0 + 6.0 * math.sin(t / 30.0))
        .sensor("accelerometer", lambda t: (0.0, 0.1, 0.9 + 0.05 * math.sin(t)))
        .sensor("microphone", lambda t: 0.1 + 0.05 * math.sin(t / 3.0))
        .build()
    )


def mayfly_config() -> MayflyConfig:
    """The Mayfly version of the benchmark (§5.1.1): only the collect
    and MITD/expiration properties — no maxTries, no maxAttempt."""
    return MayflyConfig(
        expirations=[Expiration("send", "accel", 300.0, path=2)],
        collections=[
            Collection("calcAvg", "bodyTemp", 10, path=1),
            Collection("send", "micSense", 1, path=3),
        ],
    )


def health_power_model() -> PowerModel:
    """Per-task costs for the benchmark (see repro.energy.power)."""
    return MSP430FR5994_POWER


def make_continuous_device() -> Device:
    """Wall-powered device (the Figures 14/15 setup)."""
    return Device(EnergyEnvironment.continuous())


def make_intermittent_device(charging_delay_s: float) -> Device:
    """Harvested device whose post-brownout charging time is exactly
    ``charging_delay_s`` (the Figures 12/13/16 x-axis)."""
    env = EnergyEnvironment.for_charging_delay(
        charging_delay_s, capacitor=default_capacitor()
    )
    return Device(env)


def make_rf_device(duration_s: float = 3600.0, seed: int = 0) -> Device:
    """Harvested device fed by a looping RF-mobility trace (the §5.3
    radio-frequency setting) — power swings with the simulated wearer's
    distance from the transmitter, so brown-outs cluster."""
    harvester = TraceHarvester(rf_mobility_trace(duration_s, seed=seed), loop=True)
    return Device(EnergyEnvironment(harvester=harvester, capacitor=default_capacitor()))


def build_flaky_peripherals(
    app: Optional[Application] = None,
    sensor: str = "ppg",
    dropout_rate: float = 0.2,
    seed: int = 0,
) -> PeripheralSet:
    """Wrap the benchmark's sensors in a :class:`PeripheralSet` with a
    burst-dropout fault on ``sensor`` (default: the PPG heart-rate
    front-end, the benchmark's flakiest part in practice).

    Every sensor goes through the set so sensing cost is charged
    uniformly; only ``sensor`` carries a fault model.
    """
    app = app if app is not None else build_health_app()
    peripherals = PeripheralSet(app.sensors)
    peripherals.attach(sensor, BurstDropout(rate=dropout_rate, seed=seed))
    return peripherals


def degradation_watermarks(
    low_frac: float = 0.35, high_frac: float = 0.85
) -> tuple:
    """(low, high) shed/restore watermarks as joules, expressed as
    fractions of one capacitor charge cycle's usable energy."""
    usable = default_capacitor().usable_energy_per_cycle
    return (low_frac * usable, high_frac * usable)


def build_artemis(
    device: Device,
    app: Optional[Application] = None,
    spec: str = BENCHMARK_SPEC,
    power: Optional[PowerModel] = None,
    monitor_backend: str = "generated",
    peripherals: Optional[PeripheralSet] = None,
    retry_policy: Optional[RetryPolicy] = None,
    degradation=None,
) -> ArtemisRuntime:
    """ARTEMIS deployment of the benchmark on ``device``."""
    app = app if app is not None else build_health_app()
    props = load_properties(spec, app)
    return ArtemisRuntime(
        app, props, device,
        power_model=power if power is not None else health_power_model(),
        monitor_backend=monitor_backend,
        peripherals=peripherals,
        retry_policy=retry_policy,
        degradation=degradation,
    )


def build_mayfly(
    device: Device,
    app: Optional[Application] = None,
    power: Optional[PowerModel] = None,
    peripherals: Optional[PeripheralSet] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> MayflyRuntime:
    """Mayfly deployment of the benchmark on ``device``."""
    app = app if app is not None else build_health_app()
    return MayflyRuntime(
        app, mayfly_config(), device,
        power_model=power if power is not None else health_power_model(),
        peripherals=peripherals,
        retry_policy=retry_policy,
    )
