"""Parametric synthetic applications for scaling and fuzz studies.

Real workloads (health monitor, trap camera) pin the paper's scenarios;
synthetic ones explore the space around them: arbitrary task/path
shapes, cost distributions, and property densities — all deterministic
per seed, so fuzz findings reproduce.

:func:`synthetic_app` builds the application + a matching power model;
:func:`synthetic_properties` decorates it with a *guarded* property set
(every retry loop gets an escape hatch), which keeps generated
deployments terminating by construction — the invariant the fuzz tests
lean on.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.actions import ActionType
from repro.core.properties import (
    Collect,
    MITD,
    MaxTries,
    PropertySet,
)
from repro.energy.power import PowerModel, TaskCost
from repro.errors import ReproError
from repro.taskgraph.app import Application
from repro.taskgraph.builder import AppBuilder


def synthetic_app(
    n_paths: int = 3,
    tasks_per_path: Tuple[int, int] = (2, 5),
    duration_range_s: Tuple[float, float] = (0.05, 1.0),
    power_range_w: Tuple[float, float] = (0.3e-3, 8e-3),
    seed: int = 0,
) -> Tuple[Application, PowerModel]:
    """Random task-based application plus its power model.

    Each path gets its own tasks (no merge points — merge-point
    properties need explicit path pinning, which
    :func:`synthetic_properties` adds separately when it draws one).
    """
    if n_paths < 1:
        raise ReproError("need at least one path")
    lo, hi = tasks_per_path
    if not 1 <= lo <= hi:
        raise ReproError("invalid tasks_per_path range")
    rng = random.Random(seed)
    builder = AppBuilder(f"synthetic_{seed}")
    costs = {}
    for p in range(1, n_paths + 1):
        names: List[str] = []
        for i in range(rng.randint(lo, hi)):
            name = f"p{p}t{i}"
            builder.task(name)
            names.append(name)
            costs[name] = TaskCost(
                rng.uniform(*duration_range_s),
                rng.uniform(*power_range_w),
            )
        builder.path(p, names)
    app = builder.build()
    return app, PowerModel(costs)


def synthetic_properties(
    app: Application,
    density: float = 0.4,
    seed: int = 0,
    mitd_limit_s: Tuple[float, float] = (10.0, 600.0),
) -> PropertySet:
    """Draw a guarded property set over an application.

    ``density`` is the probability that a task receives a property.
    Drawn kinds: ``maxTries`` (always with skipPath — self-guarded),
    ``collect`` from the task's predecessor (restartPath, plus a
    maxTries guard on the first task of the path so the retry loop is
    bounded), and ``MITD`` from the predecessor (restartPath with a
    mandatory maxAttempt escape). Every retry loop therefore has an
    exit, so any deployment of the result terminates under any fault
    pattern — which is exactly what the fuzz suite asserts.
    """
    if not 0.0 <= density <= 1.0:
        raise ReproError("density must be in [0, 1]")
    rng = random.Random(seed)
    props = PropertySet()
    guarded: set = set()

    def ensure_tries_guard(task: str) -> None:
        if task in guarded:
            return
        props.add(MaxTries(task=task, on_fail=ActionType.SKIP_PATH,
                           limit=rng.randint(3, 12)))
        guarded.add(task)

    for path in app.paths:
        names = path.task_names
        for idx, task in enumerate(names):
            if rng.random() >= density:
                continue
            kind = rng.choice(["maxTries", "collect", "MITD"])
            if kind == "maxTries":
                ensure_tries_guard(task)
            elif kind == "collect" and idx > 0 and task not in guarded:
                dep = names[idx - 1]
                try:
                    props.add(Collect(task=task,
                                      on_fail=ActionType.RESTART_PATH,
                                      dep_task=dep,
                                      count=rng.randint(1, 3)))
                except Exception:
                    continue
                ensure_tries_guard(names[0])
            elif kind == "MITD" and idx > 0 and task not in guarded:
                dep = names[idx - 1]
                try:
                    props.add(MITD(
                        task=task, on_fail=ActionType.RESTART_PATH,
                        dep_task=dep,
                        limit_s=rng.uniform(*mitd_limit_s),
                        max_attempt=rng.randint(2, 4),
                        max_attempt_action=ActionType.SKIP_PATH))
                except Exception:
                    continue
    return props
