"""Graphviz DOT export: task graphs (Figure 6) and monitors (Figure 7).

Pure text generation — no graphviz dependency; render the output with
``dot -Tpdf`` wherever graphviz exists. Two entry points:

* :func:`app_to_dot` — the application's paths as a task graph, with
  per-task property annotations (the paper's Figure 6, which shows
  "paths, tasks, and properties from Figure 5");
* :func:`machine_to_dot` — one intermediate-language machine as a state
  diagram with guard/action edge labels (the paper's Figure 7).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.properties import PropertySet
from repro.statemachine.model import ANY_EVENT, Fail, StateMachine, Stmt, If
from repro.statemachine.textual import _fmt_expr
from repro.taskgraph.app import Application


def _esc(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def app_to_dot(app: Application, props: Optional[PropertySet] = None) -> str:
    """Render the application's paths as a DOT digraph.

    Tasks are nodes (shared tasks appear once); each path contributes a
    colored edge chain. With ``props``, each guarded task gains a note
    listing its properties, like Figure 6's callouts.
    """
    colors = ["#4c72b0", "#dd8452", "#55a868", "#c44e52", "#8172b3"]
    lines = [f'digraph "{_esc(app.name)}" {{', "  rankdir=LR;",
             "  node [shape=box, style=rounded];"]
    for task in app.task_names:
        lines.append(f'  "{_esc(task)}";')
    for path in app.paths:
        color = colors[(path.number - 1) % len(colors)]
        for src, dst in zip(path.task_names, path.task_names[1:]):
            lines.append(
                f'  "{_esc(src)}" -> "{_esc(dst)}" '
                f'[color="{color}", label="p{path.number}"];')
    if props is not None:
        for task in props.tasks():
            notes = []
            for prop in props.for_task(task):
                suffix = f" (path {prop.path})" if prop.path is not None else ""
                notes.append(f"{prop.kind}{suffix}")
            label = _esc("\\n".join(notes))
            lines.append(
                f'  "{_esc(task)}__props" [shape=note, fontsize=9, '
                f'label="{label}"];')
            lines.append(
                f'  "{_esc(task)}__props" -> "{_esc(task)}" '
                f'[style=dashed, arrowhead=none];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def _body_label(body: Iterable[Stmt]) -> List[str]:
    parts: List[str] = []
    for stmt in body:
        if isinstance(stmt, Fail):
            path = f", path={stmt.path}" if stmt.path is not None else ""
            parts.append(f"fail({stmt.action}{path})")
        elif isinstance(stmt, If):
            parts.append("if ...")
        else:
            parts.append(str(stmt))
    return parts


def machine_to_dot(machine: StateMachine) -> str:
    """Render one state machine as a DOT digraph (Figure 7 style)."""
    lines = [f'digraph "{_esc(machine.name)}" {{', "  rankdir=LR;",
             '  node [shape=circle];',
             '  __start [shape=point];',
             f'  __start -> "{_esc(machine.initial)}";']
    for state in machine.states:
        lines.append(f'  "{_esc(state)}";')
    for transition in machine.transitions:
        trigger = ("anyEvent" if transition.trigger.kind == ANY_EVENT
                   else f"{transition.trigger.kind}"
                        f"({transition.trigger.task or '*'})")
        label_parts = [trigger]
        if transition.guard is not None:
            label_parts.append(f"[{_fmt_expr(transition.guard)}]")
        body = _body_label(transition.body)
        if body:
            label_parts.append("/ " + "; ".join(body))
        # Failure edges stand out, like the red edges of Figure 7.
        fails = any(isinstance(s, Fail) for s in transition.body)
        style = ', color="#c44e52", fontcolor="#c44e52"' if fails else ""
        label = _esc("\\n".join(label_parts))
        lines.append(
            f'  "{_esc(transition.source)}" -> "{_esc(transition.target)}" '
            f'[label="{label}"{style}];')
    lines.append("}")
    return "\n".join(lines) + "\n"
