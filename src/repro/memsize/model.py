"""MSP430 memory-footprint model.

Two ingredients:

* **Fixed components** (the runtimes) are hand-written C in the paper;
  their code sizes are modelled as documented per-function estimates
  that sum to the same magnitude msp430-gcc produced for the artifact
  (Table 2: Mayfly .text 1152, ARTEMIS runtime .text 1512).
* **Generated components** (the monitor) are sized from the *actual
  generated artifacts*: the C emitted by
  :mod:`repro.statemachine.codegen_c` for code, and the machines'
  non-volatile structs plus the per-task ``property_t`` table of
  Figure 10 for FRAM.

Neither runtime keeps meaningful state in SRAM — both park everything
in FRAM to survive power failures — so RAM is a few bytes of scratch,
matching the 2/2/0 column of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.baselines.mayfly import MayflyConfig
from repro.statemachine.codegen_c import generate_c_bundle, nv_struct_bytes
from repro.statemachine.model import StateMachine
from repro.taskgraph.app import Application

# ---------------------------------------------------------------------------
# MSP430 struct layouts (bytes)
# ---------------------------------------------------------------------------

#: task_t: function pointer (2), status (2), start/finish timestamps
#: (2x8), depData pointer (2), next/alt pointers (2x2), padding.
TASK_STRUCT_BYTES = 28

#: MonitorEvent_t (Figure 8): kind (2), timestamp (8), taskAddr (2),
#: depData snapshot (8), path (2), padding.
EVENT_STRUCT_BYTES = 22

#: Per-property rows of property_t (Figure 10): each carries the
#: threshold (uint64), dependent-task pointer, action, maxAttempt count
#: and action, plus the live tracking fields (timestamps, counters).
MITD_ROW_BYTES = 40
COLLECT_ROW_BYTES = 24
REEXE_ROW_BYTES = 20
EXETIME_ROW_BYTES = 20
PERIODIC_ROW_BYTES = 28

#: ImmortalThreads gives every protected routine a persistent
#: micro-stack in FRAM for its local-continuation state; each generated
#: monitor machine is one immortal routine.
IMMORTAL_STACK_BYTES = 1024

#: Mayfly channel buffer: payload (8) + timestamp (8), double-buffered
#: for atomic commit — Mayfly keeps timestamped data on every task-graph
#: edge, which is why its runtime FRAM exceeds ARTEMIS' (Table 2).
MAYFLY_EDGE_BUFFER_BYTES = 2 * (8 + 8)

#: ImmortalThreads continuation block per protected routine.
CONTINUATION_BYTES = 18

#: Average bytes of MSP430 code per generated C line (empirical ratio
#: for msp430-gcc -Os on branchy integer code).
TEXT_BYTES_PER_C_LINE = 26


@dataclass(frozen=True)
class MemoryReport:
    """One column triple of Table 2."""

    component: str
    text_bytes: int
    ram_bytes: int
    fram_bytes: int

    def row(self) -> str:
        return (
            f"{self.component:<18} .text={self.text_bytes:>6}  "
            f"RAM={self.ram_bytes:>4}  FRAM={self.fram_bytes:>6}"
        )


# ---------------------------------------------------------------------------
# Fixed components
# ---------------------------------------------------------------------------

#: Hand-written runtime code sizes (bytes), itemised per function group.
_MAYFLY_TEXT = {
    "main_loop": 260,
    "graph_walk": 300,
    "expiration_checks": 280,  # checking is fused into the loop (P2)
    "collect_checks": 180,
    "commit": 132,
}

_ARTEMIS_RUNTIME_TEXT = {
    "main_loop": 240,
    "checkTask": 330,
    "taskFinish": 180,
    "getNextTask_actions": 420,  # action application: 5 action kinds
    "monitor_interface": 210,  # event marshalling + callMonitor glue
    "commit": 132,
}


def mayfly_runtime_memory(app: Application, config: MayflyConfig) -> MemoryReport:
    """Mayfly: one runtime blob; rule state lives inside it, in FRAM."""
    text = sum(_MAYFLY_TEXT.values())
    edges = len(config.expirations) + len(config.collections)
    # Every task-to-task data flow is a timestamped, double-buffered
    # channel; plus per-rule bookkeeping and the task table.
    data_edges = sum(len(p) - 1 for p in app.paths)
    fram = (
        len(app.tasks) * TASK_STRUCT_BYTES
        + data_edges * MAYFLY_EDGE_BUFFER_BYTES
        + edges * (MITD_ROW_BYTES + COLLECT_ROW_BYTES)
        + len(app.tasks) * 16  # per-task timestamps + counts
        + 4600  # graph metadata, atomic-commit scratch, bookkeeping
    )
    return MemoryReport("Mayfly runtime", text, 2, fram)


def artemis_runtime_memory(app: Application) -> MemoryReport:
    """ARTEMIS runtime: no property state — that moved to the monitor."""
    text = sum(_ARTEMIS_RUNTIME_TEXT.values())
    fram = (
        len(app.tasks) * TASK_STRUCT_BYTES
        + EVENT_STRUCT_BYTES
        + len(app.paths) * 8  # path table
        + 24  # control cells: cur path/idx/status/flags
        + 4400  # task metadata, commit scratch (shared with Mayfly's design)
    )
    return MemoryReport("ARTEMIS runtime", text, 2, fram)


def artemis_monitor_memory(
    app: Application, machines: Iterable[StateMachine]
) -> MemoryReport:
    """Generated monitor: sized from the generated C and its data."""
    machines = list(machines)
    c_source = generate_c_bundle(machines)
    code_lines = [
        ln for ln in c_source.splitlines() if ln.strip() and not ln.strip().startswith(("/*", "*", "#"))
    ]
    text = len(code_lines) * TEXT_BYTES_PER_C_LINE
    n_tasks = len(app.tasks)
    # property_t of Figure 10: per-task arrays of every property row kind.
    property_table = n_tasks * (
        n_tasks * (MITD_ROW_BYTES + COLLECT_ROW_BYTES)
        + REEXE_ROW_BYTES
        + EXETIME_ROW_BYTES
        + PERIODIC_ROW_BYTES
    )
    machine_state = sum(nv_struct_bytes(m) for m in machines)
    continuations = (len(machines) + 1) * CONTINUATION_BYTES
    immortal_stacks = len(machines) * IMMORTAL_STACK_BYTES
    fram = (property_table + machine_state + continuations
            + immortal_stacks + EVENT_STRUCT_BYTES)
    return MemoryReport("ARTEMIS monitor", text, 0, fram)


def inlined_memory(
    app: Application, machines: Iterable[StateMachine]
) -> MemoryReport:
    """Footprint of the AOP-style inlined deployment (§6/§7).

    Inlining duplicates the checking code at each point where the
    properties must be evaluated — the StartTask and EndTask sites of
    every guarded task — instead of one shared monitor module: "the
    same code for monitoring properties may need to be repeated in
    multiple parts of the application" (§6). Data stays single-instance.
    """
    machines = list(machines)
    monitor = artemis_monitor_memory(app, machines)
    runtime = artemis_runtime_memory(app)
    guarded_tasks = {t for m in machines for t in m.referenced_tasks()}
    call_sites = max(1, 2 * len(guarded_tasks))  # start + end per task
    per_machine_text = monitor.text_bytes / max(1, len(machines))
    inlined_text = runtime.text_bytes + int(
        sum(
            per_machine_text * len(_sites_for(machine, guarded_tasks))
            for machine in machines
        )
    )
    fram = runtime.fram_bytes + monitor.fram_bytes
    return MemoryReport("ARTEMIS inlined", inlined_text, 2, fram)


def _sites_for(machine: StateMachine, guarded_tasks) -> set:
    """Call sites at which one machine's checking code is duplicated."""
    tasks = set(machine.referenced_tasks()) or set(guarded_tasks)
    return {(task, kind) for task in tasks for kind in ("start", "end")}


def table2(
    app: Application, machines: Iterable[StateMachine], config: MayflyConfig
) -> List[MemoryReport]:
    """All three Table 2 columns for one application."""
    return [
        mayfly_runtime_memory(app, config),
        artemis_runtime_memory(app),
        artemis_monitor_memory(app, machines),
    ]
