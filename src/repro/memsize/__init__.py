"""Memory accounting (Table 2 of the paper).

Estimates ``.text`` / RAM / FRAM footprints of the Mayfly runtime, the
ARTEMIS runtime, and the generated monitor using MSP430 struct layouts
and sizes derived from the generated C code.
"""

from repro.memsize.model import (
    MemoryReport,
    artemis_monitor_memory,
    artemis_runtime_memory,
    inlined_memory,
    mayfly_runtime_memory,
    table2,
)

__all__ = [
    "MemoryReport",
    "artemis_runtime_memory",
    "artemis_monitor_memory",
    "inlined_memory",
    "mayfly_runtime_memory",
    "table2",
]
