"""Stdlib line-coverage measurement for ``src/repro``.

``pytest-cov``/``coverage.py`` are not part of the pinned local
toolchain, but the CI coverage gate needs a measured floor. This tool
reproduces the essential number — percentage of executable lines in
``src/repro`` hit by the test suite — with nothing beyond the standard
library: a ``sys.settrace`` hook records ``(file, line)`` pairs while
pytest runs in-process, and the executable-line universe comes from
walking each module's compiled code objects.

Usage::

    PYTHONPATH=src python tools/coverage_lite.py            # whole suite
    PYTHONPATH=src python tools/coverage_lite.py tests/test_nvm.py -q
    PYTHONPATH=src python tools/coverage_lite.py --report   # per-file table

The total differs from coverage.py by a point or so (branch vs line
accounting around ``finally``/decorators), which is why the CI floor is
set below the measured value — see docs/performance.md.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from types import CodeType
from typing import Dict, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO_ROOT / "src" / "repro")

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def executable_lines(path: Path) -> Set[int]:
    """Line numbers that carry bytecode, via recursive co_lines walk."""
    code = compile(path.read_text(), str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(ln for _, _, ln in obj.co_lines() if ln is not None)
        stack.extend(c for c in obj.co_consts if isinstance(c, CodeType))
    return lines


class LineCollector:
    """settrace hook recording hit lines for files under src/repro.

    The global hook returns ``None`` for foreign code objects so the
    interpreter skips per-line events everywhere except the measured
    tree — the suite stays slow but tolerably so.
    """

    def __init__(self) -> None:
        self.hits: Dict[str, Set[int]] = {}

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def _global(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(SRC_PREFIX):
            return None
        self.hits.setdefault(filename, set()).add(frame.f_lineno)
        return self._local

    def install(self) -> None:
        threading.settrace(self._global)
        sys.settrace(self._global)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def measure(pytest_args) -> Tuple[int, Dict[str, Tuple[int, int]]]:
    """Run pytest in-process under the collector.

    Returns ``(pytest_exit_code, {file: (hit, executable)})``.
    """
    import pytest

    collector = LineCollector()
    collector.install()
    try:
        exit_code = pytest.main(list(pytest_args))
    finally:
        collector.uninstall()

    table: Dict[str, Tuple[int, int]] = {}
    for path in sorted(Path(SRC_PREFIX).rglob("*.py")):
        universe = executable_lines(path)
        hit = collector.hits.get(str(path), set()) & universe
        table[str(path.relative_to(REPO_ROOT))] = (len(hit), len(universe))
    return int(exit_code), table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure src/repro line coverage with stdlib tracing;"
                    " extra arguments are passed to pytest")
    parser.add_argument("--report", action="store_true",
                        help="print the per-file table, not just the total")
    args, pytest_args = parser.parse_known_args(argv)
    if not pytest_args:
        pytest_args = ["tests/", "-q", "--no-header", "-p", "no:cacheprovider"]

    exit_code, table = measure(pytest_args)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage below reflects the "
              f"partial run", file=sys.stderr)

    total_hit = sum(hit for hit, _ in table.values())
    total_lines = sum(n for _, n in table.values())
    if args.report:
        width = max(len(name) for name in table)
        for name, (hit, n) in sorted(table.items()):
            pct = 100.0 * hit / n if n else 100.0
            print(f"{name:<{width}}  {hit:>5}/{n:<5}  {pct:6.1f}%")
    pct = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"TOTAL {total_hit}/{total_lines} lines = {pct:.2f}%")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
