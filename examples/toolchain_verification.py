#!/usr/bin/env python3
"""The verification side of the toolchain: lint, check, model-check.

Before flashing anything, a specification can be put through three
progressively deeper analyses:

1. **Static consistency** (`repro.spec.consistency`) — does any
   property contradict the application structure, the power model, or
   another property? (the paper's §7 future work)
2. **Machine lint** (`repro.statemachine.analysis`) — are the generated
   monitors well-formed: all states reachable, no dead transitions,
   guards mutually exclusive?
3. **Bounded model checking** (`repro.statemachine.explore` /
   `compose`) — explore every event sequence up to a depth: when can
   each action fire, what is the *shortest* scenario, and which actions
   can fire *simultaneously* (the cases the arbiter resolves)?

Run:  python examples/toolchain_verification.py
"""

from repro.core.generator import generate_machines
from repro.energy.environment import default_capacitor
from repro.energy.power import MSP430FR5994_POWER
from repro.spec.consistency import check
from repro.spec.validator import load_properties
from repro.statemachine.analysis import lint
from repro.statemachine.compose import explore_product, joint_alphabet
from repro.statemachine.explore import alphabet_for, explore
from repro.workloads.health import BENCHMARK_SPEC, build_health_app

GOOD_SPEC = BENCHMARK_SPEC

BAD_SPEC = """
// Three deliberate mistakes for the checker to catch.
send {
    maxDuration: 1ms onFail: skipTask Path: 2;          // below send's own runtime
    MITD: 5min dpTask: accel onFail: restartPath Path: 2;  // no maxAttempt escape
}
calcAvg {
    collect: 10 dpTask: heartRate onFail: restartPath;  // heartRate runs AFTER calcAvg
}
"""


def stage1_consistency(app):
    print("=" * 72)
    print("Stage 1: static consistency")
    print("=" * 72)
    good = check(load_properties(GOOD_SPEC, app), app,
                 power=MSP430FR5994_POWER, capacitor=default_capacitor())
    print(f"benchmark spec: {good}")
    print()
    bad = check(load_properties(BAD_SPEC, app), app,
                power=MSP430FR5994_POWER, capacitor=default_capacitor())
    print("deliberately broken spec:")
    print(bad)
    assert not bad.consistent
    print()


def stage2_lint(app):
    print("=" * 72)
    print("Stage 2: generated-machine lint")
    print("=" * 72)
    machines = generate_machines(load_properties(GOOD_SPEC, app))
    for machine in machines:
        print(" ", lint(machine))
    print()
    return machines


def stage3_model_check(app, machines):
    print("=" * 72)
    print("Stage 3: bounded model checking")
    print("=" * 72)
    mitd = next(m for m in machines if m.name.startswith("MITD"))
    result = explore(mitd, alphabet_for(mitd, deltas=[1.0, 400.0],
                                        paths=(2,)), depth=5)
    print(f"{mitd.name}: {result.configurations} configurations at depth 5")
    for action, witness in sorted(result.witnesses.items()):
        steps = " ; ".join(f"{l.kind}({l.task})+{l.delta:g}s" for l in witness)
        print(f"  shortest {action}: {steps}")

    print()
    tries = next(m for m in machines if m.name.startswith("maxTries_accel"))
    joint = explore_product(
        [mitd, tries],
        joint_alphabet([mitd, tries], deltas=[1.0, 400.0], paths=(2,)),
        depth=4)
    concurrent = [set(k) for k in joint if len(k) > 1]
    print(f"joint exploration of {mitd.name} x {tries.name} (depth 4): "
          f"{len(joint)} distinct failure sets, "
          f"{len(concurrent)} concurrent: {concurrent or 'none'}")


def main():
    app = build_health_app()
    stage1_consistency(app)
    machines = stage2_lint(app)
    stage3_model_check(app, machines)


if __name__ == "__main__":
    main()
