#!/usr/bin/env python3
"""The paper's evaluation application, end to end.

Runs the wearable health-monitoring benchmark (Figures 4-6) in three
settings and prints what the paper's §5 reports:

1. continuous power — overhead comparison against Mayfly (Fig. 14/15);
2. intermittent power across charging delays — the non-termination
   divergence (Fig. 12);
3. the Figure 13 timeline at a 7-minute charging delay, showing the
   three MITD attempts and the maxAttempt path skip.

Run:  python examples/health_monitor.py
"""

from repro.workloads.health import (
    BENCHMARK_SPEC,
    build_artemis,
    build_mayfly,
    make_continuous_device,
    make_intermittent_device,
)

CAP_S = 4 * 3600.0


def continuous_comparison():
    print("=" * 70)
    print("Continuous power (Figures 14/15)")
    print("=" * 70)
    adev = make_continuous_device()
    ares = adev.run(build_artemis(adev))
    mdev = make_continuous_device()
    mres = mdev.run(build_mayfly(mdev))
    for label, res in (("ARTEMIS", ares), ("Mayfly", mres)):
        print(f"{label:>8}: app={res.app_time_s:6.2f}s  "
              f"runtime={res.runtime_overhead_s * 1e3:6.2f}ms  "
              f"monitor={res.monitor_overhead_s * 1e3:6.2f}ms  "
              f"energy={res.total_energy_j * 1e3:5.1f}mJ")
    print()


def charging_sweep():
    print("=" * 70)
    print("Intermittent power sweep (Figure 12)")
    print("=" * 70)
    print(f"{'delay':>7} | {'ARTEMIS':>12} | {'Mayfly':>12}")
    for minutes in (1, 2, 4, 6, 8, 10):
        adev = make_intermittent_device(minutes * 60.0)
        ares = adev.run(build_artemis(adev), max_time_s=CAP_S)
        mdev = make_intermittent_device(minutes * 60.0)
        mres = mdev.run(build_mayfly(mdev), max_time_s=CAP_S)
        a = f"{ares.total_time_s:8.0f} s" if ares.completed else "     DNF"
        m = f"{mres.total_time_s:8.0f} s" if mres.completed else "     DNF"
        print(f"{minutes:>4}min | {a:>12} | {m:>12}")
    print()


def figure13_timeline():
    print("=" * 70)
    print("maxAttempt timeline at a 7-minute charging delay (Figure 13)")
    print("=" * 70)
    device = make_intermittent_device(7 * 60.0)
    result = device.run(build_artemis(device), max_time_s=CAP_S)
    for event in device.trace:
        if event.kind in ("monitor_action", "path_restart", "path_skip",
                          "power_failure", "run_complete"):
            details = " ".join(f"{k}={v}" for k, v in event.detail.items()
                               if v is not None)
            print(f"  t={event.t:9.1f}s  {event.kind:<15} {details}")
    print(f"\n  -> run {'completed' if result.completed else 'DID NOT FINISH'} "
          f"after {result.reboots} reboots, "
          f"{result.total_energy_j * 1e3:.1f} mJ consumed")
    print()


def main():
    print("Properties under monitoring (the §5.1 benchmark spec):")
    print(BENCHMARK_SPEC)
    continuous_comparison()
    charging_sweep()
    figure13_timeline()


if __name__ == "__main__":
    main()
