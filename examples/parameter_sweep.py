#!/usr/bin/env python3
"""Declarative experiment sweeps with `repro.sim.experiments`.

Rebuilds the Figure 12 comparison as a two-factor sweep (charging delay
x system) and then runs a second sweep unique to this reproduction:
how the MITD maxAttempt budget trades completion energy against data
freshness at a fixed long charging delay.

Run:  python examples/parameter_sweep.py
"""

from repro.core.runtime import ArtemisRuntime
from repro.sim.experiments import (
    Sweep,
    format_rows,
    metric_action_count,
    metric_completed,
    metric_total_energy_mj,
    metric_total_time,
    pivot,
)
from repro.spec.validator import load_properties
from repro.workloads.health import (
    build_artemis,
    build_health_app,
    build_mayfly,
    health_power_model,
    make_intermittent_device,
)

CAP_S = 4 * 3600.0


def sweep_figure12():
    def build(point):
        device = make_intermittent_device(point["delay_min"] * 60.0)
        runtime = (build_artemis(device) if point["system"] == "ARTEMIS"
                   else build_mayfly(device))
        return device, runtime

    sweep = Sweep(
        factors={"delay_min": [1, 3, 5, 7, 9],
                 "system": ["ARTEMIS", "Mayfly"]},
        build=build,
        metrics={
            "completed": metric_completed,
            "time_s": metric_total_time,
            "energy_mJ": metric_total_energy_mj,
        },
        max_time_s=CAP_S,
    )
    rows = sweep.run()
    print("Figure 12 as a sweep:")
    print(format_rows(rows))
    print()
    series = pivot(rows, index="delay_min", column="system", value="completed")
    crossover = [d for d, r in series.items() if r["ARTEMIS"] and not r["Mayfly"]]
    print(f"delays where only ARTEMIS completes: {crossover} minutes\n")


def sweep_max_attempt():
    def spec_with(budget):
        return f"""
        micSense: {{ maxTries: 10 onFail: skipPath Path: 3; }}
        send: {{
            MITD: 5min dpTask: accel onFail: restartPath maxAttempt: {budget} onFail: skipPath Path: 2;
            collect: 1 dpTask: micSense onFail: restartPath Path: 3;
        }}
        calcAvg {{ collect: 10 dpTask: bodyTemp onFail: restartPath; }}
        accel {{ maxTries: 10 onFail: skipPath Path: 2; }}
        """

    def build(point):
        device = make_intermittent_device(420.0)
        app = build_health_app()
        props = load_properties(spec_with(point["maxAttempt"]), app)
        return device, ArtemisRuntime(app, props, device, health_power_model())

    sweep = Sweep(
        factors={"maxAttempt": [1, 2, 3, 5, 8]},
        build=build,
        metrics={
            "completed": metric_completed,
            "time_s": metric_total_time,
            "energy_mJ": metric_total_energy_mj,
            "restarts": metric_action_count("restartPath"),
        },
        max_time_s=CAP_S,
    )
    rows = sweep.run()
    print("maxAttempt budget vs cost at a 7-minute charging delay:")
    print(format_rows(rows))
    print("\nEach extra attempt buys another chance at fresh acceleration "
          "data, paying one more execution of the expensive path.")


def main():
    sweep_figure12()
    sweep_max_attempt()


if __name__ == "__main__":
    main()
