#!/usr/bin/env python3
"""The Figure 5 emergency scenario: dpData + completePath.

The health monitor's ``calcAvg`` task declares its result (``avgTemp``)
as monitored dependent data with an allowed range of 36-38 °C. When the
wearer runs a fever, the range check fails and the ``completePath``
action fires: the remaining tasks of the path (``heartRate``, ``send``)
execute immediately *without further property checking* to report the
emergency, and the run ends without executing the other paths.

Run:  python examples/emergency_complete_path.py
"""

from repro.workloads.health import (
    FIGURE5_SPEC,
    build_artemis,
    build_health_app,
    make_continuous_device,
)


def run_with_temperature(label, temp_c):
    app = build_health_app(temp_of_t=lambda t: temp_c)
    device = make_continuous_device()
    runtime = build_artemis(device, app=app, spec=FIGURE5_SPEC)
    result = device.run(runtime)

    executed = [e.detail["task"] for e in device.trace.of_kind("task_end")]
    emergencies = [e for e in device.trace.of_kind("monitor_action")
                   if e.detail["action"] == "completePath"]
    sent = device.nvm.cell("chan.sent").get() or []

    print(f"--- {label} (body temperature {temp_c:.1f} C) ---")
    print(f"tasks executed : {' -> '.join(executed)}")
    print(f"emergency fired: {'yes' if emergencies else 'no'}")
    if sent:
        print(f"last packet    : avgTemp={sent[-1]['avgTemp']:.2f} "
              f"heartRate={sent[-1]['heartRate']:.1f}")
    print(f"run completed  : {result.completed}\n")
    return executed, bool(emergencies)


def main():
    healthy_tasks, healthy_emergency = run_with_temperature("healthy", 36.7)
    fever_tasks, fever_emergency = run_with_temperature("fever", 39.4)

    assert not healthy_emergency
    assert fever_emergency
    # Healthy: all three paths ran. Fever: the run stopped after path 1,
    # with heartRate and send rushed through unmonitored.
    assert "accel" in healthy_tasks and "micSense" in healthy_tasks
    assert "accel" not in fever_tasks
    assert fever_tasks[-2:] == ["heartRate", "send"]
    print("emergency reporting semantics verified.")


if __name__ == "__main__":
    main()
