#!/usr/bin/env python3
"""Migrating a Mayfly specification to ARTEMIS (§7, language support).

Takes a Mayfly-style edge-annotated specification, maps it onto the
ARTEMIS property model through the second frontend, shows what the
consistency checker thinks of it (spoiler: no escape hatches), prints
the equivalent *native* ARTEMIS specification, and finally shows the
one-line upgrade — adding ``maxAttempt`` — that fixes the
non-termination Mayfly cannot express.

Run:  python examples/mayfly_migration.py
"""

from repro.core.actions import ActionType
from repro.core.properties import MITD, PropertySet
from repro.spec.consistency import check
from repro.spec.mayfly_frontend import load_mayfly_properties
from repro.spec.printer import print_spec
from repro.workloads.health import (
    build_artemis,
    build_health_app,
    make_intermittent_device,
)

MAYFLY_SPEC = """
// Mayfly edge annotations for the health monitor (§5.1.1)
edge accel -> send { expires: 5min; path: 2; }
edge bodyTemp -> calcAvg { collect: 10; }
edge micSense -> send { collect: 1; path: 3; }
"""


def upgraded(props: PropertySet) -> PropertySet:
    """Add the maxAttempt escape Mayfly's language cannot express."""
    out = PropertySet()
    for prop in props:
        if isinstance(prop, MITD):
            prop = MITD(task=prop.task, on_fail=prop.on_fail, path=prop.path,
                        dep_task=prop.dep_task, limit_s=prop.limit_s,
                        max_attempt=3,
                        max_attempt_action=ActionType.SKIP_PATH)
        out.add(prop)
    return out


def simulate(props, label):
    app = build_health_app()
    device = make_intermittent_device(420.0)
    from repro.core.runtime import ArtemisRuntime
    from repro.workloads.health import health_power_model

    runtime = ArtemisRuntime(app, props, device, health_power_model())
    result = device.run(runtime, max_time_s=2 * 3600)
    state = "completed" if result.completed else "NON-TERMINATION"
    print(f"  {label}: {state} "
          f"(energy {result.total_energy_j * 1e3:.0f} mJ, "
          f"reboots {result.reboots})")


def main():
    app = build_health_app()

    print("Mayfly input:")
    print(MAYFLY_SPEC)
    props = load_mayfly_properties(MAYFLY_SPEC, app)
    print("Mapped onto the ARTEMIS property model and printed in the")
    print("native specification language:\n")
    print(print_spec(props))

    print("Consistency check of the migrated spec:")
    report = check(props, app)
    print(report)
    print()

    fixed = upgraded(props)
    print("After the one-line upgrade (maxAttempt: 3 onFail: skipPath):\n")
    print(print_spec(fixed))

    print("Behaviour at a 7-minute charging delay:")
    simulate(props, "migrated Mayfly semantics")
    simulate(fixed, "with maxAttempt escape  ")


if __name__ == "__main__":
    main()
