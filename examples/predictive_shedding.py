#!/usr/bin/env python3
"""Predictive degradation: static energy bounds + anticipatory shedding.

Builds a deployment in the Fig. 12 danger zone — the monitoring
overhead pushes the task's re-executed unit past one capacitor cycle —
and shows three things:

1. the static analyzer (`repro.analysis.energy`) proving, without
   running anything, that the fully-monitored path cannot terminate
   but the degraded one can;
2. the reactive watermark controller livelocking on that deployment
   (the capacitor is full at every loop top, so the low watermark
   never trips — by the time energy is low, the brownout already
   happened);
3. the predictive controller shedding the statically-unaffordable
   monitor set at the path boundary, ahead of the brownout, and
   shedding nothing when energy is ample.

Run:  python examples/predictive_shedding.py
"""

from repro import (
    AppBuilder,
    ArtemisRuntime,
    Device,
    EnergyEnvironment,
    PowerModel,
    TaskCost,
)
from repro.analysis import HarvestForecaster, analyze
from repro.core.actions import ActionType
from repro.core.degradation import PredictiveDegradationController
from repro.core.properties import MaxDuration, MaxTries, Period
from repro.energy.environment import default_capacitor

# ----------------------------------------------------------------------
# 1. A deployment where monitoring itself is the termination risk: one
#    12 mJ task watched by three monitors whose combined per-event cost
#    pushes each attempt past the capacitor's ~15 mJ usable cycle.
# ----------------------------------------------------------------------

app = (
    AppBuilder("fieldnode")
    .task("work", body=lambda ctx: ctx.write("out", 1))
    .path(1, ["work"])
    .build()
)

power = PowerModel(
    {"work": TaskCost(1.2, 0.010)},  # 12 mJ body
    monitor_call_base_s=0.05,
    monitor_per_property_s=4.0,  # deliberately heavy checking
)

props = [
    MaxTries(limit=10**6, task="work", on_fail=ActionType.RESTART_PATH),
    MaxDuration(limit_s=10.0**9, task="work",
                on_fail=ActionType.RESTART_PATH),
    Period(period_s=10.0**9, task="work", on_fail=ActionType.RESTART_PATH),
]

# ----------------------------------------------------------------------
# 2. Static analysis: per-monitor worst-case bounds, per-path budgets,
#    and the closed-form non-termination predicate.
# ----------------------------------------------------------------------

report = analyze(app, props, power)
print("== static worst-case energy/latency report ==")
print(report.describe())

cycle_j = default_capacitor().usable_energy_per_cycle
full_j = report.path_energy_j(1)
shed_all = frozenset(m.machine for m in report.monitors if m.sheddable)
degraded_j = report.path_energy_j(1, shed_all)
print(f"usable energy per capacitor cycle : {1e3 * cycle_j:.2f} mJ")
print(f"path budget, all monitors live    : {1e3 * full_j:.2f} mJ"
      f"  -> statically NON-TERMINATING")
print(f"path budget, sheddable set gone   : {1e3 * degraded_j:.2f} mJ"
      f"  -> fits one cycle")
print()

# ----------------------------------------------------------------------
# 3. Reactive vs predictive on a weak harvester (10-minute recharges).
# ----------------------------------------------------------------------

LOW_J, HIGH_J = 0.35 * cycle_j, 0.85 * cycle_j


def run(degradation, delay_s):
    env = EnergyEnvironment.for_charging_delay(delay_s, default_capacitor())
    device = Device(env)

    def build(monitor, audit):
        if degradation == "reactive":
            return None
        return PredictiveDegradationController(
            monitor, LOW_J, HIGH_J, report,
            forecaster=HarvestForecaster(trace=env.harvester), audit=audit)

    runtime = ArtemisRuntime(
        app, props, device, power,
        degradation=(LOW_J, HIGH_J) if degradation == "reactive" else build)
    result = device.run(runtime, max_time_s=4 * 3600.0)
    return result


print("== reactive watermarks, 600 s charging delay ==")
reactive = run("reactive", 600.0)
print(f"completed={reactive.completed}  reboots={reactive.reboots}  "
      f"sheds={reactive.monitors_shed}   <- livelock, watermarks never trip")
print()

print("== predictive controller, same scenario ==")
predictive = run("predictive", 600.0)
print(f"completed={predictive.completed}  reboots={predictive.reboots}  "
      f"sheds={predictive.monitors_shed} "
      f"(predictive={predictive.predictive_sheds})"
      f"   <- shed at the boundary, before any brownout")
print()

print("== predictive controller, ample energy (1 s delay) ==")
ample = run("predictive", 1.0)
print(f"completed={ample.completed}  sheds={ample.monitors_shed}"
      f"   <- forecast covers the full set, nothing shed")

assert not reactive.completed and reactive.monitors_shed == 0
assert predictive.completed and predictive.predictive_sheds == 3
assert ample.completed and ample.monitors_shed == 0
