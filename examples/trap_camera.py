#!/usr/bin/env python3
"""Batteryless trap camera: a lumpy-energy workload.

A Camaroptera-style wildlife camera whose detection pipeline
(capture → compress → infer → uplink, ~43 mJ) exceeds the capacitor's
charge cycle (~35 mJ), so every detection rides through at least one
brown-out. Shows the ``energyAtLeast`` gate deferring expensive tasks,
the ``period`` property on the motion poll, and the MITD/maxAttempt
escape when an uplink goes stale.

Run:  python examples/trap_camera.py
"""

from repro.sim.analysis import action_summary, render_timeline, task_statistics
from repro.workloads.camera import (
    CAMERA_SPEC,
    build_camera_runtime,
    make_camera_device,
)


def run_scenario(label, charging_delay_s):
    device = make_camera_device(charging_delay_s)
    runtime = build_camera_runtime(device)
    result = device.run(runtime, max_time_s=4 * 3600)

    print(f"--- {label} ---")
    print(result.summary())
    uplinked = device.nvm.cell("chan.uplinked").get() or []
    print(f"uplinked: {[p['kind'] for p in uplinked] or 'nothing'}")
    actions = action_summary(device.trace)
    if actions:
        print("monitor interventions:",
              ", ".join(f"{k}x{v}" for k, v in sorted(actions.items())))
    stats = task_statistics(device.trace)
    wasted = {name: s.attempts_wasted for name, s in stats.items()
              if s.attempts_wasted}
    if wasted:
        print(f"attempts lost to brown-outs/redirections: {wasted}")
    print()
    return device


def main():
    print("Camera property specification:")
    print(CAMERA_SPEC)

    run_scenario("continuous power", None)
    device = run_scenario("harvested, 60 s charging delay", 60.0)
    run_scenario("harvested, 3 min charging delay (uplink goes stale)", 180.0)

    print("Timeline of the 60 s-delay run:")
    print(render_timeline(device.trace))


if __name__ == "__main__":
    main()
