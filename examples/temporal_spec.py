#!/usr/bin/env python3
"""Temporal properties with shared-subformula compilation.

Twenty past-time MTL properties guard a three-task sensing pipeline.
The formulas overlap heavily — "sense has ended at least once",
"nothing was sent since the last calibration", freshness windows — so
the shared-subformula planner collapses the repeated stateful
subformulas (`once`, `since`, bounded `once[0,b]`) into sub-monitors
emitted once and read by every owning property. The demo prints the
shared vs naive machine counts, then runs the full deployment on
harvested power to show the compiled DAG live through crashes.

Run:  python examples/temporal_spec.py
Docs: docs/spec.md
"""

from repro import (
    AppBuilder,
    ArtemisMonitor,
    Device,
    EnergyEnvironment,
    PowerModel,
    TaskCost,
    load_properties,
)
from repro.core.generator import build_monitor_plan
from repro.nvm.memory import NonVolatileMemory
from repro.workloads.health import build_artemis

# ----------------------------------------------------------------------
# 1. A sense -> process -> send pipeline.
# ----------------------------------------------------------------------


def sense(ctx):
    reading = ctx.sample("adc")
    ctx.write("reading", reading)
    ctx.emit("reading", reading)  # rides on the EndTask event (data(...))


def process(ctx):
    ctx.write("scaled", ctx.read("reading") * 2.0)


def send(ctx):
    ctx.append("uplink", {"scaled": ctx.read("scaled")})


app = (
    AppBuilder("temporal-demo")
    .task("sense", body=sense, monitored_vars=("reading",))
    .task("process", body=process)
    .task("send", body=send)
    .path(1, ["sense", "process", "send"])
    .sensor("adc", lambda t: 21.5)
    .build()
)

# ----------------------------------------------------------------------
# 2. Twenty overlapping temporal properties. Each line is an ordinary
#    spec property; the planner finds the shared structure on its own.
# ----------------------------------------------------------------------

SPEC = """
process: {
    temporal: once ended(sense) label: p01 onFail: restartPath Path: 1;
    temporal: started(process) -> once ended(sense) label: p02 onFail: restartPath Path: 1;
    temporal: once[0, 5min] ended(sense) label: p03 onFail: restartPath Path: 1;
    temporal: not ended(send) since ended(sense) label: p04 onFail: skipPath Path: 1;
    temporal: once ended(sense) and not started(send) label: p05 onFail: skipPath Path: 1;
    temporal: once data(reading) > -50 label: p06 onFail: skipPath Path: 1;
}

send: {
    temporal: once ended(sense) label: p07 onFail: restartPath Path: 1;
    temporal: once ended(process) label: p08 onFail: restartPath Path: 1;
    temporal: once[0, 5min] ended(sense) label: p09 onFail: skipPath Path: 1;
    temporal: once[0, 5min] ended(process) label: p10 onFail: skipPath Path: 1;
    temporal: not ended(send) since ended(sense) label: p11 onFail: skipPath Path: 1;
    temporal: not ended(send) since ended(process) label: p12 onFail: skipPath Path: 1;
    temporal: started(send) -> once ended(process) label: p13 onFail: restartPath Path: 1;
    temporal: once ended(sense) and once ended(process) label: p14 onFail: restartPath Path: 1;
    temporal: once ended(sense) at: end label: p15 onFail: skipPath Path: 1;
    temporal: once data(reading) > -50 label: p16 onFail: skipPath Path: 1;
    temporal: once data(reading) > -50 or once ended(process) label: p17 onFail: skipPath Path: 1;
}

sense: {
    temporal: not (not ended(send) since ended(sense)) or once ended(process) label: p18 onFail: skipPath Path: 1;
    temporal: historically not data(reading) > 1000 label: p19 onFail: skipPath Path: 1;
    temporal: started(sense) -> historically not data(reading) > 1000 label: p20 onFail: skipPath Path: 1;
}
"""

props = load_properties(SPEC, app)

# ----------------------------------------------------------------------
# 3. Shared vs naive compilation.
# ----------------------------------------------------------------------

shared = build_monitor_plan(props)
naive = build_monitor_plan(props, share_subformulas=False)

print(f"properties:            {len(props)}")
print(f"naive monitors:        {shared.naive_monitors}  "
      "(one private sub-tree per property)")
print(f"shared monitors:       {shared.shared_monitors}  "
      f"({len(shared.sub_owners)} sub-monitors shared across properties)")
print(f"sharing ratio:         "
      f"{shared.shared_monitors / shared.naive_monitors:.2f}")
print(f"opt-out plan emits:    {naive.shared_monitors} machines "
      "(--no-share-subformulas)")
print()
print("most-shared subformulas:")
for sub, owners in sorted(shared.sub_owners.items(),
                          key=lambda kv: -len(kv[1]))[:4]:
    print(f"  {sub:<28} read by {len(owners)} properties")

# Sanity: sharing must never change semantics, only the machine count.
assert shared.shared_monitors < shared.naive_monitors
assert naive.shared_monitors == naive.naive_monitors

# ----------------------------------------------------------------------
# 4. The same spec live on harvested power: the compiled DAG persists
#    its sub-monitor state in NVM and survives power failures like any
#    other monitor.
# ----------------------------------------------------------------------

monitor = ArtemisMonitor(props, NonVolatileMemory())
device = Device(EnergyEnvironment.for_charging_delay(30.0))
# One full run costs more than a charge cycle holds (~15 mJ), so the
# device browns out mid-pipeline and resumes from NVM.
power = PowerModel({
    "sense": TaskCost(0.05, 1e-3),
    "process": TaskCost(1.00, 9e-3),
    "send": TaskCost(1.10, 9e-3, 1.0e-3),
})
runtime = build_artemis(device, app=app, spec=SPEC, power=power)
result = device.run(runtime, runs=3)

print()
print(f"harvested-power run:   {result.runs_completed} runs, "
      f"{result.reboots} reboots")
shared_cells = sum(
    1 for name in device.nvm if ".tl_" in name and name.endswith("state"))
print(f"sub-monitor NVM cells: {shared_cells} persisted machine states")
print("ok: 20 properties monitored through "
      f"{shared.shared_monitors} machines")
