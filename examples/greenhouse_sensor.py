#!/usr/bin/env python3
"""Solar-powered greenhouse sensing with periodicity monitoring.

A different deployment than the paper's wearable: a batteryless soil /
air monitor powered by a small solar cell. It exercises properties the
health benchmark does not:

* ``period`` — soil moisture should be sampled roughly every 10 minutes;
  cloudy spells stretch charging delays and violate the period, at which
  point the monitor restarts the sampling path (and gives up on the
  cycle after 4 misses instead of looping forever);
* ``collect`` — the report uploads only after 3 moisture samples;
* ``energyAtLeast`` — the LoRa uplink is only attempted with 8 mJ or
  more in the capacitor (the paper's §4.2.2 extension property).

Run:  python examples/greenhouse_sensor.py
"""

import math

from repro import (
    AppBuilder,
    ArtemisRuntime,
    Capacitor,
    Device,
    EnergyEnvironment,
    PowerModel,
    SolarHarvester,
    TaskCost,
    load_properties,
)

# One simulated "day" is compressed to 2 hours so the example runs in
# a blink while still producing night-time outages.
DAY_S = 7200.0


def build_app():
    return (
        AppBuilder("greenhouse")
        .task("soilMoisture",
              body=lambda ctx: ctx.append("moisture", ctx.sample("soil")))
        .task("airTemp",
              body=lambda ctx: ctx.write("air", ctx.sample("air")))
        .task("aggregate", body=_aggregate, monitored_vars=["soilAvg"])
        .task("uplink", body=_uplink)
        .path(1, ["soilMoisture", "airTemp", "aggregate", "uplink"])
        .sensor("soil", lambda t: 0.32 + 0.05 * math.sin(t / 900.0))
        .sensor("air", lambda t: 19.0 + 6.0 * math.sin(2 * math.pi * t / DAY_S))
        .build()
    )


def _aggregate(ctx):
    samples = ctx.read("moisture", [])[-3:]
    avg = sum(samples) / len(samples) if samples else 0.0
    ctx.write("soilAvg", avg)
    ctx.emit("soilAvg", avg)


def _uplink(ctx):
    ctx.append("sent", {"t": ctx.now(), "soilAvg": ctx.read("soilAvg"),
                        "air": ctx.read("air")})


SPEC = """
soilMoisture {
    period: 10min jitter: 2min onFail: restartPath maxAttempt: 4 onFail: skipPath;
}

aggregate {
    collect: 3 dpTask: soilMoisture onFail: restartPath;
    dpData: soilAvg Range: [0.1, 0.6] onFail: completePath;
}

uplink {
    energyAtLeast: 0.008 onFail: restartTask;
    maxTries: 6 onFail: skipPath;
}
"""

POWER = PowerModel({
    "soilMoisture": TaskCost(0.4, 1.5e-3),
    "airTemp": TaskCost(0.2, 1.0e-3),
    "aggregate": TaskCost(0.3, 0.4e-3),
    "uplink": TaskCost(1.8, 9e-3),  # LoRa burst
})


def main():
    app = build_app()
    props = load_properties(SPEC, app)

    capacitor = Capacitor(capacitance=8e-3, v_max=3.3, v_on=3.0, v_off=1.8)
    harvester = SolarHarvester(peak_power_w=2.5e-3, day_length_s=DAY_S,
                               daylight_fraction=0.45)
    device = Device(EnergyEnvironment(harvester, capacitor))
    runtime = ArtemisRuntime(app, props, device, POWER)

    result = device.run(runtime, runs=12, max_time_s=3 * DAY_S)
    print(result.summary())

    sent = device.nvm.cell("chan.sent").get() or []
    print(f"\nreports uplinked: {len(sent)} over "
          f"{result.total_time_s / 3600:.1f} simulated hours")
    for packet in sent[:5]:
        print(f"  t={packet['t']:8.0f}s  soilAvg={packet['soilAvg']:.3f}  "
              f"air={packet['air']:.1f}C")

    actions = {}
    for event in device.trace.of_kind("monitor_action"):
        actions[event.detail["action"]] = actions.get(event.detail["action"], 0) + 1
    print(f"\nmonitor interventions: {actions or 'none'}")
    print(f"power failures survived: {result.reboots}")


if __name__ == "__main__":
    main()
