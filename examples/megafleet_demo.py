#!/usr/bin/env python3
"""Million-device staged rollout through the lockstep batched core.

Ships the benign FLEET_SPEC_V2 update to 1,000,000 simulated devices in
three waves (1% canary, 10%, everyone), then re-runs the rollout with
the deliberately regressing spec to show the canary wave halting at
fleet scale. The fleet uses ``per_cohort`` seeding — devices within an
energy class are byte-identical — which is exactly the homogeneous
shape :class:`repro.sim.batch.BatchFleetCore` amortizes: one
instrumented scalar representative per cohort, a vectorized
struct-of-arrays FSM replay across the million-lane device axis, and a
weighted per-cohort telemetry rollup.

Run:  python examples/megafleet_demo.py [n_devices]
"""

import sys
import time

from repro.fleet.server import (
    FLEET_SPEC_REGRESSING,
    FLEET_SPEC_V2,
    FleetServer,
    RolloutPlan,
)

N_DEVICES = 1_000_000


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else N_DEVICES
    server = FleetServer()
    plan = RolloutPlan(
        waves=(0.01, 0.1, 1.0),
        runs=2,
        max_time_s=4 * 3600.0,
        max_reboots=200,
        lockstep=True,
        seed_mode="per_cohort",
        # Expand the canary wave to real per-device telemetry; keep the
        # big waves as compact per-cohort rollups.
        expand_limit=max(1000, n // 100),
    )

    print(f"== benign update (v2) to {n:,} devices ==")
    t0 = time.time()
    report = server.rollout(FLEET_SPEC_V2, n, plan=plan)
    dt = time.time() - t0
    print(report.describe())
    print(f"-> {dt:.1f}s wall = {n / dt:,.0f} devices/s "
          f"({len(report.waves)} waves, ok={report.ok})")

    print(f"\n== regressing update to {n:,} devices ==")
    t0 = time.time()
    bad = server.rollout(FLEET_SPEC_REGRESSING, n, plan=plan)
    dt = time.time() - t0
    print(bad.describe())
    blast = bad.devices_attempted
    print(f"-> halted={bad.halted} at wave {bad.halted_wave}; "
          f"blast radius {blast:,}/{n:,} devices "
          f"({dt:.1f}s wall)")
    return 0 if report.ok and bad.halted else 1


if __name__ == "__main__":
    sys.exit(main())
