#!/usr/bin/env python3
"""Quickstart: monitor a two-task intermittent application.

Builds the smallest useful ARTEMIS deployment: a sense->send pipeline
with two declarative properties, run first on continuous power and then
on a harvested supply that browns out mid-run.

Run:  python examples/quickstart.py
"""

from repro import (
    AppBuilder,
    ArtemisRuntime,
    Device,
    EnergyEnvironment,
    PowerModel,
    TaskCost,
    load_properties,
)

# ----------------------------------------------------------------------
# 1. The application: atomic tasks arranged on one path.
# ----------------------------------------------------------------------


def sense(ctx):
    ctx.write("reading", ctx.sample("thermometer"))


def send(ctx):
    ctx.append("uplink", {"t": ctx.now(), "value": ctx.read("reading")})


app = (
    AppBuilder("quickstart")
    .task("sense", body=sense)
    .task("send", body=send)
    .path(1, ["sense", "send"])
    .sensor("thermometer", lambda t: 21.0 + 0.01 * t)
    .build()
)

# ----------------------------------------------------------------------
# 2. The properties, in the ARTEMIS specification language: send must
#    run within 30 s of sense finishing (data freshness), and no task
#    may be attempted more than 5 times in a row (non-termination guard).
# ----------------------------------------------------------------------

SPEC = """
send {
    MITD: 30s dpTask: sense onFail: restartPath maxAttempt: 3 onFail: skipPath;
}
sense {
    maxTries: 5 onFail: skipPath;
}
"""

props = load_properties(SPEC, app)

# ----------------------------------------------------------------------
# 3. Per-task costs: the radio is the expensive part.
# ----------------------------------------------------------------------

power = PowerModel({
    "sense": TaskCost(0.05, 1e-3),   # 50 ms @ 1 mW
    "send": TaskCost(0.50, 6e-3),    # 500 ms @ 6 mW (radio)
})


def run(device, label):
    runtime = ArtemisRuntime(app, props, device, power)
    result = device.run(runtime, max_time_s=3600)
    print(f"--- {label} ---")
    print(result.summary())
    uplink = device.nvm.cell("chan.uplink").get() or []
    print(f"packets sent: {len(uplink)}  "
          f"monitor actions: {device.trace.count('monitor_action')}")
    print()


def main():
    # Continuous power: nothing to monitor, everything just runs.
    run(Device(EnergyEnvironment.continuous()), "continuous power")

    # Harvested power: a small capacitor that cannot hold sense+send in
    # one charge, with a 20-second recharge after every brown-out.
    env = EnergyEnvironment.for_charging_delay(20.0)
    env.capacitor.discharge(env.capacitor.usable_energy * 0.9)  # start low
    run(Device(env), "harvested power (20 s charging delay)")


if __name__ == "__main__":
    main()
