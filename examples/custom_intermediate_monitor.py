#!/usr/bin/env python3
"""Dropping below the property language: hand-written state machines.

§3.3 of the paper: "there might be situations where this language lacks
the necessary expressiveness. In such cases, developers can engage
directly with the intermediate language." This example writes a monitor
the property language cannot express — an *alternation* property (taskA
and taskB must strictly alternate) — directly in the textual
intermediate language, then:

1. parses it into the state-machine model,
2. generates and compiles the Python monitor from it,
3. generates the MSP430 C translation unit (what the paper flashes),
4. runs the compiled monitor against an event stream.

Run:  python examples/custom_intermediate_monitor.py
"""

from repro.core.events import start_event
from repro.statemachine.codegen_c import generate_c_source
from repro.statemachine.codegen_python import generate_python_source, instantiate
from repro.statemachine.textual import parse_machine, print_machine

ALTERNATION = """
machine alternate_AB {
  var expectA: bool = true;
  initial Watching;
  state Watching {
    on startTask(A) [expectA] -> Watching / { expectA := false; }
    on startTask(B) [not expectA] -> Watching / { expectA := true; }
    on startTask(A) [not expectA] -> Watching / { fail(restartPath); }
    on startTask(B) [expectA] -> Watching / { fail(restartPath); }
  }
}
"""


def main():
    machine = parse_machine(ALTERNATION)
    print("Parsed machine (pretty-printed back):\n")
    print(print_machine(machine))

    print("\nGenerated Python monitor source:\n")
    print(generate_python_source(machine))

    print("\nGenerated C (ImmortalThreads style, as flashed on MSP430):\n")
    print(generate_c_source(machine))

    monitor = instantiate(machine)
    stream = ["A", "B", "A", "A", "B", "B", "A"]
    print("Event stream:", " ".join(stream))
    for i, task in enumerate(stream):
        verdicts = monitor.on_event(start_event(task, float(i)))
        status = "VIOLATION -> " + verdicts[0].action if verdicts else "ok"
        print(f"  start({task}) at t={i}: {status}")


if __name__ == "__main__":
    main()
