# Convenience targets for the ARTEMIS reproduction.

PYTHON ?= python

.PHONY: install test crashsweep bench examples figures verify all

install:
	pip install -e .

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

crashsweep:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_crash_sweep.py tests/test_soak_random_faults.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s -q

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null && echo OK; done

verify: test bench examples

all: install verify
