# Convenience targets for the ARTEMIS reproduction.

PYTHON ?= python

.PHONY: install test bench examples figures verify all

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s -q

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null && echo OK; done

verify: test bench examples

all: install verify
