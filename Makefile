# Convenience targets for the ARTEMIS reproduction.

PYTHON ?= python

.PHONY: install test crashsweep soak bench examples figures verify all

# Seed matrix for the randomized soak; each seed shifts hypothesis
# draws into a disjoint slice of the fault space.
SOAK_SEEDS ?= 0 1 2 3 4

install:
	pip install -e .

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

crashsweep:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_crash_sweep.py tests/test_soak_random_faults.py -q

soak:
	@for s in $(SOAK_SEEDS); do \
		echo "== soak seed $$s"; \
		SOAK_SEED=$$s PYTHONPATH=src $(PYTHON) -m pytest \
			tests/test_soak_random_faults.py -q || exit 1; \
	done

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s -q

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null && echo OK; done

verify: test bench examples

all: install verify
