# Convenience targets for the ARTEMIS reproduction.

PYTHON ?= python

.PHONY: install test crashsweep conformance predict soak bench bench-baseline bench-check examples figures fleet verify all

# Crash bound for the conformance checker (docs/verification.md).
BOUND ?= 2

# Parallel workers for benchmark sweeps (see docs/performance.md).
JOBS ?= 1

# Seed matrix for the randomized soak; each seed shifts hypothesis
# draws into a disjoint slice of the fault space.
SOAK_SEEDS ?= 0 1 2 3 4

install:
	pip install -e .

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

crashsweep:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_crash_sweep.py tests/test_soak_random_faults.py -q

# Bounded model checking of every workload x runtime scenario against
# its continuous-power oracle, plus the mutation self-test proving the
# checker catches an injected recovery bug. See docs/verification.md.
conformance:
	PYTHONPATH=src $(PYTHON) -m repro.cli verify --bound $(BOUND)
	PYTHONPATH=src $(PYTHON) -m repro.cli verify --self-test

# Predictor-soundness gate: the static energy analyzer's per-event
# bound must dominate the real monitor's observed spend, the Fig. 12
# cross-check must hold, and the anticipatory-shedding acceptance
# scenario must pass. Mirrors the blocking CI job; see
# docs/robustness.md (predictive degradation).
predict:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_predictive_soundness.py \
		tests/test_analysis_energy.py tests/test_predictive_degradation.py -q

soak:
	@for s in $(SOAK_SEEDS); do \
		echo "== soak seed $$s"; \
		SOAK_SEED=$$s PYTHONPATH=src $(PYTHON) -m pytest \
			tests/test_soak_random_faults.py -q || exit 1; \
	done

# Fleet size for the staged-rollout target (docs/fleet.md).
FLEET_DEVICES ?= 24

# Staged OTA rollout of the benign v2 update across a simulated fleet,
# then the fleet unit tests. Exit 3 from the CLI means the regression
# gate halted the rollout.
fleet:
	PYTHONPATH=src $(PYTHON) -m repro.cli fleet rollout \
		--devices $(FLEET_DEVICES) --jobs $(JOBS)
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_fleet_bundle.py \
		tests/test_fleet_transport.py tests/test_fleet_install.py \
		tests/test_fleet_ota_verify.py tests/test_fleet_rollout.py \
		tests/test_fleet_control.py tests/test_fleet_digest.py \
		tests/test_fleet_soak.py -q

bench:
	REPRO_BENCH_JOBS=$(JOBS) $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/regression.py --write

bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/regression.py

figures:
	REPRO_BENCH_JOBS=$(JOBS) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s -q

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null && echo OK; done

verify: test bench examples

all: install verify
