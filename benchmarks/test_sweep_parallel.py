"""Parallel experiment engine: sweep wall-clock microbenchmark.

Times the same health-workload sweep three ways — serial, sharded
across a 4-worker process pool, and replayed from a warm result cache —
and asserts the engine's contracts: the parallel and cached tables are
byte-identical to the serial one, and the warm cache beats serial by at
least 2x (in practice it is orders of magnitude faster, since no
simulation runs at all).

The parallel speedup itself is printed but not asserted: it depends on
the host's core count (a single-core CI box shows a slowdown — fork and
IPC overhead with no parallel hardware to pay for it). See
``docs/performance.md``.
"""

import json
import os
import time

from conftest import print_table, run_once

from repro.sim.experiments import Sweep
from repro.sim.pool import ResultCache, run_sweep
from repro.workloads.health import build_artemis, make_intermittent_device

JOBS = 4
DELAYS_S = [30.0, 60.0, 90.0, 120.0, 180.0, 240.0, 300.0, 360.0]
CAP_S = 4 * 3600.0


def _build(point):
    device = make_intermittent_device(point["delay_s"])
    return device, build_artemis(device)


def _sweep() -> Sweep:
    return Sweep(
        factors={"delay_s": DELAYS_S},
        build=_build,
        metrics={
            "completed": lambda dev, res: res.completed,
            "time_s": lambda dev, res: round(res.total_time_s, 6),
            "energy_mJ": lambda dev, res: round(res.total_energy_j * 1e3, 6),
            "reboots": lambda dev, res: res.reboots,
        },
        max_time_s=CAP_S,
    )


def _measure(tmp_path):
    sweep = _sweep()

    t0 = time.perf_counter()
    serial_rows = sweep.run()
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_rows = sweep.run(parallel=JOBS)
    parallel_s = time.perf_counter() - t0

    cache = ResultCache(tmp_path / "cache")
    run_sweep(sweep, jobs=1, cache=cache)  # cold run populates
    cache.hits = cache.misses = 0
    t0 = time.perf_counter()
    cached_rows = run_sweep(sweep, jobs=1, cache=cache)
    warm_s = time.perf_counter() - t0

    return {
        "serial_rows": serial_rows,
        "parallel_rows": parallel_rows,
        "cached_rows": cached_rows,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "warm_s": warm_s,
        "hit_rate": cache.hit_rate,
    }


def test_parallel_and_cached_sweeps_match_serial(benchmark, tmp_path):
    m = run_once(benchmark, lambda: _measure(tmp_path))
    print_table(
        f"Sweep engine: {len(DELAYS_S)} points, jobs={JOBS}, "
        f"host cores={os.cpu_count()}",
        ["mode", "wall (s)", "speedup vs serial"],
        [
            ("serial", f"{m['serial_s']:.3f}", "1.00x"),
            (f"parallel({JOBS})", f"{m['parallel_s']:.3f}",
             f"{m['serial_s'] / m['parallel_s']:.2f}x"),
            ("cache-warm", f"{m['warm_s']:.4f}",
             f"{m['serial_s'] / m['warm_s']:.2f}x"),
        ],
    )
    print(f"cache hit rate: {m['hit_rate']:.0%}")

    # Contract: identical tables, to the byte.
    serial_bytes = json.dumps(m["serial_rows"], sort_keys=True)
    assert json.dumps(m["parallel_rows"], sort_keys=True) == serial_bytes
    assert json.dumps(m["cached_rows"], sort_keys=True) == serial_bytes
    assert m["hit_rate"] == 1.0
    # Contract: a warm cache short-circuits the simulations entirely.
    assert m["serial_s"] / m["warm_s"] >= 2.0, (
        f"warm cache only {m['serial_s'] / m['warm_s']:.2f}x faster"
    )
