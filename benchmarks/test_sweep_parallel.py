"""Parallel experiment engine: sweep wall-clock microbenchmark.

Times the same health-workload sweep four ways — serial, the legacy
fork-per-call pool, the persistent worker pool, and replayed from a
warm result cache — and asserts the engine's contracts: every table is
byte-identical to the serial one, the warm cache beats serial by at
least 2x, and the persistent pool beats the legacy fork pool by at
least 1.5x at 4 jobs (``parallel_speedup`` in the bench baseline).

That last pin is deliberately a ratio of two pool strategies, not
pool-vs-serial: it measures the fork/import tax the persistent workers
amortize away, so it holds even on a single-core CI box where
parallel-vs-serial is a slowdown (no parallel hardware to pay for the
IPC). The pool-vs-serial number is printed but not asserted. See
``docs/performance.md``.
"""

import json
import multiprocessing
import os
import time

import pytest
from conftest import print_table, run_once

from repro.sim.experiments import Sweep
from repro.sim.pool import ResultCache, run_sweep, shutdown_pools
from repro.workloads.health import build_artemis, make_intermittent_device

JOBS = 4
DELAYS_S = [30.0, 60.0, 90.0, 120.0, 180.0, 240.0, 300.0, 360.0]
CAP_S = 4 * 3600.0
MIN_POOL_SPEEDUP = 1.5

fork_available = "fork" in multiprocessing.get_all_start_methods()


# Module-level (picklable) so the persistent pool can ship the sweep to
# its long-lived workers.
def _build(point):
    device = make_intermittent_device(point["delay_s"])
    return device, build_artemis(device)


def _metric_completed(dev, res):
    return res.completed


def _metric_time_s(dev, res):
    return round(res.total_time_s, 6)


def _metric_energy_mj(dev, res):
    return round(res.total_energy_j * 1e3, 6)


def _metric_reboots(dev, res):
    return res.reboots


def _sweep() -> Sweep:
    return Sweep(
        factors={"delay_s": DELAYS_S},
        build=_build,
        metrics={
            "completed": _metric_completed,
            "time_s": _metric_time_s,
            "energy_mJ": _metric_energy_mj,
            "reboots": _metric_reboots,
        },
        max_time_s=CAP_S,
    )


def _best_of(n, fn):
    best = None
    rows = None
    for _ in range(n):
        t0 = time.perf_counter()
        rows = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, rows


def _measure(tmp_path):
    sweep = _sweep()

    serial_s, serial_rows = _best_of(
        2, lambda: run_sweep(sweep, jobs=1, strategy="serial"))

    fork_s = persistent_s = None
    fork_rows = persistent_rows = serial_rows
    if fork_available:
        fork_s, fork_rows = _best_of(
            2, lambda: run_sweep(sweep, jobs=JOBS, strategy="fork"))
        # Three runs so the steady state (workers already forked)
        # dominates the minimum — persistence is the thing measured.
        persistent_s, persistent_rows = _best_of(
            3, lambda: run_sweep(sweep, jobs=JOBS, strategy="persistent"))
        shutdown_pools()

    cache = ResultCache(tmp_path / "cache")
    run_sweep(sweep, jobs=1, cache=cache)  # cold run populates
    cache.hits = cache.misses = 0
    t0 = time.perf_counter()
    cached_rows = run_sweep(sweep, jobs=1, cache=cache)
    warm_s = time.perf_counter() - t0

    return {
        "serial_rows": serial_rows,
        "fork_rows": fork_rows,
        "persistent_rows": persistent_rows,
        "cached_rows": cached_rows,
        "serial_s": serial_s,
        "fork_s": fork_s,
        "persistent_s": persistent_s,
        "warm_s": warm_s,
        "hit_rate": cache.hit_rate,
    }


def test_parallel_and_cached_sweeps_match_serial(benchmark, tmp_path):
    m = run_once(benchmark, lambda: _measure(tmp_path))
    rows = [("serial", f"{m['serial_s']:.3f}", "1.00x")]
    if fork_available:
        rows.append((f"fork-pool({JOBS})", f"{m['fork_s']:.3f}",
                     f"{m['serial_s'] / m['fork_s']:.2f}x"))
        rows.append((f"persistent({JOBS})", f"{m['persistent_s']:.3f}",
                     f"{m['serial_s'] / m['persistent_s']:.2f}x"))
    rows.append(("cache-warm", f"{m['warm_s']:.4f}",
                 f"{m['serial_s'] / m['warm_s']:.2f}x"))
    print_table(
        f"Sweep engine: {len(DELAYS_S)} points, jobs={JOBS}, "
        f"host cores={os.cpu_count()}",
        ["mode", "wall (s)", "speedup vs serial"],
        rows,
    )
    print(f"cache hit rate: {m['hit_rate']:.0%}")

    # Contract: identical tables, to the byte.
    serial_bytes = json.dumps(m["serial_rows"], sort_keys=True)
    assert json.dumps(m["fork_rows"], sort_keys=True) == serial_bytes
    assert json.dumps(m["persistent_rows"], sort_keys=True) == serial_bytes
    assert json.dumps(m["cached_rows"], sort_keys=True) == serial_bytes
    assert m["hit_rate"] == 1.0
    # Contract: a warm cache short-circuits the simulations entirely.
    assert m["serial_s"] / m["warm_s"] >= 2.0, (
        f"warm cache only {m['serial_s'] / m['warm_s']:.2f}x faster"
    )


@pytest.mark.skipif(not fork_available,
                    reason="pool strategies need the fork start method")
def test_persistent_pool_beats_fork_pool(tmp_path):
    """The ``parallel_speedup`` regression pin: keeping workers alive
    must beat re-forking a pool per call by at least 1.5x on the
    4-shard sweep (measured ~1.8x; the fork path pays jobs forks plus
    interpreter warm-up on every call)."""
    m = _measure(tmp_path)
    speedup = m["fork_s"] / m["persistent_s"]
    print(f"persistent-over-fork speedup: {speedup:.2f}x "
          f"(fork {m['fork_s']:.3f}s, persistent {m['persistent_s']:.3f}s)")
    assert speedup > MIN_POOL_SPEEDUP, (
        f"persistent pool only {speedup:.2f}x faster than the legacy "
        f"fork-per-call pool (floor {MIN_POOL_SPEEDUP}x)"
    )
