"""Figure 16: energy consumption per completed application run.

Paper result: under continuous power and short charging delays (1-2
minutes) ARTEMIS and Mayfly consume nearly the same energy. With delays
beyond the MITD window, Mayfly's demand is effectively unbounded (it
burns energy forever re-executing accel), while ARTEMIS is bounded: the
failing path is executed three times (maxAttempt) and then skipped —
roughly tripling that path's energy, not the whole application's.
"""

from conftest import print_table, run_once

from repro.workloads.health import (
    build_artemis,
    build_mayfly,
    make_continuous_device,
    make_intermittent_device,
)

CAP_S = 4 * 3600.0
SCENARIOS = [("continuous", None), ("1 min", 60.0), ("2 min", 120.0),
             ("5 min", 300.0), ("10 min", 600.0)]


def measure():
    rows = []
    for label, delay in SCENARIOS:
        adev = (make_continuous_device() if delay is None
                else make_intermittent_device(delay))
        ares = adev.run(build_artemis(adev), max_time_s=CAP_S)
        mdev = (make_continuous_device() if delay is None
                else make_intermittent_device(delay))
        mres = mdev.run(build_mayfly(mdev), max_time_s=CAP_S)
        accel_runs = sum(1 for e in adev.trace.of_kind("task_end")
                         if e.detail["task"] == "accel")
        rows.append({
            "label": label,
            "artemis_mj": ares.total_energy_j * 1e3,
            "artemis_done": ares.completed,
            "mayfly_mj": mres.total_energy_j * 1e3,
            "mayfly_done": mres.completed,
            "accel_runs": accel_runs,
        })
    return rows


def test_fig16_energy_consumption(benchmark):
    rows = run_once(benchmark, measure)

    print_table(
        "Figure 16: energy per application run (mJ)",
        ["setup", "ARTEMIS (mJ)", "Mayfly (mJ)", "accel runs (ARTEMIS)"],
        [
            (
                r["label"],
                f"{r['artemis_mj']:.1f}",
                f"{r['mayfly_mj']:.1f}" + ("" if r["mayfly_done"]
                                           else "  [DNF: unbounded]"),
                r["accel_runs"],
            )
            for r in rows
        ],
    )

    by_label = {r["label"]: r for r in rows}
    cont = by_label["continuous"]
    assert cont["artemis_done"] and cont["mayfly_done"]
    # Continuous: the two systems are within a few percent.
    assert abs(cont["artemis_mj"] - cont["mayfly_mj"]) < 0.05 * cont["mayfly_mj"]
    # Short delays: similar energy to continuous (bounded re-execution).
    for label in ("1 min", "2 min"):
        r = by_label[label]
        assert r["artemis_done"] and r["mayfly_done"]
        assert r["artemis_mj"] < 1.6 * cont["artemis_mj"]
    # Long delays: ARTEMIS bounded with the failing path tripled...
    for label in ("5 min", "10 min"):
        r = by_label[label]
        assert r["artemis_done"]
        assert r["accel_runs"] == 3
        assert r["artemis_mj"] < 4.0 * cont["artemis_mj"]
        # ...while Mayfly never finishes and keeps consuming: by the
        # simulation cap it has already burned far more than ARTEMIS.
        assert not r["mayfly_done"]
        assert r["mayfly_mj"] > 3.0 * r["artemis_mj"]
