"""Host-side throughput of the two monitor execution engines.

Unlike the other benchmarks (which report *simulated* metrics), this
one uses pytest-benchmark for what it is good at: wall-clock timing of
the reproduction itself. It measures events/second through the full
benchmark monitor (five machines) for the generated-code backend vs the
reference interpreter — the generated backend exists precisely because
interpretation is the slow path.
"""

import pytest

from repro.core.events import MonitorEvent
from repro.core.monitor import ArtemisMonitor
from repro.nvm.memory import NonVolatileMemory
from repro.spec.validator import load_properties
from repro.workloads.health import BENCHMARK_SPEC, build_health_app

N_EVENTS = 400


def event_stream():
    app = build_health_app()
    events = []
    t = 0.0
    for _ in range(N_EVENTS // (2 * len(app.tasks)) + 1):
        for path in app.paths:
            for task in path.task_names:
                events.append(MonitorEvent("startTask", task, t, {},
                                           path=path.number))
                t += 0.5
                events.append(MonitorEvent(
                    "endTask", task, t,
                    {"avgTemp": 36.8} if task == "calcAvg" else {},
                    path=path.number))
                t += 0.5
    return events[:N_EVENTS]


def make_monitor(backend):
    app = build_health_app()
    props = load_properties(BENCHMARK_SPEC, app)
    monitor = ArtemisMonitor(props, NonVolatileMemory(), backend=backend)
    monitor.reset()
    return monitor


@pytest.mark.parametrize("backend", ["generated", "interpreted"])
def test_engine_throughput(benchmark, backend):
    events = event_stream()
    # Build (and for the generated backend, compile) once — the steady
    # state is event dispatch, not code generation.
    monitor = make_monitor(backend)

    def feed():
        monitor.reset()
        total_actions = 0
        for event in events:
            total_actions += len(monitor.call(event))
        return total_actions

    total_actions = benchmark(feed)
    benchmark.extra_info["events"] = len(events)
    benchmark.extra_info["actions"] = total_actions
    # Sanity: both engines observe the same stream and emit actions.
    assert total_actions > 0
