"""Ablations on monitor-template semantics.

Two deviations from the paper's literal Figure 7 are load-bearing (see
EXPERIMENTS.md); these benchmarks demonstrate *why* by running the
literal variants:

1. collect with ``reset_on_fail=True`` (Figure 7's literal third
   machine) zeroes its counter on every violation — Path 1 of the
   benchmark can then never accumulate its ten samples and the
   application livelocks.
2. The monitor backend (generated code vs reference interpreter) must
   not change behaviour, only simulation speed — measured here.
"""

from conftest import print_table, run_once

from repro.core.properties import Collect, PropertySet
from repro.core.runtime import ArtemisRuntime
from repro.spec.validator import load_properties
from repro.workloads.health import (
    BENCHMARK_SPEC,
    build_health_app,
    health_power_model,
    make_continuous_device,
)


def run_collect_variant(reset_on_fail):
    app = build_health_app()
    base = load_properties(BENCHMARK_SPEC, app)
    props = PropertySet()
    for prop in base:
        if isinstance(prop, Collect) and prop.task == "calcAvg":
            prop = Collect(task=prop.task, on_fail=prop.on_fail,
                           path=prop.path, dep_task=prop.dep_task,
                           count=prop.count, reset_on_fail=reset_on_fail)
        props.add(prop)
    device = make_continuous_device()
    runtime = ArtemisRuntime(app, props, device, health_power_model())
    result = device.run(runtime, max_time_s=60.0)
    body_temps = sum(1 for e in device.trace.of_kind("task_end")
                     if e.detail["task"] == "bodyTemp")
    return result, body_temps


def measure_collect():
    acc_result, acc_temps = run_collect_variant(reset_on_fail=False)
    lit_result, lit_temps = run_collect_variant(reset_on_fail=True)
    return {
        "accumulate": (acc_result.completed, acc_temps),
        "figure7_literal": (lit_result.completed, lit_temps),
    }


def test_ablation_collect_reset_semantics(benchmark):
    out = run_once(benchmark, measure_collect)
    print_table(
        "Ablation: collect counter semantics on Path 1",
        ["variant", "completed", "bodyTemp executions"],
        [(k, v[0], v[1]) for k, v in out.items()],
    )
    # Accumulation (our default) collects exactly ten samples.
    assert out["accumulate"] == (True, 10)
    # The literal Figure 7 reset can never reach ten: livelock.
    completed, temps = out["figure7_literal"]
    assert not completed
    assert temps > 20  # kept re-sampling to no avail


def measure_backends():
    import time

    out = {}
    for backend in ("generated", "interpreted"):
        device = make_continuous_device()
        app = build_health_app()
        props = load_properties(BENCHMARK_SPEC, app)
        runtime = ArtemisRuntime(app, props, device, health_power_model(),
                                 monitor_backend=backend)
        wall0 = time.perf_counter()
        result = device.run(runtime)
        wall = time.perf_counter() - wall0
        trace = [(e.kind, e.detail.get("task")) for e in device.trace]
        out[backend] = {"result": result, "trace": trace, "wall_s": wall}
    return out


def test_ablation_monitor_backend(benchmark):
    out = run_once(benchmark, measure_backends)
    print_table(
        "Ablation: monitor backend (same semantics, different engine)",
        ["backend", "completed", "sim monitor ovh (ms)", "host wall (ms)"],
        [(k, v["result"].completed,
          f"{v['result'].monitor_overhead_s * 1e3:.2f}",
          f"{v['wall_s'] * 1e3:.1f}") for k, v in out.items()],
    )
    # Identical simulated behaviour...
    assert out["generated"]["trace"] == out["interpreted"]["trace"]
    assert (out["generated"]["result"].monitor_overhead_s
            == out["interpreted"]["result"].monitor_overhead_s)
