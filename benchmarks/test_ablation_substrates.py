"""Ablation: timeliness enforcement across system designs (Table 3).

Runs the same producer→consumer timeliness scenario — expensive sensing
whose data must be consumed within a window shorter than the charging
delay — on four system designs:

* ARTEMIS (task-based, monitored, maxAttempt escape),
* Mayfly (task-based, coupled expiration checks, no escape),
* TICS-style checkpointing (timed region, restart-on-expiry, no escape),
* bare checkpointing (no time semantics at all: completes but delivers
  stale data).

The point of the table: only the adaptable-monitoring design both
terminates *and* knows the data went stale.
"""

from conftest import print_table, run_once

from repro.baselines.mayfly import Expiration, MayflyConfig, MayflyRuntime
from repro.checkpoint.program import Block, CheckpointProgram, TimedRegion
from repro.checkpoint.runtime import CheckpointRuntime
from repro.core.runtime import ArtemisRuntime
from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder

CHARGE_S = 120.0  # charging delay, well beyond the 30 s window
EXPIRY_S = 30.0
CAP_S = 2 * 3600.0

POWER = PowerModel({
    "sense": TaskCost(0.5, 4e-3),   # 2 mJ
    "crunch": TaskCost(0.3, 1e-3),  # 0.3 mJ
    "report": TaskCost(0.8, 5e-3),  # 4 mJ
})


def device():
    cap = Capacitor(1.6e-3, v_initial=3.0)  # ~4.6 mJ usable
    return Device(EnergyEnvironment.for_charging_delay(CHARGE_S, capacitor=cap))


def task_app():
    return (
        AppBuilder("timely")
        .task("sense").task("crunch").task("report")
        .path(1, ["sense", "crunch", "report"])
        .build()
    )


def run_artemis():
    dev = device()
    app = task_app()
    props = load_properties(
        "report { MITD: 30s dpTask: sense onFail: restartPath "
        "maxAttempt: 3 onFail: skipPath; }", app)
    result = dev.run(ArtemisRuntime(app, props, dev, POWER), max_time_s=CAP_S)
    return dev, result


def run_mayfly():
    dev = device()
    config = MayflyConfig(expirations=[Expiration("report", "sense", EXPIRY_S)])
    result = dev.run(MayflyRuntime(task_app(), config, dev, POWER),
                     max_time_s=CAP_S)
    return dev, result


def checkpoint_program(timed):
    blocks = [
        Block("sense", 0.5, 4e-3),
        Block("crunch", 0.3, 1e-3),
        Block("report", 0.8, 5e-3),
    ]
    regions = [TimedRegion("sense", "report", EXPIRY_S)] if timed else []
    return CheckpointProgram("timely", blocks,
                             checkpoint_after=("sense", "crunch"),
                             timed_regions=regions)


def run_checkpoint(timed):
    dev = device()
    result = dev.run(CheckpointRuntime(checkpoint_program(timed), dev),
                     max_time_s=CAP_S)
    return dev, result


def measure():
    systems = {
        "ARTEMIS": run_artemis(),
        "Mayfly": run_mayfly(),
        "TICS-style": run_checkpoint(timed=True),
        "bare checkpoint": run_checkpoint(timed=False),
    }
    rows = {}
    for label, (dev, result) in systems.items():
        stale_detected = any(
            e.detail.get("action") in ("restartPath", "regionRestart",
                                       "skipPath")
            for e in dev.trace.of_kind("monitor_action"))
        rows[label] = {
            "completed": result.completed,
            "stale_detected": stale_detected,
            "energy_mj": result.total_energy_j * 1e3,
        }
    return rows


def test_ablation_timeliness_across_substrates(benchmark):
    rows = run_once(benchmark, measure)
    print_table(
        f"Ablation: timeliness designs (window {EXPIRY_S:.0f}s, "
        f"charging delay {CHARGE_S:.0f}s)",
        ["system", "terminates", "staleness detected", "energy (mJ)"],
        [(k, v["completed"], v["stale_detected"], f"{v['energy_mj']:.1f}")
         for k, v in rows.items()],
    )
    # ARTEMIS: terminates AND detected the staleness (then escaped).
    assert rows["ARTEMIS"]["completed"]
    assert rows["ARTEMIS"]["stale_detected"]
    # Mayfly and TICS-style detect staleness but never terminate.
    assert rows["Mayfly"]["stale_detected"]
    assert not rows["Mayfly"]["completed"]
    assert rows["TICS-style"]["stale_detected"]
    assert not rows["TICS-style"]["completed"]
    # Bare checkpointing terminates but is oblivious to stale data.
    assert rows["bare checkpoint"]["completed"]
    assert not rows["bare checkpoint"]["stale_detected"]
