"""Fleet OTA throughput: staged-rollout devices per second.

Times a full staged rollout (benign v2, three waves, paired controls)
over a heterogeneous fleet and reports devices simulated per wall-clock
second — the capacity number that says how large a fleet the rollout
harness can evaluate per CI minute. Each rollout device is simulated
twice (treatment + control), so the metric counts device-*simulations*
per second divided by two: it is directly "fleet devices evaluated per
second".

``REPRO_BENCH_JOBS=N`` shards each wave's sweep across N worker
processes, same as every other benchmark in this harness.
"""

import os
import time

from conftest import print_table, run_once

from repro.fleet.server import FLEET_SPEC_V2, FleetServer, RolloutPlan

DEVICES = int(os.environ.get("REPRO_FLEET_DEVICES", "48"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")


def _measure():
    server = FleetServer()
    plan = RolloutPlan(waves=(0.1, 0.5, 1.0), runs=2, loss_rate=0.02, seed=0)
    t0 = time.perf_counter()
    report = server.rollout(FLEET_SPEC_V2, DEVICES, plan=plan, jobs=JOBS)
    elapsed = time.perf_counter() - t0
    return report, elapsed


def test_fleet_rollout_throughput(benchmark):
    report, elapsed = run_once(benchmark, _measure)
    assert report.ok and report.devices_attempted == DEVICES
    devices_per_s = DEVICES / elapsed
    summary = report.summary
    print_table(
        f"Staged rollout throughput ({DEVICES} devices, jobs={JOBS})",
        ["metric", "value"],
        [
            ["devices", DEVICES],
            ["waves", len(report.waves)],
            ["wall_s", f"{elapsed:.2f}"],
            ["devices_per_s", f"{devices_per_s:.2f}"],
            ["installed", summary.outcomes.get("installed", 0)],
            ["rollbacks", summary.rollbacks],
            ["chunks_lost", summary.chunks_lost],
            ["radio_mJ", f"{summary.radio_energy_mj:.2f}"],
            ["regression_delta", f"{summary.regression_delta:.3f}"],
        ],
    )
    # Capacity floor: even serial on a busy CI box the harness clears
    # a couple of devices per second at runs=2.
    assert devices_per_s > 0.5


BATCH_DEVICES = int(os.environ.get("REPRO_BATCH_DEVICES", "1000"))


def _measure_batched():
    server = FleetServer()
    plan = RolloutPlan(waves=(0.1, 0.5, 1.0), runs=2, loss_rate=0.02,
                       seed=0, lockstep=True, seed_mode="per_cohort",
                       expand_limit=0)
    t0 = time.perf_counter()
    report = server.rollout(FLEET_SPEC_V2, BATCH_DEVICES, plan=plan)
    elapsed = time.perf_counter() - t0
    return report, elapsed


def test_batched_fleet_rollout_throughput(benchmark):
    """Lockstep struct-of-arrays rollout. ``REPRO_BATCH_DEVICES``
    scales the fleet (CI runs 1k blocking and 100k non-blocking); the
    floor is the ISSUE's single-core acceptance bar, derated for busy
    CI boxes at the small default fleet where the fixed per-cohort
    representative cost dominates."""
    report, elapsed = run_once(benchmark, _measure_batched)
    assert report.ok and report.devices_attempted == BATCH_DEVICES
    devices_per_s = BATCH_DEVICES / elapsed
    summary = report.summary
    print_table(
        f"Batched rollout throughput ({BATCH_DEVICES} devices, lockstep)",
        ["metric", "value"],
        [
            ["devices", BATCH_DEVICES],
            ["waves", len(report.waves)],
            ["wall_s", f"{elapsed:.2f}"],
            ["devices_per_s", f"{devices_per_s:.0f}"],
            ["installed", summary.outcomes.get("installed", 0)],
            ["rollbacks", summary.rollbacks],
            ["chunks_lost", summary.chunks_lost],
            ["regression_delta", f"{summary.regression_delta:.3f}"],
        ],
    )
    assert devices_per_s > 100
