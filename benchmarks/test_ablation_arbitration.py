"""Ablation: action arbitration policy (§3.3).

When several properties fail on one event "the runtime determines the
appropriate course of action". This ablation shows the severity-ordered
default is load-bearing: a naive first-reported policy can let a weak
action (restartTask) shadow the escape hatch (skipPath) forever,
recreating the very non-termination ARTEMIS exists to prevent.
"""

from conftest import print_table, run_once

from repro.core.arbiter import first_reported, most_severe
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder

# Task c needs data from task x, which is never on any path before it:
# the collect property fails on every start and asks for restartTask
# (which never re-runs x). The maxTries property is the escape hatch —
# but only if arbitration lets its skipPath through.
SPEC = """
c {
    collect: 1 dpTask: x onFail: restartTask;
    maxTries: 5 onFail: skipPath;
}
"""

POWER = PowerModel({}, default_cost=TaskCost(0.05, 1e-3))


def build():
    app = (
        AppBuilder("arb")
        .task("c").task("d").task("x")
        .path(1, ["c", "d"])
        .path(2, ["x"])
        .build()
    )
    return app, load_properties(SPEC, app)


def run_with(policy):
    app, props = build()
    device = Device(EnergyEnvironment.continuous())
    runtime = ArtemisRuntime(app, props, device, POWER, policy=policy)
    result = device.run(runtime, max_time_s=10.0)
    return device, result


def measure():
    out = {}
    for label, policy in (("most_severe", most_severe),
                          ("first_reported", first_reported)):
        device, result = run_with(policy)
        out[label] = {
            "completed": result.completed,
            "time_s": result.total_time_s,
            "skips": device.trace.count("path_skip"),
            "actions": device.trace.count("monitor_action"),
        }
    return out


def test_ablation_arbitration_policy(benchmark):
    out = run_once(benchmark, measure)

    print_table(
        "Ablation: arbitration policy under simultaneous failures",
        ["policy", "completed", "path skips", "monitor actions"],
        [(k, v["completed"], v["skips"], v["actions"])
         for k, v in out.items()],
    )

    # Severity ordering lets the skipPath escape fire at the 6th start.
    assert out["most_severe"]["completed"]
    assert out["most_severe"]["skips"] == 1
    # First-reported keeps choosing restartTask: non-termination.
    assert not out["first_reported"]["completed"]
    assert out["first_reported"]["actions"] > 50
