"""Table 2: memory requirements (bytes) of Mayfly runtime, ARTEMIS
runtime, and the generated ARTEMIS monitor.

Paper result (MSP430FR5994, msp430-gcc):

    Mayfly runtime   .text 1152  RAM 2  FRAM 6354
    ARTEMIS runtime  .text 1512  RAM 2  FRAM 4756
    ARTEMIS monitor  .text 4644  RAM 0  FRAM 15856

Shape to preserve: the ARTEMIS runtime is slightly larger in code but
*smaller* in FRAM than Mayfly (property state moved to the monitor);
the generated monitor is the largest component in both code and FRAM;
SRAM usage is negligible everywhere.
"""

from conftest import print_table, run_once

from repro.core.generator import generate_machines
from repro.memsize.model import table2
from repro.spec.validator import load_properties
from repro.workloads.health import BENCHMARK_SPEC, build_health_app, mayfly_config

PAPER = {
    "Mayfly runtime": (1152, 2, 6354),
    "ARTEMIS runtime": (1512, 2, 4756),
    "ARTEMIS monitor": (4644, 0, 15856),
}


def measure():
    app = build_health_app()
    machines = generate_machines(load_properties(BENCHMARK_SPEC, app))
    return table2(app, machines, mayfly_config())


def test_table2_memory_requirements(benchmark):
    reports = run_once(benchmark, measure)

    print_table(
        "Table 2: memory requirements (bytes) — measured vs paper",
        ["component", ".text", "RAM", "FRAM",
         "paper .text", "paper RAM", "paper FRAM"],
        [
            (r.component, r.text_bytes, r.ram_bytes, r.fram_bytes,
             *PAPER[r.component])
            for r in reports
        ],
    )

    by_name = {r.component: r for r in reports}
    mayfly = by_name["Mayfly runtime"]
    runtime = by_name["ARTEMIS runtime"]
    monitor = by_name["ARTEMIS monitor"]

    # Code size ordering: Mayfly < ARTEMIS runtime < monitor.
    assert mayfly.text_bytes < runtime.text_bytes < monitor.text_bytes
    # FRAM ordering: ARTEMIS runtime < Mayfly runtime < monitor.
    assert runtime.fram_bytes < mayfly.fram_bytes < monitor.fram_bytes
    # SRAM is negligible for all components.
    assert all(r.ram_bytes <= 2 for r in reports)
    # Magnitudes within ~3x of the paper's measurements.
    for r in reports:
        text, _, fram = PAPER[r.component]
        assert text / 3 < r.text_bytes < text * 3
        assert fram / 3 < r.fram_bytes < fram * 3
