"""Figure 14: execution time and overheads on continuous power.

Paper result: on continuous power the task flow of ARTEMIS and Mayfly is
identical; application time dominates (seconds scale), and the checking
overheads of both systems are small, with ARTEMIS slightly above Mayfly
because of its separate monitor calls.
"""

from conftest import print_table, run_once

from repro.workloads.health import (
    build_artemis,
    build_mayfly,
    make_continuous_device,
)


def measure():
    adev = make_continuous_device()
    ares = adev.run(build_artemis(adev))
    mdev = make_continuous_device()
    mres = mdev.run(build_mayfly(mdev))
    return ares, mres


def test_fig14_execution_time_on_continuous_power(benchmark):
    ares, mres = run_once(benchmark, measure)

    print_table(
        "Figure 14: execution time on continuous power (seconds)",
        ["system", "app (s)", "runtime ovh (s)", "monitor ovh (s)", "total (s)"],
        [
            ("ARTEMIS", f"{ares.app_time_s:.3f}",
             f"{ares.runtime_overhead_s:.4f}",
             f"{ares.monitor_overhead_s:.4f}",
             f"{ares.total_time_s:.3f}"),
            ("Mayfly", f"{mres.app_time_s:.3f}",
             f"{mres.runtime_overhead_s:.4f}",
             f"{mres.monitor_overhead_s:.4f}",
             f"{mres.total_time_s:.3f}"),
        ],
    )

    assert ares.completed and mres.completed
    # Identical application flow: same app time.
    assert abs(ares.app_time_s - mres.app_time_s) < 1e-6
    # Totals nearly identical (within 2%).
    assert abs(ares.total_time_s - mres.total_time_s) <= 0.02 * mres.total_time_s
    # Overheads are small against app time.
    assert ares.overhead_fraction < 0.02
    assert mres.overhead_fraction < 0.02
    # ARTEMIS total overhead slightly higher than Mayfly's.
    assert (ares.runtime_overhead_s + ares.monitor_overhead_s
            > mres.runtime_overhead_s + mres.monitor_overhead_s)
