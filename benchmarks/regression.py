"""Benchmark-regression harness.

Measures the engine's host-side performance (monitor-call throughput,
per-event dispatch cost, sweep wall time serial vs parallel vs cached),
writes the numbers to a dated ``BENCH_<date>.json`` baseline, and
compares a fresh run against the newest committed baseline with a
tolerance band::

    python benchmarks/regression.py --write     # record a new baseline
    python benchmarks/regression.py             # compare vs newest baseline
    python benchmarks/regression.py --tolerance 0.25

Exit status: 0 when every enforced metric is within tolerance of the
baseline (or when writing), 1 on a regression, 2 when no baseline
exists. Absolute wall-clock metrics are recorded for trend-reading but
*informational only* — shared CI machines make them too noisy to gate
on; the enforced metrics are throughputs and dimensionless ratios.

See ``docs/performance.md`` for how to read the fields.
"""

from __future__ import annotations

import argparse
import datetime
import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

if str(REPO_ROOT / "src") not in sys.path:  # runnable without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Metric name -> comparison direction. ``higher`` / ``lower`` metrics
#: are enforced against the tolerance band; ``info`` metrics are printed
#: but never fail the run.
METRIC_DIRECTIONS: Dict[str, str] = {
    "engine_generated_events_per_s": "higher",
    "engine_interpreted_events_per_s": "higher",
    "dispatch_us_per_event": "lower",
    "cache_speedup": "higher",
    "cache_hit_rate": "higher",
    "fleet_devices_per_s": "higher",
    "batched_devices_per_s": "higher",
    "streamed_devices_per_s": "higher",
    "conformance_schedules_per_s": "higher",
    "predict_monitors_per_s": "higher",
    "tl_monitors_per_s": "higher",
    # Legacy fork-per-call pool wall time over persistent-pool wall time
    # on the same sweep: what keeping workers alive buys. Dimensionless,
    # so it gates even on a single-core box (where parallel-vs-serial is
    # a fork-overhead *slowdown* and stays informational below).
    "parallel_speedup": "higher",
    "parallel_vs_serial": "info",
    "sweep_serial_s": "info",
    "sweep_fork_s": "info",
    "sweep_parallel_s": "info",
    "sweep_cache_warm_s": "info",
}


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _measure_engine(backend: str, n_events: int = 2000,
                    trials: int = 5) -> float:
    """Best-of-N monitor-call throughput (events/second) on the health
    workload's five-property monitor."""
    from repro.core.events import MonitorEvent
    from repro.core.monitor import ArtemisMonitor
    from repro.nvm.memory import NonVolatileMemory
    from repro.spec.validator import load_properties
    from repro.workloads.health import BENCHMARK_SPEC, build_health_app

    app = build_health_app()
    events: List[MonitorEvent] = []
    t = 0.0
    while len(events) < n_events:
        for path in app.paths:
            for task in path.task_names:
                events.append(MonitorEvent("startTask", task, t, {},
                                           path=path.number))
                t += 0.5
                data = {"avgTemp": 36.8} if task == "calcAvg" else {}
                events.append(MonitorEvent("endTask", task, t, data,
                                           path=path.number))
                t += 0.5
    events = events[:n_events]
    props = load_properties(BENCHMARK_SPEC, app)
    monitor = ArtemisMonitor(props, NonVolatileMemory(), backend=backend)
    best: Optional[float] = None
    for _ in range(trials):
        monitor.reset()
        t0 = time.perf_counter()
        for event in events:
            monitor.call(event)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return len(events) / best


# Module-level (picklable) sweep pieces: the persistent worker pool
# ships the task to long-lived workers, so the build and metric
# callables must be importable, not closures.
def _bench_build(point):
    from repro.workloads.health import build_artemis, make_intermittent_device

    device = make_intermittent_device(point["delay_s"])
    return device, build_artemis(device)


def _bench_metric_completed(dev, res):
    return res.completed


def _bench_metric_time_s(dev, res):
    return round(res.total_time_s, 6)


def _bench_metric_reboots(dev, res):
    return res.reboots


def _bench_sweep():
    from repro.sim.experiments import Sweep

    return Sweep(
        factors={"delay_s": [30.0, 60.0, 90.0, 120.0, 180.0, 240.0]},
        build=_bench_build,
        metrics={
            "completed": _bench_metric_completed,
            "time_s": _bench_metric_time_s,
            "reboots": _bench_metric_reboots,
        },
        max_time_s=4 * 3600.0,
    )


def _measure_sweep(jobs: int = 4) -> Dict[str, float]:
    """Wall time of a small health-workload sweep: serial, legacy
    fork-per-call pool, persistent pool, and cache-warm, plus the
    derived ratios and hit rate.

    ``parallel_speedup`` is fork-pool time over persistent-pool time at
    the same job count — the fork/import tax the persistent pool
    amortizes away. ``parallel_vs_serial`` (persistent vs in-process
    serial) is informational: on a single-core host it hovers near or
    below 1.0 because there is no parallel hardware to pay for the IPC.
    """
    from repro.sim.pool import ResultCache, run_sweep, shutdown_pools

    sweep = _bench_sweep()

    # Best-of-N wall times: the sweep is small, so single runs jitter
    # too much for a tolerance band over derived ratios.
    def best_of(n, fn):
        best = None
        rows = None
        for _ in range(n):
            t0 = time.perf_counter()
            rows = fn()
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best, rows

    serial_s, serial_rows = best_of(
        3, lambda: run_sweep(sweep, jobs=1, strategy="serial"))

    metrics: Dict[str, float] = {"sweep_serial_s": serial_s}
    if "fork" in multiprocessing.get_all_start_methods():
        fork_s, fork_rows = best_of(
            2, lambda: run_sweep(sweep, jobs=jobs, strategy="fork"))
        # Three runs so the steady state (workers already forked)
        # dominates the minimum — persistence is the thing measured.
        persistent_s, persistent_rows = best_of(
            3, lambda: run_sweep(sweep, jobs=jobs, strategy="persistent"))
        shutdown_pools()
        if fork_rows != serial_rows or persistent_rows != serial_rows:
            raise AssertionError("parallel sweep produced a different table")
        metrics.update({
            "sweep_fork_s": fork_s,
            "sweep_parallel_s": persistent_s,
            "parallel_speedup": fork_s / persistent_s if persistent_s
            else 0.0,
            "parallel_vs_serial": serial_s / persistent_s if persistent_s
            else 0.0,
        })

    with tempfile.TemporaryDirectory(prefix="repro_bench_cache_") as tmp:
        cache = ResultCache(tmp)
        run_sweep(sweep, jobs=1, cache=cache)  # populate
        warm_s = None
        for _ in range(3):
            cache.hits = cache.misses = 0
            t0 = time.perf_counter()
            warm_rows = run_sweep(sweep, jobs=1, cache=cache)
            elapsed = time.perf_counter() - t0
            warm_s = elapsed if warm_s is None else min(warm_s, elapsed)
        hit_rate = cache.hit_rate
    if warm_rows != serial_rows:
        raise AssertionError("cached sweep produced a different table")

    metrics.update({
        "sweep_cache_warm_s": warm_s,
        "cache_speedup": serial_s / warm_s if warm_s else 0.0,
        "cache_hit_rate": hit_rate,
    })
    return metrics


def _measure_fleet(n_devices: int = 16, jobs: int = 4,
                   trials: int = 3) -> float:
    """Best-of-N staged-rollout throughput (fleet devices evaluated per
    second, paired control included) on the benign v2 update."""
    from repro.fleet.server import FLEET_SPEC_V2, FleetServer, RolloutPlan

    server = FleetServer()
    plan = RolloutPlan(waves=(0.25, 1.0), runs=2, loss_rate=0.02, seed=0)
    best: Optional[float] = None
    for _ in range(trials):
        t0 = time.perf_counter()
        report = server.rollout(FLEET_SPEC_V2, n_devices, plan=plan,
                                jobs=jobs)
        elapsed = time.perf_counter() - t0
        if not report.ok or report.devices_attempted != n_devices:
            raise AssertionError("benign fleet rollout failed to complete")
        best = elapsed if best is None else min(best, elapsed)
    return n_devices / best


def _measure_batched_fleet(n_devices: int = 2000, trials: int = 2) -> float:
    """Best-of-N lockstep staged-rollout throughput (devices per second,
    paired control included) through the struct-of-arrays batch core:
    ``per_cohort`` seeding, compact per-cohort rollup (``expand_limit=0``).
    Guards the vectorized path end to end — cohort partitioning, the
    instrumented representative runs, the kernel replay across the
    device axis, and the weighted telemetry aggregation."""
    from repro.fleet.server import FLEET_SPEC_V2, FleetServer, RolloutPlan

    server = FleetServer()
    plan = RolloutPlan(waves=(0.25, 1.0), runs=2, loss_rate=0.02, seed=0,
                       lockstep=True, seed_mode="per_cohort",
                       expand_limit=0)
    best: Optional[float] = None
    for _ in range(trials):
        t0 = time.perf_counter()
        report = server.rollout(FLEET_SPEC_V2, n_devices, plan=plan)
        elapsed = time.perf_counter() - t0
        if not report.ok or report.devices_attempted != n_devices:
            raise AssertionError("batched fleet rollout failed to complete")
        best = elapsed if best is None else min(best, elapsed)
    return n_devices / best


def _measure_streamed(n_devices: int = 32, jobs: int = 4,
                      trials: int = 3) -> float:
    """Best-of-N throughput (devices per second, paired control
    included) of the control plane's streamed rollout: per-device wave
    tasks on the persistent pool, telemetry flowing through the bounded
    ingestion queue into the sharded registry, waves gated live. Guards
    the whole async path — a queue stall, pool regression, or registry
    slowdown all surface here."""
    from repro.fleet.control import ControlPlane
    from repro.fleet.server import FLEET_SPEC_V2, FleetServer, RolloutPlan
    from repro.sim.pool import shutdown_pools

    server = FleetServer()
    plan = RolloutPlan(waves=(0.25, 1.0), runs=2, loss_rate=0.02, seed=0)
    best: Optional[float] = None
    for _ in range(trials):
        plane = ControlPlane(server, plan=plan, jobs=jobs)
        t0 = time.perf_counter()
        report = plane.run_rollout(FLEET_SPEC_V2, n_devices)
        elapsed = time.perf_counter() - t0
        if not report.ok or report.devices_attempted != n_devices:
            raise AssertionError("streamed fleet rollout failed to complete")
        best = elapsed if best is None else min(best, elapsed)
    shutdown_pools()
    return n_devices / best


def _measure_conformance(trials: int = 2) -> float:
    """Best-of-N crash-schedule throughput (schedules checked per
    second) of a POR-enabled bound-2 exploration of the fleet OTA
    scenario. Guards the partial-order reduction: a pruning regression
    multiplies the schedule count, and a runner slowdown divides the
    rate — both surface here."""
    from repro.verify.workloads import get_scenario

    scenario = get_scenario("ota", "artemis")
    best: Optional[float] = None
    for _ in range(trials):
        t0 = time.perf_counter()
        report = scenario.explorer().explore(bound=2, budget=400,
                                             stop_on_first=False, por=True)
        elapsed = time.perf_counter() - t0
        if not report.ok or report.truncated:
            raise AssertionError(
                "conformance benchmark scenario failed or truncated")
        best = elapsed if best is None else min(best, elapsed)
    return report.schedules_checked / best


def _measure_predict(trials: int = 5, repeats: int = 20) -> float:
    """Best-of-N static-analysis throughput (monitors bounded per
    second): full ``analyze()`` passes — machine generation, dispatch
    tables, path-sensitive worst-case transition scans, per-path
    budgets, and the non-termination predicate — over the health
    benchmark's property set."""
    from repro.analysis import analyze
    from repro.spec.validator import load_properties
    from repro.workloads.health import (
        BENCHMARK_SPEC,
        build_health_app,
        health_power_model,
    )

    app = build_health_app()
    props = load_properties(BENCHMARK_SPEC, app)
    power = health_power_model()
    n_monitors = len(analyze(app, props, power).monitors)
    best: Optional[float] = None
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(repeats):
            analyze(app, props, power)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return repeats * n_monitors / best


def _measure_tl(trials: int = 5, n_props: int = 200) -> float:
    """Best-of-N temporal-frontend throughput (emitted monitors per
    second): parse and validate an ``n_props``-property past-time MTL
    spec, then compile it through the shared-subformula planner. The
    spec's properties recur over a small pool of stateful subformulas,
    so the whole frontend is on the path — lexer, formula parser,
    rewriter, hash-consing, and sub-monitor emission."""
    from repro.core.generator import build_monitor_plan
    from repro.spec.validator import load_properties
    from repro.taskgraph.builder import AppBuilder

    tasks = ("A", "B", "C")
    windows = ("0, 5s", "0, 30s", "0, 2min")
    lines: Dict[str, list] = {t: [] for t in tasks}
    for i in range(n_props):
        anchor, dep = tasks[i % 3], tasks[(i + 1) % 3]
        variant = i % 4
        if variant == 0:
            f = f"started({anchor}) -> once ended({dep})"
        elif variant == 1:
            f = f"once[{windows[i % 3]}] ended({dep})"
        elif variant == 2:
            f = f"not ended({anchor}) since ended({dep})"
        else:
            f = (f"once ended({dep}) and "
                 f"(not ended({anchor}) since ended({dep}))")
        lines[anchor].append(
            f"    temporal: {f} at: {'start' if i % 2 else 'end'} "
            f"label: p{i} onFail: skipPath Path: 1;")
    source = "\n\n".join(
        f"{task}: {{\n" + "\n".join(props) + "\n}"
        for task, props in lines.items()) + "\n"
    builder = AppBuilder("tl-bench")
    for t in tasks:
        builder.task(t)
    app = builder.path(1, list(tasks)).build()

    best: Optional[float] = None
    plan = None
    for _ in range(trials):
        t0 = time.perf_counter()
        props = load_properties(source, app)
        plan = build_monitor_plan(props)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    if plan.shared_monitors >= plan.naive_monitors:
        raise AssertionError("subformula sharing produced no savings")
    return plan.shared_monitors / best


def collect_metrics() -> Dict[str, float]:
    """Run the whole measurement suite; returns metric name -> value."""
    generated = _measure_engine("generated")
    interpreted = _measure_engine("interpreted")
    metrics: Dict[str, float] = {
        "engine_generated_events_per_s": generated,
        "engine_interpreted_events_per_s": interpreted,
        "dispatch_us_per_event": 1e6 / generated,
    }
    metrics.update(_measure_sweep())
    metrics["fleet_devices_per_s"] = _measure_fleet()
    metrics["batched_devices_per_s"] = _measure_batched_fleet()
    metrics["streamed_devices_per_s"] = _measure_streamed()
    metrics["conformance_schedules_per_s"] = _measure_conformance()
    metrics["predict_monitors_per_s"] = _measure_predict()
    metrics["tl_monitors_per_s"] = _measure_tl()
    return metrics


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def baseline_path_for_today() -> Path:
    return BENCH_DIR / f"BENCH_{datetime.date.today().isoformat()}.json"


def latest_baseline() -> Optional[Path]:
    """Newest committed ``BENCH_*.json``, by the date in the name."""
    candidates = sorted(BENCH_DIR.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def write_baseline(metrics: Dict[str, float],
                   path: Optional[Path] = None) -> Path:
    path = path or baseline_path_for_today()
    doc = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "metrics": metrics,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> Dict[str, float]:
    doc = json.loads(path.read_text())
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path} has no 'metrics' table")
    return metrics


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def compare(baseline: Dict[str, float], current: Dict[str, float],
            tolerance: float = 0.15) -> Tuple[bool, List[Tuple[str, str]]]:
    """Compare current metrics against a baseline.

    Returns ``(ok, report_lines)`` where each report line is
    ``(status, text)`` with status one of ``ok`` / ``FAIL`` / ``info``.
    An enforced metric fails when it is worse than the baseline by more
    than ``tolerance`` (relative); better-than-baseline never fails.
    """
    ok = True
    lines: List[Tuple[str, str]] = []
    for name, direction in METRIC_DIRECTIONS.items():
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            lines.append(("info", f"{name}: no baseline value"))
            continue
        if direction == "info" or base == 0:
            lines.append(("info", f"{name}: {base:.4g} -> {cur:.4g}"))
            continue
        change = (cur - base) / base
        worse = -change if direction == "higher" else change
        status = "FAIL" if worse > tolerance else "ok"
        if status == "FAIL":
            ok = False
        lines.append((status,
                      f"{name}: {base:.4g} -> {cur:.4g} "
                      f"({change:+.1%}, {direction} is better, "
                      f"tolerance {tolerance:.0%})"))
    return ok, lines


def main(argv: Optional[List[str]] = None,
         collect: Callable[[], Dict[str, float]] = collect_metrics) -> int:
    parser = argparse.ArgumentParser(
        description="measure engine performance and compare against the "
                    "newest BENCH_<date>.json baseline")
    parser.add_argument("--write", action="store_true",
                        help="record a new dated baseline instead of "
                             "comparing")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="explicit baseline file (default: newest "
                             "benchmarks/BENCH_*.json)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative slowdown (default 0.15)")
    args = parser.parse_args(argv)

    metrics = collect()
    for name in sorted(metrics):
        print(f"  {name} = {metrics[name]:.4g}")

    if args.write:
        path = write_baseline(metrics)
        print(f"baseline written: {path}")
        return 0

    baseline_file = args.baseline or latest_baseline()
    if baseline_file is None or not baseline_file.exists():
        print("no baseline found; record one with --write", file=sys.stderr)
        return 2
    baseline = load_baseline(baseline_file)
    print(f"comparing against {baseline_file.name} "
          f"(tolerance {args.tolerance:.0%})")
    ok, lines = compare(baseline, metrics, tolerance=args.tolerance)
    for status, text in lines:
        print(f"  [{status}] {text}")
    print("PASS" if ok else "REGRESSION DETECTED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
