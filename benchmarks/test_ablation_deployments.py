"""Ablation: monitor deployment alternatives (§6/§7).

Compares the shipped modular design against the two alternatives the
paper discusses and rejects:

* inlined (AOP weaving): lower time overhead, larger code footprint;
* remote (external wireless monitor): maximal modularity, energy
  overhead dominated by the radio.
"""

from conftest import print_table, run_once

from repro.core.deployments import InlinedArtemisRuntime, RemoteMonitorRuntime
from repro.core.generator import generate_machines
from repro.core.runtime import ArtemisRuntime
from repro.memsize.model import (
    artemis_monitor_memory,
    artemis_runtime_memory,
    inlined_memory,
)
from repro.spec.validator import load_properties
from repro.workloads.health import (
    BENCHMARK_SPEC,
    build_health_app,
    health_power_model,
    make_continuous_device,
)

DEPLOYMENTS = [
    ("modular", ArtemisRuntime),
    ("inlined", InlinedArtemisRuntime),
    ("remote", RemoteMonitorRuntime),
]


def measure():
    rows = []
    for label, cls in DEPLOYMENTS:
        device = make_continuous_device()
        app = build_health_app()
        props = load_properties(BENCHMARK_SPEC, app)
        runtime = cls(app, props, device, health_power_model())
        result = device.run(runtime)
        rows.append({
            "label": label,
            "completed": result.completed,
            # Remote checking is charged to the "radio" category, so it
            # counts toward the check cost alongside runtime + monitor.
            "check_time_ms": (result.runtime_overhead_s
                              + result.monitor_overhead_s
                              + result.busy_time_s["radio"]) * 1e3,
            "check_energy_mj": (result.energy_j["runtime"]
                                + result.energy_j["monitor"]
                                + result.energy_j["radio"]) * 1e3,
        })
    app = build_health_app()
    machines = generate_machines(load_properties(BENCHMARK_SPEC, app))
    modular_text = (artemis_runtime_memory(app).text_bytes
                    + artemis_monitor_memory(app, machines).text_bytes)
    inlined_text = inlined_memory(app, machines).text_bytes
    return rows, modular_text, inlined_text


def test_ablation_deployments(benchmark):
    rows, modular_text, inlined_text = run_once(benchmark, measure)

    print_table(
        "Ablation: monitor deployment (continuous power, one run)",
        ["deployment", "check time (ms)", "check energy (mJ)"],
        [(r["label"], f"{r['check_time_ms']:.2f}",
          f"{r['check_energy_mj']:.4f}") for r in rows],
    )
    print(f"code footprint: modular={modular_text} B, "
          f"inlined={inlined_text} B (+{inlined_text - modular_text} B)")

    by = {r["label"]: r for r in rows}
    assert all(r["completed"] for r in rows)
    # Inlining trades code size for time: faster checks, bigger binary.
    assert by["inlined"]["check_time_ms"] < by["modular"]["check_time_ms"]
    assert inlined_text > modular_text
    # The remote monitor trades energy for modularity: the radio makes
    # checking far more expensive than local computation.
    assert by["remote"]["check_energy_mj"] > 5 * by["modular"]["check_energy_mj"]
