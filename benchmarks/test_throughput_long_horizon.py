"""Sustained throughput over a long horizon.

The paper's single-run figures answer "does one execution finish?"; a
deployment cares about *sustained* output: application runs completed
per hour as the ambient supply degrades. This bench runs the health
monitor in loop mode for a fixed simulated horizon across charging
delays and compares ARTEMIS and Mayfly. Expected shape: identical
throughput while both are below the MITD window; past it, ARTEMIS
degrades gracefully (it keeps finishing runs, each paying the 3-attempt
tax) while Mayfly's throughput collapses to zero — it never finishes
its first run again.
"""

from conftest import print_table, run_once

from repro.workloads.health import (
    build_artemis,
    build_mayfly,
    make_intermittent_device,
)

HORIZON_S = 6 * 3600.0  # six simulated hours
DELAYS = [60.0, 180.0, 420.0, 600.0]
MANY_RUNS = 10_000  # effectively "loop forever"; the horizon stops us


def measure():
    rows = []
    for delay in DELAYS:
        adev = make_intermittent_device(delay)
        ares = adev.run(build_artemis(adev), runs=MANY_RUNS,
                        max_time_s=HORIZON_S)
        mdev = make_intermittent_device(delay)
        mres = mdev.run(build_mayfly(mdev), runs=MANY_RUNS,
                        max_time_s=HORIZON_S)
        rows.append({
            "delay_s": delay,
            "artemis_runs": ares.runs_completed,
            "mayfly_runs": mres.runs_completed,
            "artemis_mj_per_run": (ares.total_energy_j * 1e3
                                   / max(1, ares.runs_completed)),
        })
    return rows


def test_long_horizon_throughput(benchmark):
    rows = run_once(benchmark, measure)
    hours = HORIZON_S / 3600.0
    print_table(
        f"Sustained throughput over {hours:.0f} simulated hours "
        "(application runs completed)",
        ["charge delay (s)", "ARTEMIS runs", "Mayfly runs",
         "ARTEMIS mJ/run"],
        [(int(r["delay_s"]), r["artemis_runs"], r["mayfly_runs"],
          f"{r['artemis_mj_per_run']:.1f}") for r in rows],
    )
    by = {r["delay_s"]: r for r in rows}
    # Below the window: equal throughput (same task flow).
    assert by[60.0]["artemis_runs"] == by[60.0]["mayfly_runs"] > 10
    assert by[180.0]["artemis_runs"] == by[180.0]["mayfly_runs"] > 0
    # Beyond the window: Mayfly completes nothing, ARTEMIS keeps going.
    for delay in (420.0, 600.0):
        assert by[delay]["mayfly_runs"] == 0
        assert by[delay]["artemis_runs"] >= 1
    # Throughput degrades monotonically with the delay for ARTEMIS.
    artemis_series = [r["artemis_runs"] for r in rows]
    assert artemis_series == sorted(artemis_series, reverse=True)
