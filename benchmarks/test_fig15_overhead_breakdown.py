"""Figure 15: detailed overhead breakdown (milliseconds scale).

Paper result: zooming into the overhead components, ARTEMIS pays a
runtime overhead comparable to Mayfly's plus a separate monitor
overhead for its thorough property checking; both remain milliseconds
over a whole application run.
"""

from conftest import print_table, run_once

from repro.workloads.health import (
    build_artemis,
    build_mayfly,
    make_continuous_device,
)


def measure():
    adev = make_continuous_device()
    ares = adev.run(build_artemis(adev))
    mdev = make_continuous_device()
    mres = mdev.run(build_mayfly(mdev))
    a_events = adev.trace.count("task_start") + adev.trace.count("task_end")
    m_events = mdev.trace.count("task_start") + mdev.trace.count("task_end")
    return ares, mres, a_events, m_events


def test_fig15_overhead_breakdown_ms(benchmark):
    ares, mres, a_events, m_events = run_once(benchmark, measure)

    a_rt, a_mon = ares.runtime_overhead_s * 1e3, ares.monitor_overhead_s * 1e3
    m_rt, m_mon = mres.runtime_overhead_s * 1e3, mres.monitor_overhead_s * 1e3
    print_table(
        "Figure 15: overhead breakdown (milliseconds)",
        ["system", "runtime (ms)", "monitor (ms)", "total (ms)",
         "events", "us/event"],
        [
            ("ARTEMIS", f"{a_rt:.2f}", f"{a_mon:.2f}", f"{a_rt + a_mon:.2f}",
             a_events, f"{(a_rt + a_mon) / a_events * 1e3:.1f}"),
            ("Mayfly", f"{m_rt:.2f}", f"{m_mon:.2f}", f"{m_rt + m_mon:.2f}",
             m_events, f"{(m_rt + m_mon) / m_events * 1e3:.1f}"),
        ],
    )

    # Milliseconds scale, not seconds.
    assert 1.0 < a_rt + a_mon < 500.0
    assert 1.0 < m_rt + m_mon < 500.0
    # Mayfly has no separate monitor; its checking is inside the runtime.
    assert m_mon == 0.0
    assert a_mon > 0.0
    # ARTEMIS monitor overhead is the dominant part of its extra cost.
    assert (a_rt + a_mon) > (m_rt + m_mon)
    extra = (a_rt + a_mon) - (m_rt + m_mon)
    assert a_mon > 0.5 * extra
