"""Scalability of property checking (contribution 3 of the paper).

ARTEMIS claims "scalable property checking based on monitoring an open
set of properties with minimal programming effort". This bench grows
the monitored property set from 2 to 24 over a fixed 12-task
application and measures (i) the monitor time overhead per event and
(ii) the generated monitor's memory footprint. The expected shape is
linear growth with a per-property slope matching the cost model — no
superlinear blow-up from the event-dispatch design — while the
specification effort is one line per property.
"""

from conftest import print_table, run_once

from repro.core.generator import generate_machines
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.memsize.model import artemis_monitor_memory
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder

N_TASKS = 12
PROPERTY_COUNTS = [2, 4, 8, 16, 24]


def build_app():
    builder = AppBuilder("scale")
    names = [f"t{i}" for i in range(N_TASKS)]
    for name in names:
        builder.task(name)
    return builder.path(1, names).build()


def spec_with(n_properties):
    """One-line-per-property specification: alternating maxTries and
    MITD properties spread over the task chain."""
    lines = []
    for k in range(n_properties):
        task = f"t{(k % (N_TASKS - 1)) + 1}"
        kind = k % 3
        if kind == 0:
            lines.append(f"{task} {{ maxTries: {10 + k} onFail: skipPath; }}")
        elif kind == 1:
            dep = f"t{k % (N_TASKS - 1)}"
            lines.append(
                f"{task} {{ MITD: {60 + k}s dpTask: {dep} onFail: restartPath "
                f"maxAttempt: 3 onFail: skipPath; }}")
        else:
            lines.append(
                f"{task} {{ maxDuration: {30 + k}s onFail: skipTask; }}")
    # (kind, task) pairs stay unique up to 3*(N_TASKS-1) = 33 properties.
    return "\n".join(lines)


def measure():
    rows = []
    power = PowerModel({}, default_cost=TaskCost(0.05, 1e-3))
    for n in PROPERTY_COUNTS:
        app = build_app()
        props = load_properties(spec_with(n), app)
        device = Device(EnergyEnvironment.continuous())
        runtime = ArtemisRuntime(app, props, device, power)
        result = device.run(runtime, runs=5)
        events = (device.trace.count("task_start")
                  + device.trace.count("task_end"))
        machines = generate_machines(props)
        memory = artemis_monitor_memory(app, machines)
        rows.append({
            "n": n,
            "monitor_us_per_event": result.monitor_overhead_s / events * 1e6,
            "monitor_text": memory.text_bytes,
            "monitor_fram": memory.fram_bytes,
        })
    return rows


def test_scalability_with_property_count(benchmark):
    rows = run_once(benchmark, measure)
    print_table(
        "Scalability: cost vs number of monitored properties",
        ["#properties", "monitor us/event", "monitor .text (B)",
         "monitor FRAM (B)"],
        [(r["n"], f"{r['monitor_us_per_event']:.1f}", r["monitor_text"],
          r["monitor_fram"]) for r in rows],
    )
    # Monotone growth...
    per_event = [r["monitor_us_per_event"] for r in rows]
    assert per_event == sorted(per_event)
    # ...and roughly linear: the us/event per property is stable within
    # 2x between the smallest and largest configuration.
    slopes = [(b["monitor_us_per_event"] - a["monitor_us_per_event"])
              / (b["n"] - a["n"])
              for a, b in zip(rows, rows[1:])]
    assert max(slopes) < 2 * min(slopes) + 1e-9
    # Code size also grows linearly in machine count.
    text_per_prop = [r["monitor_text"] / r["n"] for r in rows]
    assert max(text_per_prop) < 1.8 * min(text_per_prop)
