"""Figure 13: the maxAttempt timeline.

Paper result: with a charging delay beyond the MITD window, ARTEMIS
makes exactly three attempts to complete Path 2 (each MITD violation
triggering a path restart) and then skips the path via the maxAttempt
escape, executing `send` on the next path and finishing the run.
"""

from conftest import print_table, run_once

from repro.workloads.health import build_artemis, make_intermittent_device

DELAY_S = 420.0  # 7 minutes: beyond the 5-minute MITD
CAP_S = 4 * 3600.0


def timeline():
    device = make_intermittent_device(DELAY_S)
    result = device.run(build_artemis(device), max_time_s=CAP_S)
    events = [
        e for e in device.trace
        if e.kind in ("task_start", "task_end", "power_failure", "boot",
                      "monitor_action", "path_restart", "path_skip",
                      "path_complete", "run_complete")
    ]
    return result, events


def test_fig13_three_attempts_then_skip(benchmark):
    result, events = run_once(benchmark, timeline)

    print_table(
        "Figure 13: ARTEMIS maxAttempt timeline (7 min charging delay)",
        ["t (s)", "event", "detail"],
        [
            (f"{e.t:.1f}", e.kind,
             " ".join(f"{k}={v}" for k, v in e.detail.items() if v is not None))
            for e in events
        ],
    )

    assert result.completed
    mitd_actions = [e for e in events if e.kind == "monitor_action"
                    and str(e.detail.get("source", "")).startswith("MITD")]
    # Exactly three attempts: two restarts, then the escalation.
    assert [e.detail["action"] for e in mitd_actions] == [
        "restartPath", "restartPath", "skipPath"]

    # Path 2 was entered exactly three times (one initial + two restarts)
    accel_runs = [e for e in events if e.kind == "task_end"
                  and e.detail.get("task") == "accel"]
    assert len(accel_runs) == 3

    # send never completed on path 2, but did on paths 1 and 3.
    send_paths = [e.detail["path"] for e in events
                  if e.kind == "task_end" and e.detail.get("task") == "send"]
    assert 2 not in send_paths
    assert 1 in send_paths and 3 in send_paths
