"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper. The
simulated metrics (completion, times, energies, bytes) are the result;
pytest-benchmark's wall-clock timing of the simulation itself is
incidental. Benchmarks therefore run one round (simulations are
deterministic) and print the paper-comparable rows to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(header)]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def run_once(benchmark, fn):
    """Run a deterministic simulation exactly once under the benchmark
    fixture and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_grid(sweep) -> List[dict]:
    """Execute a :class:`repro.sim.Sweep` honouring the harness-wide
    parallelism and caching knobs.

    * ``REPRO_BENCH_JOBS=N`` shards grid points across N worker
      processes (rows stay in grid order; tables are identical to a
      serial run).
    * ``REPRO_BENCH_CACHE=DIR`` serves unchanged points from a
      content-addressed result cache; any source edit invalidates it.

    See ``docs/performance.md``.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    cache = os.environ.get("REPRO_BENCH_CACHE") or None
    return sweep.run(parallel=jobs, cache=cache)
