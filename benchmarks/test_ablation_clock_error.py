"""Ablation: persistent-timekeeper accuracy.

ARTEMIS (like Mayfly/TICS) assumes persistent timekeeping across power
failures; real remanence timekeepers estimate outage length with a
bounded relative error. This ablation injects increasing clock error at
a charging delay just *inside* the 5-minute MITD window and measures
how often mis-estimated outages cause spurious MITD violations — the
sensitivity of the timeliness property to the timekeeping substrate.
"""

from conftest import print_table, run_once

from repro.energy.environment import EnergyEnvironment, default_capacitor
from repro.sim.device import Device
from repro.workloads.health import build_artemis

DELAY_S = 270.0  # 4.5 min: true gaps sit ~272 s, near the 300 s limit
ERRORS = [0.0, 0.02, 0.05, 0.15, 0.30]
SEEDS = range(6)
CAP_S = 4 * 3600.0


def run_one(error, seed):
    env = EnergyEnvironment.for_charging_delay(DELAY_S, default_capacitor())
    device = Device(env, clock_error=error, seed=seed)
    result = device.run(build_artemis(device), max_time_s=CAP_S)
    mitd_actions = sum(
        1 for e in device.trace.of_kind("monitor_action")
        if str(e.detail.get("source", "")).startswith("MITD"))
    return result.completed, mitd_actions


def measure():
    rows = []
    for error in ERRORS:
        outcomes = [run_one(error, seed) for seed in SEEDS]
        rows.append({
            "error": error,
            "completed": sum(1 for done, _ in outcomes if done),
            "spurious_total": sum(n for _, n in outcomes),
        })
    return rows


def test_ablation_clock_error_sensitivity(benchmark):
    rows = run_once(benchmark, measure)
    print_table(
        "Ablation: timekeeper error vs spurious MITD violations "
        f"(charging delay {DELAY_S:.0f}s, limit 300s, {len(SEEDS)} seeds)",
        ["max rel error", "runs completed", "spurious MITD actions"],
        [(f"{r['error']:.0%}", f"{r['completed']}/{len(SEEDS)}",
          r["spurious_total"]) for r in rows],
    )
    by_error = {r["error"]: r for r in rows}
    # A perfect timekeeper never sees a violation at this delay.
    assert by_error[0.0]["spurious_total"] == 0
    assert by_error[0.0]["completed"] == len(SEEDS)
    # Large errors produce spurious violations (the gap is only ~28 s
    # inside the window), yet maxAttempt keeps every run terminating.
    assert by_error[0.30]["spurious_total"] > 0
    for r in rows:
        assert r["completed"] == len(SEEDS)
