"""Figure 12: total execution time vs charging time (1-10 minutes).

Paper result: both systems complete for short charging delays, with
execution time growing with the delay; once the delay exceeds the
5-minute MITD window on Path 2, Mayfly never terminates while ARTEMIS
completes by skipping the path after three attempts.
"""

from conftest import print_table, run_grid, run_once

from repro.sim.experiments import Sweep
from repro.workloads.health import (
    build_artemis,
    build_mayfly,
    make_intermittent_device,
)

DELAYS_MIN = list(range(1, 11))
CAP_S = 4 * 3600.0  # non-termination cutoff: 4 simulated hours


def _build(point):
    device = make_intermittent_device(point["minutes"] * 60.0)
    builder = build_artemis if point["system"] == "artemis" else build_mayfly
    return device, builder(device)


GRID = Sweep(
    factors={"minutes": DELAYS_MIN, "system": ["artemis", "mayfly"]},
    build=_build,
    metrics={
        "completed": lambda dev, res: res.completed,
        "time_s": lambda dev, res: res.total_time_s,
        "skips": lambda dev, res: dev.trace.count("path_skip"),
    },
    max_time_s=CAP_S,
)


def sweep():
    table = run_grid(GRID)
    by_point = {(r["minutes"], r["system"]): r for r in table}
    rows = []
    for minutes in DELAYS_MIN:
        artemis = by_point[(minutes, "artemis")]
        mayfly = by_point[(minutes, "mayfly")]
        rows.append({
            "minutes": minutes,
            "artemis_s": artemis["time_s"] if artemis["completed"] else None,
            "mayfly_s": mayfly["time_s"] if mayfly["completed"] else None,
            "artemis_completed": artemis["completed"],
            "mayfly_completed": mayfly["completed"],
            "artemis_skips": artemis["skips"],
        })
    return rows


def test_fig12_total_execution_time_vs_charging_time(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        "Figure 12: total execution time vs charging time",
        ["charge (min)", "ARTEMIS (s)", "Mayfly (s)"],
        [
            (
                r["minutes"],
                f"{r['artemis_s']:.0f}" if r["artemis_s"] else "DNF",
                f"{r['mayfly_s']:.0f}" if r["mayfly_s"] else "DNF (non-termination)",
            )
            for r in rows
        ],
    )

    # Shape assertions (the paper's qualitative claims).
    for r in rows:
        assert r["artemis_completed"], f"ARTEMIS must always complete ({r})"
    completed_mayfly = [r for r in rows if r["mayfly_completed"]]
    dnf_mayfly = [r for r in rows if not r["mayfly_completed"]]
    # Mayfly completes below the MITD window and DNFs beyond it; the
    # crossover sits at the 5-minute constraint.
    assert {r["minutes"] for r in completed_mayfly} == {1, 2, 3, 4}
    assert {r["minutes"] for r in dnf_mayfly} == {5, 6, 7, 8, 9, 10}
    # Execution time grows with charging delay while both complete.
    both = [r for r in rows if r["mayfly_completed"]]
    artemis_times = [r["artemis_s"] for r in both]
    assert artemis_times == sorted(artemis_times)
    # Beyond the window ARTEMIS survives via path skips.
    assert all(r["artemis_skips"] >= 1 for r in dnf_mayfly)
